"""Failure/completion detection latency through the status pipeline.

§II requires "periodic and accurate status updates"; §III.e-f build the
pipeline learner-files -> controller -> ETCD -> Guardian -> MongoDB.
This bench measures its end-to-end latency: from the learner writing
its exit code on NFS to the user-visible job status flipping in
MongoDB, for both orderly completion and orderly failure.

Since the control plane went event-driven the pipeline is wake-on-write
end to end: NFS change notification -> controller reconcile -> Raft
commit (~10ms) -> etcd watch -> Guardian aggregation -> Mongo write.
The historical poll-budget bound (< 3s) is kept as the regression gate;
actual latency is dominated by the Raft/Mongo commits (~tens of ms).
"""

from repro.bench import bench_manifest, build_platform, render_table

COLUMNS = ["terminal event", "runs", "min s", "mean s", "max s", "budget"]


def measure(kind, runs=4, seed=6):
    samples = []
    for index in range(runs):
        platform = build_platform("k80", gpus_per_node=4, seed=seed + index)
        client = platform.client("detect")
        manifest = bench_manifest("resnet50", "tensorflow", 1, "k80", steps=40)
        if kind == "FAILED":
            manifest["extra"] = {"fail_at_step": 20}

        job_id, doc = platform.run_process(
            client.run_to_completion(manifest, timeout=50_000), limit=200_000
        )
        exit_record = platform.tracer.first(component="learner-0",
                                            kind="learner-exit", job=job_id)
        status_flip = next(
            r for r in platform.tracer.query(component="guardian",
                                             kind="status-update")
            if r.fields["job"] == job_id
            and r.fields["status"] in ("FAILED", "STORING")
        )
        samples.append(status_flip.time - exit_record.time)
    return {
        "terminal event": kind,
        "runs": runs,
        "min s": min(samples),
        "mean s": sum(samples) / len(samples),
        "max s": max(samples),
        "budget": "< 3s",
    }


def test_detection_latency(benchmark, record_table):
    def run_both():
        return [measure("COMPLETED"), measure("FAILED")]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = render_table(
        "Status-pipeline detection latency (learner exit -> MongoDB status)",
        COLUMNS, rows,
    )
    record_table("detection_latency", table)

    for row in rows:
        assert 0.0 < row["min s"]
        assert row["max s"] < 3.0
