"""Fig. 2 — Performance overhead of DLaaS vs IBM Cloud bare metal.

Regenerates the paper's first evaluation table: images/sec for training
VGG-16 (Caffe) and InceptionV3 (TensorFlow) on 1-4 PCIe K80 GPUs, DLaaS
(full simulated platform, containerized, data streamed from the object
store) against a bare-metal run of the same workload. The paper reports
overheads of 0.32-5.88% with no monotone structure; the shape assertion
checks every configuration stays in the single-digit band and DLaaS
never wins.
"""

from repro.bench import fig2_rows, render_table

COLUMNS = ["benchmark", "framework", "gpus", "bare-metal img/s", "dlaas img/s",
           "measured %", "paper %"]


def test_fig2_overhead(benchmark, record_table):
    rows = benchmark.pedantic(fig2_rows, kwargs={"steps": 100}, rounds=1,
                              iterations=1)
    table = render_table(
        "Fig. 2: DLaaS vs IBM Cloud bare metal (K80, images/sec)", COLUMNS, rows
    )
    record_table("fig2_overhead", table)

    for row in rows:
        # Shape: overhead exists, is minimal (single digits), never negative.
        assert 0.0 < row["measured %"] < 7.0, row
        assert row["dlaas img/s"] < row["bare-metal img/s"], row
    # Shape: throughput scales with GPU count on both platforms.
    by_config = {(r["benchmark"], r["gpus"]): r for r in rows}
    for model in ("vgg16", "inceptionv3"):
        ips = [by_config[(model, g)]["dlaas img/s"] for g in (1, 2, 3, 4)]
        assert ips == sorted(ips)
