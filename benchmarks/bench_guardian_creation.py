"""§III.d — Guardian creation latency.

"Creation of the Guardian is a very quick (less than 3s in our
experiments) single step process." Measured here as the interval from
the LCM creating the Guardian K8S Job to the Guardian container
actively running, across a batch of submissions.
"""

from repro.bench import guardian_creation_rows, render_table

COLUMNS = ["jobs", "min s", "mean s", "max s", "paper"]


def test_guardian_creation(benchmark, record_table):
    rows = benchmark.pedantic(guardian_creation_rows, kwargs={"jobs": 8},
                              rounds=1, iterations=1)
    table = render_table("§III.d: Guardian creation latency", COLUMNS, rows)
    record_table("guardian_creation", table)
    assert rows[0]["max s"] < 3.0
