"""Serving-workload bench: SLO attainment, autoscaler reaction, batch.

Measures the elastic-serving subsystem (``repro.serving``) end to end
on the simulated platform:

1. **Steady diurnal** — a model with a fixed replica pair under a
   sinusoidal day (base 20 -> peak 40 req/s) must hold its p99 SLO for
   >= 99% of requests.
2. **Burst reaction** — a model allowed 1..4 replicas under a flash
   crowd (10 -> 120 req/s). Measures the autoscaler's reaction chain:
   first SLO breach -> first scale-up -> windowed p99 back inside the
   SLO, and asserts the ``ServingSLOBreach`` alert fired and resolved.
3. **Elastic batch inference** — a sharded scoring job whose workers
   are crashed mid-run completes every shard exactly once without the
   batch restarting.
4. **Timeline isolation** — with serving *disabled* (the default), the
   training-only smoke scenario replays the digest committed in
   ``BENCH_perf.json`` bit for bit: carrying the subsystem costs
   nothing when it is off.

Invoke directly for the full measurement (updates the ``serving``
section of ``BENCH_perf.json``)::

    PYTHONPATH=src python benchmarks/bench_serving.py

or as the CI smoke gate (shortened scenarios, asserts against the
committed baseline)::

    PYTHONPATH=src python benchmarks/bench_serving.py --check
"""

import argparse
import json
import sys
from pathlib import Path

import bench_perf

from repro import DlaasPlatform
from repro.core import PlatformConfig
from repro.serving import (
    SHARD_LEASED,
    BatchInferJob,
    BatchInferManifest,
    BurstProfile,
    DiurnalProfile,
    TrafficGenerator,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"

ATTAINMENT_TARGET = 0.99
# Breach -> first scale-up must fit one autoscale pass plus cooldown
# slack; breach -> p99 back inside the SLO additionally pays replica
# boot and the latency window draining slow samples.
REACTION_LIMIT_S = 10.0
RECOVERY_LIMIT_S = 45.0

MODEL = {
    "name": "bench-model",
    "framework": "tensorflow",
    "model": "resnet50",
    "gpu_type": "k80",
    "slo_p99": 0.25,
}

BATCH = {
    "name": "bench-batch",
    "framework": "tensorflow",
    "model": "resnet50",
    "gpu_type": "k80",
    "items": 4000,
    "shard_size": 100,
    "workers": 3,
    "max_workers": 6,
    "item_time": 0.01,
}


def build_platform(seed=13):
    platform = DlaasPlatform(
        seed=seed,
        config=PlatformConfig(gpu_nodes=4, gpus_per_node=4,
                              management_nodes=2, serving=True),
    )
    platform.start()
    return platform


def _deploy_model(platform, **overrides):
    client = platform.client("bench")
    manifest = dict(MODEL)
    manifest.update(overrides)

    def scenario():
        model_id = yield from client.create_model(manifest)
        yield from client.wait_for_model_ready(
            model_id, replicas=manifest.get("min_replicas", 1), timeout=300.0)
        return model_id

    return platform.run_process(scenario(), limit=10_000)


def run_steady(duration=480.0, seed=13):
    """Two diurnal cycles against a fixed replica pair."""
    platform = build_platform(seed)
    model_id = _deploy_model(platform, min_replicas=2, max_replicas=2)
    profile = DiurnalProfile(base_rate=20.0, peak_rate=40.0, period=240.0)
    generator = TrafficGenerator(platform, model_id, profile)
    platform.run_process(generator.run(duration), limit=duration * 10)
    platform.run_for(10.0)  # drain in-flight work
    stats = platform.serving.stats(model_id)
    attainment = platform.serving.slo_attainment(model_id)
    return {
        "profile": "diurnal 20->40 req/s, period 240s",
        "duration_s": duration,
        "replicas": 2,
        "requests": generator.sent,
        "completed": stats["completed"],
        "attainment": round(attainment, 5),
        "window_p99_s": round(stats["window_p99"], 4),
    }


def run_burst(seed=13):
    """Flash crowd against an autoscaled 1..4-replica model."""
    platform = build_platform(seed)
    model_id = _deploy_model(platform, min_replicas=1, max_replicas=4)
    slo = MODEL["slo_p99"]
    queue_high = platform.config.serving_queue_high
    profile = BurstProfile(base_rate=10.0, burst_rate=200.0,
                           burst_start=60.0, burst_duration=90.0)
    generator = TrafficGenerator(platform, model_id, profile)
    samples = []

    def sampler():
        end = platform.kernel.now + 240.0
        while platform.kernel.now < end:
            stats = platform.serving.stats(model_id)
            samples.append((platform.kernel.now, stats["replicas"],
                            stats["window_p99"], stats["queue_depth"]))
            yield platform.kernel.sleep(0.5)

    platform.kernel.spawn(generator.run(200.0), name="burst-traffic")
    platform.run_process(sampler(), limit=10_000)

    def breached(replicas, p99, queue_depth):
        # The autoscaler's own breach condition (latency OR backlog).
        return ((p99 is not None and p99 > slo)
                or queue_depth > queue_high * max(replicas, 1))

    t_breach = next((t for t, r, p99, qd in samples
                     if breached(r, p99, qd)), None)
    scale_up = platform.events.get("Normal", "ServingScaleUp",
                                   "Model", model_id)
    t_scaled = scale_up.first_time if scale_up is not None else None
    t_recovered = None
    if t_scaled is not None:
        t_recovered = next((t for t, r, p99, qd in samples
                            if t > t_scaled and not breached(r, p99, qd)),
                           None)
    peak_replicas = max(r for _t, r, _p, _q in samples)
    breach_alert = platform.events.get("Warning", "ServingSLOBreach",
                                       "Model", model_id)
    resolved = platform.events.get("Normal", "AlertResolved",
                                   "Model", model_id)
    return {
        "profile": "burst 10->200 req/s for 90s",
        "breach_at_s": None if t_breach is None else round(t_breach, 2),
        "scaled_at_s": None if t_scaled is None else round(t_scaled, 2),
        "recovered_at_s":
            None if t_recovered is None else round(t_recovered, 2),
        "reaction_s": (None if None in (t_breach, t_scaled)
                       else round(t_scaled - t_breach, 2)),
        "recovery_s": (None if None in (t_breach, t_recovered)
                       else round(t_recovered - t_breach, 2)),
        "peak_replicas": peak_replicas,
        "attainment": round(platform.serving.slo_attainment(model_id), 5),
        "slo_alert_fired": breach_alert is not None,
        "slo_alert_resolved": resolved is not None,
    }


def run_batch_crash(seed=13, crashes=2):
    """Sharded scoring with workers crashed mid-run."""
    platform = build_platform(seed)
    manifest = BatchInferManifest.from_dict(BATCH)
    job = BatchInferJob(platform, "bench-batch", manifest).start()

    def scenario():
        coordinator = job.coordinator
        for _ in range(crashes):
            # Kill a worker that actually holds a lease, so every crash
            # exercises the requeue path (early on, pods are still
            # pulling images and hold nothing).
            while not coordinator.done:
                holders = {s.holder for s in coordinator.shards
                           if s.state == SHARD_LEASED}
                pods = [p for p in platform.k8s.api.list(
                            "Pod", selector={"dlaas-batch": job.batch_id})
                        if p.phase == "Running"
                        and p.metadata.name in holders]
                if pods:
                    platform.k8s.kubectl.delete_pod(pods[0].metadata.name,
                                                    force=True)
                    break
                yield platform.kernel.sleep(2.0)
        summary = yield from job.wait(timeout=10_000.0)
        return summary

    summary = platform.run_process(scenario(), limit=100_000)
    summary["crashes_injected"] = crashes
    return summary


def run_digest_identity():
    """Training-only smoke must replay the committed digest with the
    serving flag off (the default)."""
    committed = (json.loads(RESULT_PATH.read_text())
                 if RESULT_PATH.exists() else {})
    expected = committed.get("smoke", {}).get("digest")
    measured = bench_perf.run_scenario(bench_perf.SMOKE, fast=True)
    return {
        "expected": expected,
        "measured": measured["digest"],
        "identical": expected == measured["digest"],
    }


def assert_serving(result):
    steady = result["steady"]
    assert steady["attainment"] >= ATTAINMENT_TARGET, (
        f"steady diurnal SLO attainment {steady['attainment']} below "
        f"{ATTAINMENT_TARGET}")
    burst = result["burst"]
    assert burst["reaction_s"] is not None, (
        f"autoscaler never reacted to the burst: {burst}")
    assert 0 <= burst["reaction_s"], (
        f"scale-up recorded before the breach (measurement bug): {burst}")
    assert burst["reaction_s"] <= REACTION_LIMIT_S, (
        f"breach -> scale-up took {burst['reaction_s']}s "
        f"(limit {REACTION_LIMIT_S}s)")
    assert burst["recovery_s"] is not None, (
        f"p99 never recovered after scale-up: {burst}")
    assert burst["recovery_s"] <= RECOVERY_LIMIT_S, (
        f"breach -> recovered took {burst['recovery_s']}s "
        f"(limit {RECOVERY_LIMIT_S}s)")
    assert burst["peak_replicas"] >= 2, burst
    assert burst["slo_alert_fired"] and burst["slo_alert_resolved"], burst
    batch = result["batch"]
    assert batch["completed"] == batch["shards"], batch
    assert batch["max_completions_per_shard"] == 1, (
        f"a shard was applied more than once: {batch}")
    assert batch["requeues"] >= 1, (
        f"worker crashes never exercised the requeue path: {batch}")
    digest = result["training_digest"]
    assert digest["identical"], (
        "serving-off training timeline drifted from the committed smoke "
        f"digest: {digest}")
    return result


def run_full():
    return {
        "steady": run_steady(),
        "burst": run_burst(),
        "batch": run_batch_crash(),
        "training_digest": run_digest_identity(),
    }


def run_check():
    """CI smoke gate: shortened scenarios, same invariants, plus the
    attainment/reaction baselines committed in BENCH_perf.json."""
    if not RESULT_PATH.exists():
        print(f"error: {RESULT_PATH} missing; run the full bench first",
              file=sys.stderr)
        return 2
    committed = json.loads(RESULT_PATH.read_text()).get("serving")
    if committed is None:
        print("error: no committed serving section; run "
              "`python benchmarks/bench_serving.py` first", file=sys.stderr)
        return 2
    result = {
        "steady": run_steady(duration=240.0),
        "burst": run_burst(),
        "batch": run_batch_crash(crashes=1),
        "training_digest": run_digest_identity(),
    }
    try:
        assert_serving(result)
    except AssertionError as exc:
        print(f"serving smoke: FAIL {exc}", file=sys.stderr)
        return 1
    print(f"serving smoke: steady attainment "
          f"{result['steady']['attainment']} "
          f"(baseline {committed['steady']['attainment']}, "
          f"floor {ATTAINMENT_TARGET}) [ok]")
    print(f"serving smoke: burst reaction {result['burst']['reaction_s']}s "
          f"recovery {result['burst']['recovery_s']}s "
          f"(limits {REACTION_LIMIT_S}/{RECOVERY_LIMIT_S}s) [ok]")
    print(f"serving smoke: batch {result['batch']['completed']}/"
          f"{result['batch']['shards']} shards exactly once, "
          f"{result['batch']['requeues']} requeues [ok]")
    print("serving smoke: training-only digest identical [ok]")
    return 0


def test_serving_gate():
    """Benchmark-suite entry: full serving measurement + invariants."""
    result = assert_serving(run_full())
    print(json.dumps(result, indent=2))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="smoke gate against committed BENCH_perf.json")
    args = parser.parse_args(argv)
    if args.check:
        return run_check()
    result = assert_serving(run_full())
    committed = (json.loads(RESULT_PATH.read_text())
                 if RESULT_PATH.exists() else {})
    committed["serving"] = result
    RESULT_PATH.write_text(json.dumps(committed, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"updated serving section of {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
