"""Fig. 3 — DLaaS (PCIe P100) vs NVidia DGX-1 (SXM2 P100, NVLink, HBM).

The paper's second table: TensorFlow HPM benchmarks on 1-2 GPUs. DGX-1
always wins (better memory system, NVLink collectives), but the paper's
point is that the degradation is "non-trivial but only modest (up to
~15%)" against hardware costing 2-3x more. Shape assertions: DGX-1 wins
every configuration, degradation <= ~16%, it grows with GPU count for
the communication-heavy models, and the single-GPU ordering follows
memory-bandwidth sensitivity (InceptionV3 < ResNet-50 < VGG-16).
"""

from repro.bench import fig3_rows, render_table

COLUMNS = ["benchmark", "framework", "gpus", "gpu type", "dgx-1 img/s",
           "dlaas img/s", "measured %", "paper %"]


def test_fig3_dgx1(benchmark, record_table):
    rows = benchmark.pedantic(fig3_rows, kwargs={"steps": 100}, rounds=1,
                              iterations=1)
    table = render_table(
        "Fig. 3: DLaaS vs NVidia DGX-1 (TensorFlow, P100, images/sec)",
        COLUMNS, rows,
    )
    record_table("fig3_dgx1", table)

    by_config = {(r["benchmark"], r["gpus"]): r for r in rows}
    for row in rows:
        assert row["measured %"] > 0.0, row  # DGX-1 always wins
        assert row["measured %"] < 16.5, row  # "only modest (up to ~15%)"
    # Single-GPU gap ordering tracks memory-bandwidth sensitivity.
    assert (by_config[("inceptionv3", 1)]["measured %"]
            < by_config[("resnet50", 1)]["measured %"]
            < by_config[("vgg16", 1)]["measured %"])
    # Communication-heavy models degrade more with a second GPU
    # (PCIe vs NVLink allreduce).
    for model in ("resnet50", "vgg16"):
        assert by_config[(model, 2)]["measured %"] > \
            by_config[(model, 1)]["measured %"]
    # The worst case is VGG-16 x 2 GPUs, as in the paper.
    worst = max(rows, key=lambda r: r["measured %"])
    assert (worst["benchmark"], worst["gpus"]) == ("vgg16", 2)
