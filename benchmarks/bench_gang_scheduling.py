"""Extension bench — gang scheduling for synchronous distributed jobs.

Multi-learner jobs block at MPI wire-up (paper §II: deployment involves
"setting up network (MPI) interconnections") until every learner runs.
Scenario on a 4-GPU node: job A (3 learners) trains; job B (3 learners)
queues; one of A's learners is crashed. Without gang scheduling, B's
first learner holds the freed GPU at the barrier and A's replacement
can never place — a cross-job deadlock. With gang scheduling, partial
placement is refused and both jobs complete.
"""

from conftest import seed_buckets, training_manifest

from repro.bench import render_table
from repro.core import ComponentCrasher, DlaasPlatform, PlatformConfig

COLUMNS = ["gang scheduling", "job A", "job B", "GPUs stuck allocated"]


def _distributed_manifest(name, steps):
    return training_manifest(name, framework="horovod", learners=3,
                             target_steps=steps)


def run_scenario(gang_scheduling):
    platform = DlaasPlatform(
        seed=7,
        config=PlatformConfig(gpu_nodes=1, gpus_per_node=4, management_nodes=2,
                              gang_scheduling=gang_scheduling),
    ).start()
    seed_buckets(platform)
    client = platform.client("bench")

    def submit():
        job_a = yield from client.submit(_distributed_manifest("job-a", 600))
        yield from client.wait_for_status(job_a, statuses={"PROCESSING"},
                                          timeout=2000)
        job_b = yield from client.submit(_distributed_manifest("job-b", 120))
        return job_a, job_b

    job_a, job_b = platform.run_process(submit(), limit=10_000)
    platform.run_for(30.0)
    ComponentCrasher(platform).crash_learner(job_a, ordinal=1)
    platform.run_for(1500.0)  # ample time for both jobs on a healthy path

    def statuses():
        a = yield from client.status(job_a)
        b = yield from client.status(job_b)
        return a["status"], b["status"]

    status_a, status_b = platform.run_process(statuses(), limit=600)
    return {
        "gang scheduling": "on" if gang_scheduling else "off",
        "job A": status_a,
        "job B": status_b,
        "GPUs stuck allocated": platform.k8s.capacity_summary()["gpus_allocated"],
    }


def test_gang_scheduling_prevents_deadlock(benchmark, record_table):
    def run_both():
        return [run_scenario(False), run_scenario(True)]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = render_table(
        "Gang scheduling extension: crash + queued distributed job (4 GPUs)",
        COLUMNS, rows,
    )
    record_table("gang_scheduling", table)

    without, with_gang = rows
    assert without["job A"] != "COMPLETED" and without["job B"] != "COMPLETED"
    assert without["GPUs stuck allocated"] == 4  # deadlocked forever
    assert with_gang["job A"] == "COMPLETED"
    assert with_gang["job B"] == "COMPLETED"
    assert with_gang["GPUs stuck allocated"] == 0
