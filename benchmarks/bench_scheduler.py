"""Ablation — GPU bin-packing vs spread scheduling.

The platform layer must keep placing 1-4 GPU learners densely (§III.b,
§IV capacity). After half the cluster fills with 1-GPU pods, a spread
scheduler has fragmented every node and cannot place any 4-GPU learner;
bin-packing leaves whole nodes free.
"""

from repro.bench import render_table, scheduler_rows

COLUMNS = ["strategy", "1-GPU pods", "4-GPU pods placed", "4-GPU pods stuck"]


def test_scheduler_fragmentation(benchmark, record_table):
    rows = benchmark.pedantic(
        scheduler_rows, kwargs={"nodes": 8, "gpus_per_node": 4},
        rounds=1, iterations=1,
    )
    table = render_table(
        "Scheduler ablation: bin-packing vs spread (8 nodes x 4 GPUs)",
        COLUMNS, rows,
    )
    record_table("scheduler", table)

    binpack = next(r for r in rows if r["strategy"] == "binpack")
    spread = next(r for r in rows if r["strategy"] == "spread")
    assert binpack["4-GPU pods placed"] > spread["4-GPU pods placed"]
    assert binpack["4-GPU pods placed"] >= 4  # half the cluster stayed whole
    assert spread["4-GPU pods placed"] == 0  # every node fragmented
