"""Benchmark-suite helpers.

Every benchmark regenerates one table/figure, prints it, and archives it
under ``bench_results/`` so the run leaves reviewable artifacts even
when pytest captures stdout.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture
def record_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name, text):
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record
