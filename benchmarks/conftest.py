"""Benchmark-suite helpers.

Every benchmark regenerates one table/figure, prints it, and archives it
under ``bench_results/`` so the run leaves reviewable artifacts even
when pytest captures stdout.

Shared scenario plumbing (tenant credentials, the canonical training
manifest, bucket seeding) lives here too: the individual benches used
to carry their own near-identical copies. This module is importable
both under pytest (conftest auto-import) and from benches run as
scripts (``python benchmarks/bench_x.py`` puts this directory on
``sys.path``).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"

CREDS = {"access_key": "AK", "secret": "SK"}


def training_manifest(name, **overrides):
    """The canonical single-learner training manifest the benches vary."""
    base = {
        "name": name, "framework": "tensorflow", "model": "resnet50",
        "learners": 1, "gpus_per_learner": 1, "gpu_type": "k80",
        "target_steps": 100, "checkpoint_interval": 15.0,
        "dataset_size_mb": 100,
        "data": {"bucket": "train-data", "credentials": CREDS},
        "results": {"bucket": "results", "credentials": CREDS},
    }
    base.update(overrides)
    return base


def seed_buckets(platform, size_mb=100):
    """Standard object-store fixtures every training scenario needs."""
    platform.seed_training_data("train-data", CREDS, size_mb=size_mb)
    platform.ensure_results_bucket("results", CREDS)
    return platform


@pytest.fixture
def record_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name, text):
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record
