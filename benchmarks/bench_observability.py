"""Observability overhead: the cost of causal tracing and metrics.

Runs the same job through the full platform with span tracing on and
off and compares (a) wall-clock runtime — the instrumentation's real
cost — and (b) the *simulated* timeline, which must be bit-identical:
spans and metrics observe the simulation, they must never perturb it.
The paper's platform makes the same promise (§IV: monitoring overhead
within the noise of the training measurements).
"""

import time

from repro.bench import bench_manifest, build_platform, render_table
from repro.core import PlatformConfig

COLUMNS = ["mode", "wall s", "sim completion s", "spans", "exposition lines"]

STEPS = 60
ROUNDS = 3


def _run_once(span_tracing):
    config = PlatformConfig(gpu_nodes=2, gpus_per_node=4, gpu_type="k80",
                            management_nodes=2, span_tracing=span_tracing)
    from repro.core import DlaasPlatform

    platform = DlaasPlatform(seed=0, config=config).start()
    creds = {"access_key": "bench", "secret": "bench"}
    platform.seed_training_data("bench-data", creds, size_mb=200)
    platform.ensure_results_bucket("bench-results", creds)
    manifest = bench_manifest("vgg16", "tensorflow", gpus=1, gpu_type="k80",
                              steps=STEPS)
    client = platform.client("bench")
    started = time.perf_counter()
    job_id, doc = platform.run_process(
        client.run_to_completion(manifest, timeout=100_000), limit=500_000
    )
    wall = time.perf_counter() - started
    assert doc["status"] == "COMPLETED", doc
    exit_rec = platform.tracer.last(component="learner-0", kind="learner-exit",
                                    job=job_id)
    return {
        "wall": wall,
        "sim_completion": exit_rec.time,
        "spans": len(platform.tracer.spans),
        "exposition_lines": len(platform.metrics.expose().splitlines()),
    }


def observability_rows():
    rows = []
    for mode, span_tracing in (("spans off", False), ("spans on", True)):
        runs = [_run_once(span_tracing) for _ in range(ROUNDS)]
        best = min(run["wall"] for run in runs)
        rows.append({
            "mode": mode,
            "wall s": round(best, 3),
            "sim completion s": round(runs[0]["sim_completion"], 3),
            "spans": runs[0]["spans"],
            "exposition lines": runs[0]["exposition_lines"],
        })
    return rows


def test_observability_overhead(record_table):
    rows = observability_rows()
    off, on = rows
    overhead = (on["wall s"] - off["wall s"]) / off["wall s"] * 100.0
    for row in rows:
        row["overhead %"] = round(overhead, 2) if row["mode"] == "spans on" else 0.0
    table = render_table(
        "Observability overhead: span tracing on vs off",
        COLUMNS + ["overhead %"], rows,
    )
    record_table("observability_overhead", table)

    # Shape: tracing observes the simulation without perturbing it —
    # the simulated timeline is identical with spans on or off.
    assert on["sim completion s"] == off["sim completion s"], rows
    # Shape: spans off really disables collection; on collects the tree.
    assert off["spans"] == 0 and on["spans"] > 5, rows
    # Metrics stay on in both modes (they are load-bearing elsewhere).
    assert off["exposition lines"] > 50 and on["exposition lines"] > 50, rows
    # Shape: instrumentation cost stays modest (generous bound — CI
    # machines are noisy; the point is "not multiplicative").
    assert on["wall s"] < off["wall s"] * 2.0, rows
