"""Consistency-audit benchmark: checker throughput + nemesis soak gate.

Three measurements over the ``repro.audit`` pipeline (flight recorder
-> linearizability checker -> ``ConsistencyViolation`` alert):

1. **Nemesis soak** — concurrent clients hammer etcd while a nemesis
   mixes every gray impairment kind with crash faults; the recorded
   client history must PASS the checker, both through the online
   auditor and through a from-scratch re-check. The re-check is timed:
   ops-checked/sec and checker wall are the audit-cost numbers of
   EXPERIMENTS.md.
2. **Seeded bug** — the ``stale_reads`` node toggle disables the read
   lease; a deterministic partition scenario then manufactures a stale
   read and the checker must FAIL with a rendered counterexample, and
   the ``ConsistencyViolation`` alert must reach firing. This proves
   the green soak above is a real verdict, not a vacuous checker.
3. **Digest identity** — the training smoke scenario run with
   ``history_recording=True`` must replay the digest committed in
   ``BENCH_perf.json`` bit for bit: recording is direct appends, no
   RPCs/RNG/sleeps.

Invoke directly for the full measurement (updates the ``consistency``
section of ``BENCH_perf.json`` and prints the EXPERIMENTS.md table)::

    PYTHONPATH=src python benchmarks/bench_consistency.py

or as the CI smoke gate (shorter soak, same invariants)::

    PYTHONPATH=src python benchmarks/bench_consistency.py --check
"""

import argparse
import json
import sys
import time
from pathlib import Path

import bench_perf

from repro.audit import check_history, render_witness
from repro.audit.nemesis import NemesisSoak, seeded_stale_read_scenario
from repro.bench import bench_manifest, build_platform, render_table

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"

# Tight monitoring cadence so the online auditor gets many passes per
# soak; recording itself is timeline-neutral regardless.
FAST = dict(history_recording=True, audit_interval=2.0,
            scrape_interval=0.25, alert_eval_interval=0.25,
            event_flush_interval=1.0)

SOAK = dict(clients=4, keys=6, duration=40.0)
SOAK_SMOKE = dict(clients=3, keys=4, duration=15.0)

# Wall-clock floor for the from-scratch re-check: deliberately loose
# (the observed rate is orders of magnitude higher) — it exists to
# catch a complexity regression, not machine-to-machine variance.
MIN_OPS_CHECKED_PER_SEC = 200.0

COLUMNS = ["scenario", "ops", "faults", "checker verdict", "checker wall s",
           "ops/s"]


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def run_soak(seed=23, **soak_overrides):
    """Mixed gray+crash soak; returns audit outcome and checker cost."""
    platform = build_platform("k80", gpus_per_node=4, seed=seed, **FAST)
    soak = NemesisSoak(platform, **{**SOAK, **soak_overrides})
    out = soak.run()
    # From-scratch re-check of the full history, timed: the online
    # auditor amortizes via closed-prefix compaction, so this is the
    # worst-case checker cost for the soak's history.
    start = time.perf_counter()
    recheck = check_history(platform.history)
    wall = time.perf_counter() - start
    return {
        "ops_issued": out["ops_issued"],
        "faults_injected": len(out["faults_injected"]),
        "history": out["history"],
        "online_audit": out["audit"],
        "soak_ok": out["ok"],
        "recheck_ok": recheck.ok,
        "keys_checked": recheck.keys_checked,
        "ops_checked": recheck.ops_checked,
        "checker_wall_s": round(wall, 4),
        "ops_checked_per_sec": (round(recheck.ops_checked / wall, 1)
                                if wall > 0 else None),
    }


def run_seeded_bug(seed=5):
    """Stale-read bug enabled: the checker must fail, the alert fire."""
    platform = build_platform("k80", gpus_per_node=4, seed=seed, **FAST)
    for node_id in platform.etcd.node_ids:
        platform.etcd.node(node_id).stale_reads = True
    observed, outcome = seeded_stale_read_scenario(platform)
    # Let the online pipeline catch up: auditor pass -> counter bump ->
    # scrape -> ConsistencyViolation (for: 0) firing.
    platform.run_for(3 * FAST["audit_interval"])
    engine = platform.monitoring.engine
    fired = any(to == "firing"
                for _from, to in engine.transitions("ConsistencyViolation"))
    return {
        "observed": observed,
        "violation_detected": not outcome.ok,
        "alert_fired": fired,
        "witness": (render_witness(outcome.witness)
                    if outcome.witness else None),
    }


def run_digest_identity():
    """The training smoke scenario with recording ON must replay the
    committed smoke digest bit for bit. ``bench_perf.run_scenario``
    takes no config overrides, so the drive loop is replicated here
    verbatim on a ``history_recording=True`` platform."""
    committed = (json.loads(RESULT_PATH.read_text())
                 if RESULT_PATH.exists() else {})
    expected = committed.get("smoke", {}).get("digest")
    scenario = bench_perf.SMOKE
    platform = build_platform(
        "k80", gpus_per_node=scenario["gpus_per_node"],
        gpu_nodes=scenario["gpu_nodes"], seed=scenario["seed"],
        history_recording=True,
    )
    client = platform.client("perf")

    def drive():
        ids = []
        for i in range(scenario["jobs"]):
            manifest = bench_manifest("resnet50", "tensorflow", 2, "k80",
                                      steps=scenario["steps"])
            manifest["name"] = f"perf-{i}"
            ids.append((yield from client.submit(manifest)))
        docs = []
        for job_id in ids:
            docs.append((yield from client.wait_for_status(
                job_id, timeout=100_000)))
        return docs

    docs = platform.run_process(drive(), limit=500_000)
    platform.run_for(30.0)
    measured = bench_perf.timeline_digest(platform, docs)
    auditor = platform.monitoring.auditor
    return {
        "expected": expected,
        "measured": measured,
        "identical": expected == measured,
        "history_ops": len(platform.history),
        "platform_ops_audited": auditor.ops_checked,
        "platform_audit_clean": auditor.ok,
    }


# ----------------------------------------------------------------------
# Assertions / rendering / entry points
# ----------------------------------------------------------------------

def assert_consistency(result, perf_floor=True):
    soak = result["soak"]
    assert soak["soak_ok"], (
        f"nemesis soak history failed the online audit: "
        f"{soak['online_audit']}")
    assert soak["recheck_ok"], "from-scratch re-check found a violation"
    assert soak["history"]["ok"] > 0, f"soak recorded no ops: {soak}"
    assert soak["faults_injected"] > 0, "nemesis injected nothing"
    if perf_floor:
        assert soak["ops_checked_per_sec"] >= MIN_OPS_CHECKED_PER_SEC, (
            f"checker throughput {soak['ops_checked_per_sec']} ops/s "
            f"below the {MIN_OPS_CHECKED_PER_SEC} floor")
    seeded = result["seeded_bug"]
    assert seeded["violation_detected"], (
        "checker passed a seeded stale read (vacuous checker)")
    assert seeded["witness"], "violation reported without a witness"
    assert seeded["alert_fired"], (
        "ConsistencyViolation alert never reached firing")
    digest = result["timeline_digest"]
    assert digest["identical"], (
        "history recording drifted the training timeline from the "
        f"committed smoke digest: {digest}")
    assert digest["platform_audit_clean"], (
        "the platform's own etcd traffic failed the audit")
    return result


def render(result):
    soak = result["soak"]
    rows = [
        {"scenario": "nemesis soak", "ops": soak["history"]["ok"],
         "faults": soak["faults_injected"],
         "checker verdict": "PASS" if soak["recheck_ok"] else "FAIL",
         "checker wall s": soak["checker_wall_s"],
         "ops/s": soak["ops_checked_per_sec"]},
        {"scenario": "seeded stale read", "ops": 3, "faults": 1,
         "checker verdict": ("FAIL (expected)"
                             if result["seeded_bug"]["violation_detected"]
                             else "PASS (bug!)"),
         "checker wall s": "-", "ops/s": "-"},
        {"scenario": "training smoke (audit on)",
         "ops": result["timeline_digest"]["history_ops"], "faults": 0,
         "checker verdict": ("PASS"
                             if result["timeline_digest"]
                             ["platform_audit_clean"] else "FAIL"),
         "checker wall s": "-", "ops/s": "-"},
    ]
    return render_table(
        "Consistency audit (linearizability checker under nemesis)",
        COLUMNS, rows)


def run_full():
    return {
        "soak": run_soak(),
        "seeded_bug": run_seeded_bug(),
        "timeline_digest": run_digest_identity(),
    }


def run_check():
    """CI smoke gate: shorter soak, same invariants, no perf floor."""
    if not RESULT_PATH.exists():
        print(f"error: {RESULT_PATH} missing; run the full bench first",
              file=sys.stderr)
        return 2
    committed = json.loads(RESULT_PATH.read_text()).get("consistency")
    if committed is None:
        print("error: no committed consistency section; run "
              "`python benchmarks/bench_consistency.py` first",
              file=sys.stderr)
        return 2
    result = {
        "soak": run_soak(**SOAK_SMOKE),
        "seeded_bug": run_seeded_bug(),
        "timeline_digest": run_digest_identity(),
    }
    try:
        assert_consistency(result, perf_floor=False)
    except AssertionError as exc:
        print(f"consistency smoke: FAIL {exc}", file=sys.stderr)
        seeded = result["seeded_bug"]
        if seeded.get("witness"):
            print(seeded["witness"], file=sys.stderr)
        return 1
    soak = result["soak"]
    print(f"consistency smoke: soak {soak['history']['ok']} ops / "
          f"{soak['faults_injected']} faults -> linearizable [ok]")
    print("consistency smoke: seeded stale read caught, "
          "ConsistencyViolation fired [ok]")
    print("consistency smoke: recording-on timeline digest identical [ok]")
    return 0


def test_consistency_gate(record_table):
    """Benchmark-suite entry: full soak + seeded bug + digest."""
    result = assert_consistency(run_full())
    record_table("consistency", render(result))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="smoke gate against committed BENCH_perf.json")
    args = parser.parse_args(argv)
    if args.check:
        return run_check()
    result = assert_consistency(run_full())
    committed = (json.loads(RESULT_PATH.read_text())
                 if RESULT_PATH.exists() else {})
    committed["consistency"] = result
    RESULT_PATH.write_text(json.dumps(committed, indent=2) + "\n")
    print(render(result))
    seeded_witness = result["seeded_bug"]["witness"]
    if seeded_witness:
        print()
        print("seeded-bug counterexample (the checker's FAIL evidence):")
        print(seeded_witness)
    print(f"updated consistency section of {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
