"""Extension bench — elasticity via the cluster autoscaler.

The paper's platform goals include elasticity. A burst of jobs beyond
the fixed pool's capacity either queues (fixed cluster) or triggers
node provisioning (autoscaled cluster, paying a realistic VM boot
delay). Measures per-job queue time and burst makespan.

The same fixed-vs-elastic comparison is re-run for the serving side's
batch-inference jobs (``repro.serving.batch``): a worker Deployment
scaled out mid-run finishes the shard table sooner than one pinned at
its initial size, with every shard still completed exactly once.
"""

from conftest import seed_buckets, training_manifest

from repro.bench import render_table
from repro.core import DlaasPlatform, PlatformConfig

COLUMNS = ["cluster", "jobs", "completed", "mean wait s", "max wait s",
           "burst makespan s", "nodes provisioned"]


def _manifest(name):
    return training_manifest(name, gpus_per_learner=4,
                             checkpoint_interval=0.0)


def run_burst(autoscaled, jobs=6):
    platform = DlaasPlatform(
        seed=21,
        config=PlatformConfig(gpu_nodes=1, gpus_per_node=4, management_nodes=2),
    )
    autoscaler = None
    if autoscaled:
        autoscaler = platform.enable_autoscaler(max_nodes=6, boot_time=60.0,
                                                idle_timeout=120.0)
    platform.start()
    seed_buckets(platform)
    client = platform.client("burst")

    def scenario():
        ids = []
        for i in range(jobs):
            ids.append((yield from client.submit(_manifest(f"burst-{i}"))))
        docs = []
        for job_id in ids:
            docs.append((yield from client.wait_for_status(job_id,
                                                           timeout=100_000)))
        return docs

    start = platform.kernel.now
    docs = platform.run_process(scenario(), limit=500_000)
    makespan = platform.kernel.now - start
    # Wait = submission to first training step (QUEUED -> PROCESSING):
    # the user-visible queueing cost of an overloaded pool.
    waits = []
    for doc in docs:
        history = {h["status"]: h["time"] for h in doc["status_history"]}
        waits.append(history["PROCESSING"] - history["QUEUED"])
    return {
        "cluster": "autoscaled" if autoscaled else "fixed (1 node)",
        "jobs": jobs,
        "completed": sum(1 for d in docs if d["status"] == "COMPLETED"),
        "mean wait s": sum(waits) / len(waits),
        "max wait s": max(waits),
        "burst makespan s": makespan,
        "nodes provisioned": autoscaler.scale_ups if autoscaler else 0,
    }


BATCH_COLUMNS = ["workers", "shards", "completed", "requeues",
                 "makespan s", "max completions/shard"]


def run_batch_infer(elastic):
    from repro.serving import BatchInferJob, BatchInferManifest

    platform = DlaasPlatform(
        seed=21,
        config=PlatformConfig(gpu_nodes=2, gpus_per_node=4,
                              management_nodes=2, serving=True),
    ).start()
    manifest = BatchInferManifest.from_dict({
        "name": "score", "framework": "tensorflow", "model": "resnet50",
        "gpu_type": "k80", "items": 6000, "shard_size": 100,
        "workers": 2, "max_workers": 8, "item_time": 0.01,
    })
    job = BatchInferJob(platform, "bench-batch", manifest).start()

    def scenario():
        if elastic:
            # Mid-run scale-out: the harness's "burst" is a deadline
            # pull-in rather than extra offered load.
            yield platform.kernel.sleep(10.0)
            job.scale(8)
        summary = yield from job.wait(timeout=10_000.0)
        return summary

    summary = platform.run_process(scenario(), limit=100_000)
    return {
        "workers": "2 -> 8 (elastic)" if elastic else "2 (fixed)",
        "shards": summary["shards"],
        "completed": summary["completed"],
        "requeues": summary["requeues"],
        "makespan s": summary["makespan_s"],
        "max completions/shard": summary["max_completions_per_shard"],
    }


def test_elasticity(benchmark, record_table):
    def run_both():
        return [run_burst(False), run_burst(True)]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = render_table(
        "Elasticity extension: 6-job burst of 4-GPU jobs on a 4-GPU pool",
        COLUMNS, rows,
    )
    record_table("elasticity", table)

    fixed, elastic = rows
    assert fixed["completed"] == elastic["completed"] == 6
    assert elastic["nodes provisioned"] >= 1
    # Elasticity shortens the burst: jobs run in parallel on new nodes
    # instead of serializing behind the single fixed node.
    assert elastic["burst makespan s"] < fixed["burst makespan s"]
    assert elastic["max wait s"] < fixed["max wait s"]


def test_batch_infer_elasticity(benchmark, record_table):
    def run_both():
        return [run_batch_infer(False), run_batch_infer(True)]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = render_table(
        "Batch-inference elasticity: 60-shard job, workers scaled 2 -> 8",
        BATCH_COLUMNS, rows,
    )
    record_table("batch_infer_elasticity", table)

    fixed, elastic = rows
    assert fixed["completed"] == fixed["shards"]
    assert elastic["completed"] == elastic["shards"]
    # Scaling out mid-run shortens the makespan without re-scoring:
    # exactly-once accounting holds in both configurations.
    assert elastic["makespan s"] < fixed["makespan s"]
    assert fixed["max completions/shard"] == 1
    assert elastic["max completions/shard"] == 1
