"""Extension bench — elasticity via the cluster autoscaler.

The paper's platform goals include elasticity. A burst of jobs beyond
the fixed pool's capacity either queues (fixed cluster) or triggers
node provisioning (autoscaled cluster, paying a realistic VM boot
delay). Measures per-job queue time and burst makespan.
"""

from repro.bench import render_table
from repro.core import DlaasPlatform, PlatformConfig

CREDS = {"access_key": "AK", "secret": "SK"}

COLUMNS = ["cluster", "jobs", "completed", "mean wait s", "max wait s",
           "burst makespan s", "nodes provisioned"]


def _manifest(name):
    return {
        "name": name, "framework": "tensorflow", "model": "resnet50",
        "learners": 1, "gpus_per_learner": 4, "gpu_type": "k80",
        "target_steps": 100, "checkpoint_interval": 0.0,
        "dataset_size_mb": 100,
        "data": {"bucket": "train-data", "credentials": CREDS},
        "results": {"bucket": "results", "credentials": CREDS},
    }


def run_burst(autoscaled, jobs=6):
    platform = DlaasPlatform(
        seed=21,
        config=PlatformConfig(gpu_nodes=1, gpus_per_node=4, management_nodes=2),
    )
    autoscaler = None
    if autoscaled:
        autoscaler = platform.enable_autoscaler(max_nodes=6, boot_time=60.0,
                                                idle_timeout=120.0)
    platform.start()
    platform.seed_training_data("train-data", CREDS, size_mb=100)
    platform.ensure_results_bucket("results", CREDS)
    client = platform.client("burst")

    def scenario():
        ids = []
        for i in range(jobs):
            ids.append((yield from client.submit(_manifest(f"burst-{i}"))))
        docs = []
        for job_id in ids:
            docs.append((yield from client.wait_for_status(job_id,
                                                           timeout=100_000)))
        return docs

    start = platform.kernel.now
    docs = platform.run_process(scenario(), limit=500_000)
    makespan = platform.kernel.now - start
    # Wait = submission to first training step (QUEUED -> PROCESSING):
    # the user-visible queueing cost of an overloaded pool.
    waits = []
    for doc in docs:
        history = {h["status"]: h["time"] for h in doc["status_history"]}
        waits.append(history["PROCESSING"] - history["QUEUED"])
    return {
        "cluster": "autoscaled" if autoscaled else "fixed (1 node)",
        "jobs": jobs,
        "completed": sum(1 for d in docs if d["status"] == "COMPLETED"),
        "mean wait s": sum(waits) / len(waits),
        "max wait s": max(waits),
        "burst makespan s": makespan,
        "nodes provisioned": autoscaler.scale_ups if autoscaler else 0,
    }


def test_elasticity(benchmark, record_table):
    def run_both():
        return [run_burst(False), run_burst(True)]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = render_table(
        "Elasticity extension: 6-job burst of 4-GPU jobs on a 4-GPU pool",
        COLUMNS, rows,
    )
    record_table("elasticity", table)

    fixed, elastic = rows
    assert fixed["completed"] == elastic["completed"] == 6
    assert elastic["nodes provisioned"] >= 1
    # Elasticity shortens the burst: jobs run in parallel on new nodes
    # instead of serializing behind the single fixed node.
    assert elastic["burst makespan s"] < fixed["burst makespan s"]
    assert elastic["max wait s"] < fixed["max wait s"]
