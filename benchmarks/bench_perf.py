"""Wall-clock perf gate for the simulator fast path.

Runs the fixed 24-job scalability scenario twice — once on the fast
path (indexed docstore planner, cancellable timers, copy-light reads)
and once with every optimization switched off via
``PlatformConfig(sim_fast_path=False)`` — and verifies three things:

1. **Determinism**: both runs produce bit-identical timelines (the
   full trace-record sequence, every job's status history, and the
   final simulated clock).
2. **Speedup**: the fast path processes kernel events at >= 2x the
   wall-clock rate of the committed pre-optimization baseline
   (``SEED_BASELINE``, measured on the seed tree with the identical
   scenario).
3. **Regression gate** (``--check``): a small smoke scenario must not
   regress more than 25% against the wall time committed in
   ``BENCH_perf.json``.

Invoke directly for the full measurement (writes ``BENCH_perf.json``
at the repo root)::

    PYTHONPATH=src python benchmarks/bench_perf.py

or as the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_perf.py --check
"""

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

from repro.bench import bench_manifest, build_platform

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"

SCENARIO = {"jobs": 24, "seed": 2, "steps": 60, "gpus_per_node": 4,
            "gpu_nodes": 8}
SMOKE = {"jobs": 6, "seed": 2, "steps": 30, "gpus_per_node": 4,
         "gpu_nodes": 4}

# The pre-optimization tree (commit 4155122) driving the identical
# 24-job scenario on the reference machine, events counted by wrapping
# Kernel.step. This is the "before" column of EXPERIMENTS.md and the
# denominator of the speedup gate; refresh it if the scenario changes.
SEED_BASELINE = {
    "commit": "4155122",
    "wall_s": 13.53,
    "sim_s": 228.093,
    "events_processed": 938398,
    "events_per_sec": 69358.2,
    "jobs_per_sec": 1.774,
}

SPEEDUP_TARGET = 2.0
CHECK_TOLERANCE = 1.25  # --check fails above 125% of the committed wall


def timeline_digest(platform, docs):
    """A stable fingerprint of everything the simulation decided."""
    trace = [(round(r.time, 9), r.component, r.kind) for r in
             platform.tracer.records]
    histories = [
        [(h["status"], round(h["time"], 9)) for h in doc["status_history"]]
        for doc in docs
    ]
    blob = repr((trace, histories, round(platform.kernel.now, 9)))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_scenario(scenario, fast=True):
    """One measured run; returns wall time, rates, and the digest."""
    platform = build_platform(
        "k80", gpus_per_node=scenario["gpus_per_node"],
        gpu_nodes=scenario["gpu_nodes"], seed=scenario["seed"],
        sim_fast_path=fast,
    )
    client = platform.client("perf")
    jobs = scenario["jobs"]

    def drive():
        ids = []
        for i in range(jobs):
            manifest = bench_manifest("resnet50", "tensorflow", 2, "k80",
                                      steps=scenario["steps"])
            manifest["name"] = f"perf-{i}"
            ids.append((yield from client.submit(manifest)))
        docs = []
        for job_id in ids:
            docs.append((yield from client.wait_for_status(job_id,
                                                           timeout=100_000)))
        return docs

    start = time.perf_counter()
    docs = platform.run_process(drive(), limit=500_000)
    platform.run_for(30.0)
    wall = time.perf_counter() - start

    kernel = platform.kernel
    completed = sum(1 for d in docs if d["status"] == "COMPLETED")
    return {
        "mode": "fast" if fast else "slow",
        "jobs": jobs,
        "completed": completed,
        "wall_s": round(wall, 3),
        "sim_s": round(kernel.now, 3),
        "events_processed": kernel.events_processed,
        "events_per_sec": round(kernel.events_processed / wall, 1),
        "jobs_per_sec": round(jobs / wall, 3),
        "timers_cancelled": kernel.timers_cancelled,
        "dead_entries_skipped": kernel.dead_entries_skipped,
        "dead_entry_ratio": round(kernel.dead_entry_ratio, 6),
        "digest": timeline_digest(platform, docs),
    }


def run_full():
    """Fast vs slow on the 24-job scenario; returns the result doc."""
    fast = run_scenario(SCENARIO, fast=True)
    slow = run_scenario(SCENARIO, fast=False)
    smoke = run_scenario(SMOKE, fast=True)
    return {
        "scenario": SCENARIO,
        "seed_baseline": SEED_BASELINE,
        "fast": fast,
        "slow": slow,
        # vs the committed pre-optimization baseline (the gate)
        "speedup_wall": round(SEED_BASELINE["wall_s"] / fast["wall_s"], 2),
        "speedup_events_per_sec": round(
            fast["events_per_sec"] / SEED_BASELINE["events_per_sec"], 2),
        # vs the in-tree slow path (compat switches only; it shares the
        # mode-independent caches, so this understates the real win)
        "speedup_vs_slow_path": round(slow["wall_s"] / fast["wall_s"], 2),
        "timelines_identical": fast["digest"] == slow["digest"],
        "smoke": {"scenario": SMOKE, "wall_s": smoke["wall_s"],
                  "events_per_sec": smoke["events_per_sec"],
                  "digest": smoke["digest"]},
    }


def assert_full(result):
    fast, slow = result["fast"], result["slow"]
    assert fast["completed"] == fast["jobs"], fast
    assert slow["completed"] == slow["jobs"], slow
    assert result["timelines_identical"], (
        "fast path changed the simulated timeline: "
        f"{fast['digest']} != {slow['digest']}")
    assert result["speedup_events_per_sec"] >= SPEEDUP_TARGET, (
        f"events/sec speedup {result['speedup_events_per_sec']}x over the "
        f"seed baseline is below the {SPEEDUP_TARGET}x target")
    return result


def run_check():
    """CI smoke gate: small scenario vs the committed baseline."""
    if not RESULT_PATH.exists():
        print(f"error: {RESULT_PATH} missing; run the full bench first",
              file=sys.stderr)
        return 2
    committed = json.loads(RESULT_PATH.read_text())
    baseline = committed["smoke"]["wall_s"]
    measured = run_scenario(SMOKE, fast=True)
    limit = baseline * CHECK_TOLERANCE
    status = "ok" if measured["wall_s"] <= limit else "REGRESSION"
    print(f"perf smoke: wall={measured['wall_s']}s baseline={baseline}s "
          f"limit={round(limit, 3)}s [{status}]")
    if measured["digest"] != committed["smoke"]["digest"]:
        print("perf smoke: WARNING timeline digest drifted from baseline "
              "(expected after any scheduling-visible change; rerun the "
              "full bench to refresh BENCH_perf.json)")
    return 0 if status == "ok" else 1


def test_perf_gate():
    """Benchmark-suite entry: full fast-vs-slow comparison."""
    result = assert_full(run_full())
    print(json.dumps({k: result[k] for k in
                      ("speedup_wall", "speedup_events_per_sec",
                       "timelines_identical")}, indent=2))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="smoke gate against committed BENCH_perf.json")
    args = parser.parse_args(argv)
    if args.check:
        return run_check()
    result = assert_full(run_full())
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
