"""Wall-clock perf gate for the simulator fast path.

Runs the fixed 24-job scalability scenario twice — once on the fast
path (indexed docstore planner, cancellable timers, copy-light reads)
and once with every optimization switched off via
``PlatformConfig(sim_fast_path=False)`` — and verifies three things:

1. **Determinism**: both runs produce bit-identical timelines (the
   full trace-record sequence, every job's status history, and the
   final simulated clock).
2. **Speedup**: the fast path processes kernel events at >= 2x the
   wall-clock rate of the committed pre-optimization baseline
   (``SEED_BASELINE``, measured on the seed tree with the identical
   scenario).
3. **Regression gate** (``--check``): a small smoke scenario must not
   regress more than 25% against the wall time committed in
   ``BENCH_perf.json``.

Invoke directly for the full measurement (writes ``BENCH_perf.json``
at the repo root)::

    PYTHONPATH=src python benchmarks/bench_perf.py

or as the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_perf.py --check
"""

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

from repro.bench import bench_manifest, build_platform, build_sharded_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"

SCENARIO = {"jobs": 24, "seed": 2, "steps": 60, "gpus_per_node": 4,
            "gpu_nodes": 8}
SMOKE = {"jobs": 6, "seed": 2, "steps": 30, "gpus_per_node": 4,
         "gpu_nodes": 4}

# Sharded-kernel measurement (repro.core.sharded): the same workload
# shape at 128 jobs, run once on a single kernel (the PR-5 fast path)
# and once partitioned into 4 platform cells — identical aggregate
# GPU capacity — on 1 worker and on 4 multiprocessing workers. The
# merged timeline must be identical for every worker count
# (unconditional gate); the 4-worker run must additionally beat the
# single-kernel run by ``SHARDED_SPEEDUP_TARGET`` — gated only when
# the machine has at least as many CPUs as cells, because the window
# protocol parallelizes compute, not the lockstep: on fewer cores the
# workers time-slice one core and the barrier overhead is all that is
# measured.
SHARDED_SCENARIO = {"jobs": 128, "seed": 2, "steps": 60,
                    "gpus_per_node": 4, "gpu_nodes": 8}
SHARDED_CELLS = 4
SHARDED_SMOKE = {"jobs": 6, "seed": 2, "steps": 30, "gpus_per_node": 4,
                 "gpu_nodes": 4}
SHARDED_SMOKE_CELLS = 2

# The pre-optimization tree (commit 4155122) driving the identical
# 24-job scenario on the reference machine, events counted by wrapping
# Kernel.step. This is the "before" column of EXPERIMENTS.md and the
# denominator of the speedup gate; refresh it if the scenario changes.
SEED_BASELINE = {
    "commit": "4155122",
    "wall_s": 13.53,
    "sim_s": 228.093,
    "events_processed": 938398,
    "events_per_sec": 69358.2,
    "jobs_per_sec": 1.774,
}

SPEEDUP_TARGET = 2.0
SHARDED_SPEEDUP_TARGET = 2.0
CHECK_TOLERANCE = 1.25  # --check fails above 125% of the committed wall


def timeline_digest(platform, docs):
    """A stable fingerprint of everything the simulation decided."""
    trace = [(round(r.time, 9), r.component, r.kind) for r in
             platform.tracer.records]
    histories = [
        [(h["status"], round(h["time"], 9)) for h in doc["status_history"]]
        for doc in docs
    ]
    blob = repr((trace, histories, round(platform.kernel.now, 9)))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_scenario(scenario, fast=True):
    """One measured run; returns wall time, rates, and the digest."""
    platform = build_platform(
        "k80", gpus_per_node=scenario["gpus_per_node"],
        gpu_nodes=scenario["gpu_nodes"], seed=scenario["seed"],
        sim_fast_path=fast,
    )
    client = platform.client("perf")
    jobs = scenario["jobs"]

    def drive():
        ids = []
        for i in range(jobs):
            manifest = bench_manifest("resnet50", "tensorflow", 2, "k80",
                                      steps=scenario["steps"])
            manifest["name"] = f"perf-{i}"
            ids.append((yield from client.submit(manifest)))
        docs = []
        for job_id in ids:
            docs.append((yield from client.wait_for_status(job_id,
                                                           timeout=100_000)))
        return docs

    start = time.perf_counter()
    docs = platform.run_process(drive(), limit=500_000)
    platform.run_for(30.0)
    wall = time.perf_counter() - start

    kernel = platform.kernel
    completed = sum(1 for d in docs if d["status"] == "COMPLETED")
    return {
        "mode": "fast" if fast else "slow",
        "jobs": jobs,
        "completed": completed,
        "wall_s": round(wall, 3),
        "sim_s": round(kernel.now, 3),
        "events_processed": kernel.events_processed,
        "events_per_sec": round(kernel.events_processed / wall, 1),
        "jobs_per_sec": round(jobs / wall, 3),
        "timers_cancelled": kernel.timers_cancelled,
        "dead_entries_skipped": kernel.dead_entries_skipped,
        "dead_entry_ratio": round(kernel.dead_entry_ratio, 6),
        "digest": timeline_digest(platform, docs),
    }


def run_sharded(scenario, cells, workers, executor="process"):
    """One measured sharded run; returns wall time, digest, stats."""
    start = time.perf_counter()
    sharded = build_sharded_bench(scenario, cells).run(
        workers=workers, executor=executor)
    wall = time.perf_counter() - start
    results = sharded.results
    return {
        "cells": cells,
        "workers": workers,
        "jobs": scenario["jobs"],
        "completed": sum(r["completed"] for r in results),
        "wall_s": round(wall, 3),
        "sim_s": round(max(r["now"] for r in results), 3),
        "events_processed": sum(r["events_processed"] for r in results),
        "jobs_per_sec": round(scenario["jobs"] / wall, 3),
        "digest": sharded.digest,
        "stats": sharded.stats,
    }


def run_sharded_full(fast_digest):
    """Plain vs sharded on the 128-job scenario, plus the smoke rows
    and the cells=1 bit-identity check against ``fast_digest`` (the
    single-kernel fast-path digest of the 24-job scenario)."""
    plain = run_scenario(SHARDED_SCENARIO, fast=True)
    sequential = run_sharded(SHARDED_SCENARIO, SHARDED_CELLS, workers=1)
    parallel = run_sharded(SHARDED_SCENARIO, SHARDED_CELLS,
                           workers=SHARDED_CELLS)
    cells1 = build_sharded_bench(SCENARIO, cells=1).run(executor="inline")
    smoke_seq = run_sharded(SHARDED_SMOKE, SHARDED_SMOKE_CELLS, workers=1)
    smoke_par = run_sharded(SHARDED_SMOKE, SHARDED_SMOKE_CELLS,
                            workers=SHARDED_SMOKE_CELLS)
    return {
        "scenario": {**SHARDED_SCENARIO, "cells": SHARDED_CELLS},
        "cpus": os.cpu_count(),
        "plain": {key: plain[key] for key in
                  ("wall_s", "sim_s", "events_processed", "digest")},
        "workers_1": sequential,
        "workers_n": parallel,
        "timelines_identical": sequential["digest"] == parallel["digest"],
        # single-cell sharding is the unsharded platform, bit for bit
        "cells1_bit_identical": cells1.results[0]["digest"] == fast_digest,
        "speedup_vs_plain": round(plain["wall_s"] / parallel["wall_s"], 2),
        "parallel_speedup": round(
            sequential["wall_s"] / parallel["wall_s"], 2),
        "smoke": {
            "scenario": {**SHARDED_SMOKE, "cells": SHARDED_SMOKE_CELLS},
            "workers_1": {"wall_s": smoke_seq["wall_s"],
                          "digest": smoke_seq["digest"]},
            "workers_n": {"wall_s": smoke_par["wall_s"],
                          "digest": smoke_par["digest"]},
            "timelines_identical":
                smoke_seq["digest"] == smoke_par["digest"],
        },
    }


def run_full():
    """Fast vs slow on the 24-job scenario; returns the result doc."""
    fast = run_scenario(SCENARIO, fast=True)
    slow = run_scenario(SCENARIO, fast=False)
    smoke = run_scenario(SMOKE, fast=True)
    return {
        "scenario": SCENARIO,
        "seed_baseline": SEED_BASELINE,
        "fast": fast,
        "slow": slow,
        # vs the committed pre-optimization baseline (the gate)
        "speedup_wall": round(SEED_BASELINE["wall_s"] / fast["wall_s"], 2),
        "speedup_events_per_sec": round(
            fast["events_per_sec"] / SEED_BASELINE["events_per_sec"], 2),
        # vs the in-tree slow path (compat switches only; it shares the
        # mode-independent caches, so this understates the real win)
        "speedup_vs_slow_path": round(slow["wall_s"] / fast["wall_s"], 2),
        "timelines_identical": fast["digest"] == slow["digest"],
        "smoke": {"scenario": SMOKE, "wall_s": smoke["wall_s"],
                  "events_per_sec": smoke["events_per_sec"],
                  "digest": smoke["digest"]},
        "sharded": run_sharded_full(fast["digest"]),
    }


def assert_full(result):
    fast, slow = result["fast"], result["slow"]
    assert fast["completed"] == fast["jobs"], fast
    assert slow["completed"] == slow["jobs"], slow
    assert result["timelines_identical"], (
        "fast path changed the simulated timeline: "
        f"{fast['digest']} != {slow['digest']}")
    assert result["speedup_events_per_sec"] >= SPEEDUP_TARGET, (
        f"events/sec speedup {result['speedup_events_per_sec']}x over the "
        f"seed baseline is below the {SPEEDUP_TARGET}x target")
    assert_sharded(result["sharded"])
    return result


def assert_sharded(sharded):
    for row in (sharded["workers_1"], sharded["workers_n"]):
        assert row["completed"] == row["jobs"], row
    assert sharded["timelines_identical"], (
        "worker count changed the merged timeline: "
        f"{sharded['workers_1']['digest']} != "
        f"{sharded['workers_n']['digest']}")
    assert sharded["smoke"]["timelines_identical"], sharded["smoke"]
    assert sharded["cells1_bit_identical"], (
        "a 1-cell sharded run must replay the unsharded platform "
        "bit for bit")
    cells = sharded["scenario"]["cells"]
    if (sharded["cpus"] or 1) >= cells:
        assert sharded["speedup_vs_plain"] >= SHARDED_SPEEDUP_TARGET, (
            f"sharded speedup {sharded['speedup_vs_plain']}x over the "
            f"single-kernel fast path is below the "
            f"{SHARDED_SPEEDUP_TARGET}x target")
    else:
        print(f"sharded wall-clock gate skipped: {sharded['cpus']} CPU(s) "
              f"< {cells} cells (determinism gates still enforced)")
    return sharded


def run_check():
    """CI smoke gate: small scenarios vs the committed baselines —
    the plain fast path plus the sharded 1-worker and N-worker paths
    (any of the three regressing more than 25% fails)."""
    if not RESULT_PATH.exists():
        print(f"error: {RESULT_PATH} missing; run the full bench first",
              file=sys.stderr)
        return 2
    committed = json.loads(RESULT_PATH.read_text())
    failed = False

    baseline = committed["smoke"]["wall_s"]
    measured = run_scenario(SMOKE, fast=True)
    limit = baseline * CHECK_TOLERANCE
    status = "ok" if measured["wall_s"] <= limit else "REGRESSION"
    failed |= status != "ok"
    print(f"perf smoke: wall={measured['wall_s']}s baseline={baseline}s "
          f"limit={round(limit, 3)}s [{status}]")
    if measured["digest"] != committed["smoke"]["digest"]:
        print("perf smoke: WARNING timeline digest drifted from baseline "
              "(expected after any scheduling-visible change; rerun the "
              "full bench to refresh BENCH_perf.json)")

    sharded_smoke = committed.get("sharded", {}).get("smoke")
    if sharded_smoke is None:
        print("perf smoke: WARNING no committed sharded smoke; rerun the "
              "full bench to refresh BENCH_perf.json")
        return 1 if failed else 0
    rows = (("workers_1", 1),
            ("workers_n", SHARDED_SMOKE_CELLS))
    digests = {}
    for key, workers in rows:
        run = run_sharded(SHARDED_SMOKE, SHARDED_SMOKE_CELLS,
                          workers=workers)
        digests[key] = run["digest"]
        baseline = sharded_smoke[key]["wall_s"]
        limit = baseline * CHECK_TOLERANCE
        status = "ok" if run["wall_s"] <= limit else "REGRESSION"
        failed |= status != "ok"
        print(f"perf smoke sharded/{key}: wall={run['wall_s']}s "
              f"baseline={baseline}s limit={round(limit, 3)}s [{status}]")
    if len(set(digests.values())) != 1:
        print("perf smoke sharded: FAIL worker count changed the merged "
              f"timeline: {digests}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def test_perf_gate():
    """Benchmark-suite entry: full fast-vs-slow comparison."""
    result = assert_full(run_full())
    print(json.dumps({k: result[k] for k in
                      ("speedup_wall", "speedup_events_per_sec",
                       "timelines_identical")}, indent=2))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="smoke gate against committed BENCH_perf.json")
    parser.add_argument("--sharded", action="store_true",
                        help="re-measure only the sharded section and "
                             "update it in BENCH_perf.json")
    args = parser.parse_args(argv)
    if args.check:
        return run_check()
    if args.sharded:
        fast = run_scenario(SCENARIO, fast=True)
        sharded = assert_sharded(run_sharded_full(fast["digest"]))
        result = (json.loads(RESULT_PATH.read_text())
                  if RESULT_PATH.exists() else {})
        result["sharded"] = sharded
        RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(sharded, indent=2))
        print(f"updated sharded section of {RESULT_PATH}")
        return 0
    result = assert_full(run_full())
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
