"""Ablation (§III.d) — atomic deployment: retry+rollback vs give up.

Quantifies what the Guardian's K8S-Job-backed retry loop buys: with a
per-attempt crash probability p, a single-attempt deployer succeeds with
probability 1-p while the K8S-Job pattern with k attempts reaches
1-p^k. Also runs a live end-to-end check that a mid-deployment crash
still converges to a COMPLETED job on the real (simulated) platform.
"""

from repro.bench import atomic_deploy_rows, bench_manifest, build_platform, render_table

COLUMNS = ["attempt budget", "crash prob", "deployed jobs", "trials",
           "success rate", "analytic"]


def test_atomic_deploy_success_rates(benchmark, record_table):
    rows = benchmark.pedantic(
        atomic_deploy_rows,
        kwargs={"crash_probability": 0.35, "trials": 200},
        rounds=1, iterations=1,
    )
    table = render_table(
        "§III.d ablation: deployment success vs Guardian attempt budget",
        COLUMNS, rows,
    )
    record_table("atomic_deploy", table)

    single, retried = rows
    assert retried["success rate"] > single["success rate"]
    # Monte Carlo within a few points of the analytic law.
    for row in rows:
        assert abs(row["success rate"] - row["analytic"]) < 0.12


def test_atomic_deploy_end_to_end(benchmark, record_table):
    def run():
        platform = build_platform("k80", gpus_per_node=4)
        client = platform.client("atomic")
        manifest = bench_manifest("resnet50", "tensorflow", 1, "k80", steps=40)
        manifest["extra"] = {"guardian_crash_after": 2,
                             "guardian_crash_on_attempt": 1}
        return platform.run_process(
            client.run_to_completion(manifest, timeout=50_000), limit=200_000
        )

    job_id, doc = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "atomic_deploy_e2e",
        f"mid-deployment Guardian crash on attempt 1 -> job {job_id} "
        f"ended {doc['status']} after rollback + redeploy",
    )
    assert doc["status"] == "COMPLETED"
