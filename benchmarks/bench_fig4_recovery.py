"""Fig. 4 — Time to recover from crash failures, by component.

The paper crashes each component with kubectl and measures restart time:
API 3-5s, LCM 4-6s, Guardian 1-2s, Helper 3-4s, Learner 10-20s. This
bench does exactly that against the simulated platform: repeated forced
pod deletions while a training job runs, recovery measured from the
crash instant to the component's next component-ready trace event.

Shape assertions: the *ordering* of the paper's Fig. 4 holds — Guardian
fastest (tiny stateless image), Helper/API middle, LCM a bit slower,
Learner slowest by a wide margin (framework startup + object-store and
volume binding) — and each component's measurements land inside (or
within 25% of) the paper's band.
"""

from repro.bench import FIG4_PAPER, fig4_rows, render_table

COLUMNS = ["component", "trials", "min s", "mean s", "max s", "paper"]


def test_fig4_recovery(benchmark, record_table):
    rows = benchmark.pedantic(fig4_rows, kwargs={"trials": 5}, rounds=1,
                              iterations=1)
    table = render_table(
        "Fig. 4: time to recover from crash failures, by component", COLUMNS, rows
    )
    record_table("fig4_recovery", table)

    means = {row["component"]: row["mean s"] for row in rows}
    for component, (low, high) in FIG4_PAPER.items():
        measured = means[component]
        assert low * 0.75 <= measured <= high * 1.25, (
            f"{component}: {measured:.2f}s outside paper band [{low}, {high}]"
        )
    # Ordering: Guardian fastest, Learner slowest by a wide margin.
    assert means["Guardian"] == min(means.values())
    assert means["Learner"] == max(means.values())
    assert means["Learner"] > 2 * means["LCM"]
    for row in rows:
        assert row["trials"] == 5  # every injected crash recovered
