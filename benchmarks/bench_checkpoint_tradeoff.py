"""Ablation (§III.g) — checkpoint interval vs lost work vs overhead.

"The checkpointing interval depends on the tolerance level of the user
to failures, i.e., how many hours of work the user is willing to lose in
the event of a failure." Sweeps the interval under a Poisson crash
process: no checkpointing loses everything on each crash; very frequent
checkpointing pays upload overhead on every interval; intermediate
settings minimize makespan.
"""

from repro.bench import checkpoint_tradeoff_rows, render_table

COLUMNS = ["ckpt interval s", "crashes", "checkpoints", "steps executed",
           "wasted steps", "makespan s"]


def test_checkpoint_tradeoff(benchmark, record_table):
    rows = benchmark.pedantic(
        checkpoint_tradeoff_rows,
        kwargs={"intervals": (0.0, 30.0, 120.0, 600.0), "mtbf": 1200.0,
                "steps": 4000},
        rounds=1, iterations=1,
    )
    table = render_table(
        "§III.g ablation: checkpoint interval vs lost work (MTBF 1200s)",
        COLUMNS, rows,
    )
    record_table("checkpoint_tradeoff", table)

    by_interval = {row["ckpt interval s"]: row for row in rows}
    # Checkpointing strictly reduces wasted (re-executed) work vs none.
    assert by_interval[30.0]["wasted steps"] < by_interval["off"]["wasted steps"]
    # Tighter intervals write more checkpoints.
    assert by_interval[30.0]["checkpoints"] > by_interval[600.0]["checkpoints"]
    # And with crashes present, checkpointing wins on makespan.
    if by_interval["off"]["crashes"] > 0:
        assert by_interval[30.0]["makespan s"] < by_interval["off"]["makespan s"]
