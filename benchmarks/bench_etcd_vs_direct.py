"""Ablation (§III.f) — why status updates go through ETCD.

"To reduce coupling between DLaaS components and ensure reliable status
updates, we employ the ETCD key-value store to co-ordinate between the
controller and LCM/Guardian." The alternative — the controller pushing
statuses directly to the Guardian — silently loses every update emitted
while the Guardian is down. The durable, Raft-replicated store retains
them all for the restarted Guardian to read.
"""

from repro.bench import etcd_vs_direct_rows, render_table

COLUMNS = ["pipeline", "updates sent", "visible after recovery", "lost"]


def test_etcd_vs_direct(benchmark, record_table):
    rows = benchmark.pedantic(
        etcd_vs_direct_rows,
        kwargs={"updates": 40, "downtime": (20.0, 50.0)},
        rounds=1, iterations=1,
    )
    table = render_table(
        "§III.f ablation: status updates across a 30s Guardian outage",
        COLUMNS, rows,
    )
    record_table("etcd_vs_direct", table)

    etcd_row = next(r for r in rows if "etcd" in r["pipeline"])
    push_row = next(r for r in rows if "push" in r["pipeline"])
    assert etcd_row["lost"] == 0
    assert push_row["lost"] > 0
