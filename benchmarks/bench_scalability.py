"""Horizontal scalability bench (the paper's goal #2).

Drives a batch of concurrent jobs through the platform and checks that
the control plane holds up: every job completes, Guardian creation
latency stays in its <3s band *under load*, and GPU capacity is fully
released afterwards.
"""

from repro.bench import bench_manifest, build_platform, render_table

COLUMNS = ["jobs", "completed", "makespan s", "guardian create mean s",
           "guardian create max s", "gpus leaked"]


def run_batch(jobs, seed=2):
    platform = build_platform("k80", gpus_per_node=4, gpu_nodes=8, seed=seed)
    client = platform.client("scale")

    def scenario():
        ids = []
        for i in range(jobs):
            manifest = bench_manifest("resnet50", "tensorflow", 2, "k80", steps=60)
            manifest["name"] = f"scale-{i}"
            ids.append((yield from client.submit(manifest)))
        docs = []
        for job_id in ids:
            docs.append((yield from client.wait_for_status(job_id,
                                                           timeout=100_000)))
        return docs

    start = platform.kernel.now
    docs = platform.run_process(scenario(), limit=500_000)
    makespan = platform.kernel.now - start
    platform.run_for(30.0)

    created = {r.fields["job"]: r.time
               for r in platform.tracer.query(component="lcm",
                                              kind="guardian-created")}
    latencies = []
    for record in platform.tracer.query(component="guardian",
                                        kind="component-ready"):
        job = record.fields["job"]
        if job in created:
            latencies.append(record.time - created.pop(job))
    return {
        "jobs": jobs,
        "completed": sum(1 for d in docs if d["status"] == "COMPLETED"),
        "makespan s": makespan,
        "guardian create mean s": sum(latencies) / len(latencies),
        "guardian create max s": max(latencies),
        "gpus leaked": platform.k8s.capacity_summary()["gpus_allocated"],
    }


def test_scalability(benchmark, record_table):
    def sweep():
        return [run_batch(jobs) for jobs in (4, 12, 24)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Scalability: concurrent jobs through one control plane "
        "(32 GPUs, 1 LCM, 2 API replicas)",
        COLUMNS, rows,
    )
    record_table("scalability", table)

    for row in rows:
        assert row["completed"] == row["jobs"]
        assert row["gpus leaked"] == 0
        # §III.d's latency claim must hold under load too.
        assert row["guardian create max s"] < 3.0
    # 24 jobs x 2 GPUs exceed the 32-GPU pool: the excess must queue
    # (longer makespan), never fail.
    assert rows[-1]["makespan s"] > rows[0]["makespan s"] * 1.2
