"""Horizontal scalability bench (the paper's goal #2), sharded edition.

Drives batches of concurrent jobs through the platform — unsharded and
with the control plane split into partitions (LCM slice leases, ring
routing, docstore shards) — and checks that the control plane holds up:
every job completes, Guardian creation latency stays in its <3s band
*under load*, GPU capacity is fully released, and kernel events/sec
stays near-flat as partitions are added (the sharded machinery must not
tax the single-partition throughput it exists to multiply).

Invocations::

    # full measurement: 500 jobs at 1 and 4 partitions + smoke
    # baselines; writes the ``scale`` section of BENCH_perf.json
    PYTHONPATH=src python benchmarks/bench_scalability.py

    # one parameterized run (prints the row as JSON)
    PYTHONPATH=src python benchmarks/bench_scalability.py \\
        --jobs 128 --partitions 4 --tenants 8 --steps 30

    # CI smoke gate against the committed baselines
    PYTHONPATH=src python benchmarks/bench_scalability.py --check
"""

import argparse
import json
import sys
from pathlib import Path

from repro.bench import render_table, run_scale_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"

# The headline scenario: 500 concurrent jobs, single-GPU on 64 GPUs,
# measured unsharded and split 4 ways. The GPU pool bounds the wall
# cost (hundreds of queued guardians tick for the whole makespan) while
# the control plane still holds all 500 jobs in flight at once.
SCALE_SCENARIO = {"jobs": 500, "steps": 30, "tenants": 8,
                  "gpus_per_node": 4, "gpu_nodes": 16, "gpus_per_job": 1,
                  "seed": 2}
SCALE_PARTITIONS = (1, 4)

# Smoke: same shape as bench_perf's SMOKE so the partitions=1 digest
# can be checked bit-for-bit against the plain perf baseline.
SMOKE_SCENARIO = {"jobs": 6, "steps": 30, "tenants": 1,
                  "gpus_per_node": 4, "gpu_nodes": 4, "gpus_per_job": 2,
                  "seed": 2}
SMOKE_PARTITIONS = (1, 2)

# Sharding must not tax throughput: events/sec at p>1 must hold this
# fraction of the single-partition rate (wall-clock noise allowed for).
NEAR_LINEAR_FLOOR = 0.6
CHECK_TOLERANCE = 1.35  # smoke wall regression gate


def run_partition_sweep(scenario, partitions):
    rows = {}
    for p in partitions:
        rows[str(p)] = run_scale_scenario(partitions=p, **scenario)
    return rows


def assert_scale(rows):
    base = rows["1"]
    for key, row in sorted(rows.items()):
        assert row["completed"] == row["jobs"], row
        assert row["gpus_leaked"] == 0, row
        # Guardian creation latency is recorded, not gated, here: at
        # 500-job saturation guardians queue on the fixed management
        # pool, so the §III.d <3s claim only applies unsaturated (the
        # pytest table below still gates it at 24 jobs).
        ratio = row["events_per_sec"] / base["events_per_sec"]
        assert ratio >= NEAR_LINEAR_FLOOR, (
            f"partitions={key}: events/sec fell to {ratio:.2f}x of the "
            f"single-partition rate (floor {NEAR_LINEAR_FLOOR})")
    return rows


def run_full():
    scale = {
        "scenario": SCALE_SCENARIO,
        "partitions": assert_scale(
            run_partition_sweep(SCALE_SCENARIO, SCALE_PARTITIONS)),
    }
    base = scale["partitions"]["1"]["events_per_sec"]
    scale["near_linear"] = {
        str(p): round(
            scale["partitions"][str(p)]["events_per_sec"] / base, 3)
        for p in SCALE_PARTITIONS
    }
    smoke_rows = run_partition_sweep(SMOKE_SCENARIO, SMOKE_PARTITIONS)
    scale["smoke"] = {
        "scenario": SMOKE_SCENARIO,
        "partitions": {
            key: {"wall_s": row["wall_s"], "digest": row["digest"]}
            for key, row in smoke_rows.items()
        },
    }
    return scale


def run_check():
    """CI smoke gate: the partitioned control plane on the small
    scenario vs the committed walls, plus the bit-identity anchor —
    a partitions=1 run must reproduce the plain perf-smoke digest."""
    if not RESULT_PATH.exists():
        print(f"error: {RESULT_PATH} missing; run the full bench first",
              file=sys.stderr)
        return 2
    committed = json.loads(RESULT_PATH.read_text())
    scale = committed.get("scale")
    if scale is None:
        print("scale smoke: WARNING no committed scale section; run "
              "benchmarks/bench_scalability.py (full) to create it")
        return 1
    failed = False
    for key in sorted(scale["smoke"]["partitions"]):
        row = run_scale_scenario(partitions=int(key),
                                 **scale["smoke"]["scenario"])
        baseline = scale["smoke"]["partitions"][key]
        limit = baseline["wall_s"] * CHECK_TOLERANCE
        status = "ok" if row["wall_s"] <= limit else "REGRESSION"
        failed |= status != "ok"
        print(f"scale smoke p={key}: wall={row['wall_s']}s "
              f"baseline={baseline['wall_s']}s limit={round(limit, 3)}s "
              f"[{status}]")
        if row["completed"] != row["jobs"] or row["gpus_leaked"] != 0:
            print(f"scale smoke p={key}: FAIL completed="
                  f"{row['completed']}/{row['jobs']} "
                  f"leaked={row['gpus_leaked']}", file=sys.stderr)
            failed = True
        if key == "1":
            # The acceptance anchor: one partition IS the unsharded
            # platform, bit for bit, against the plain perf smoke.
            perf_digest = committed.get("smoke", {}).get("digest")
            if perf_digest is None:
                print("scale smoke: WARNING no plain perf smoke digest "
                      "committed; run bench_perf.py to refresh")
            elif row["digest"] != perf_digest:
                print("scale smoke p=1: FAIL digest differs from the "
                      "unsharded perf smoke — the sharded control plane "
                      "leaked into the default configuration",
                      file=sys.stderr)
                failed = True
    return 1 if failed else 0


# ----------------------------------------------------------------------
# pytest-benchmark entry (the historical table, now partition-aware)
# ----------------------------------------------------------------------

COLUMNS = ["jobs", "partitions", "completed", "wall_s",
           "events_per_sec", "guardian_p95_s", "guardian_max_s",
           "gpus_leaked"]


def test_scalability(benchmark, record_table):
    def sweep():
        rows = []
        for jobs in (4, 12, 24):
            rows.append(run_scale_scenario(
                jobs=jobs, partitions=1, steps=60, gpus_per_node=4,
                gpu_nodes=8, gpus_per_job=2, seed=2))
        rows.append(run_scale_scenario(
            jobs=24, partitions=2, steps=60, gpus_per_node=4,
            gpu_nodes=8, gpus_per_job=2, seed=2))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Scalability: concurrent jobs through the control plane "
        "(32 GPUs; last row splits the control plane into 2 partitions)",
        COLUMNS, [{c: row[c] for c in COLUMNS} for row in rows],
    )
    record_table("scalability", table)

    for row in rows:
        assert row["completed"] == row["jobs"]
        assert row["gpus_leaked"] == 0
        # §III.d's latency claim must hold under load too.
        assert row["guardian_max_s"] < 3.0
    # 24 jobs x 2 GPUs exceed the 32-GPU pool: the excess must queue
    # (longer makespan), never fail.
    assert rows[2]["sim_s"] > rows[0]["sim_s"] * 1.2


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="smoke gate against committed BENCH_perf.json")
    parser.add_argument("--jobs", type=int, default=None,
                        help="run one parameterized row with this many jobs")
    parser.add_argument("--partitions", type=int, default=1,
                        help="control-plane partitions for the single row")
    parser.add_argument("--tenants", type=int, default=1,
                        help="tenant mix for the single row")
    parser.add_argument("--steps", type=int, default=30,
                        help="training steps per job for the single row")
    parser.add_argument("--gpus-per-job", type=int, default=1)
    parser.add_argument("--gpu-nodes", type=int, default=8)
    args = parser.parse_args(argv)
    if args.check:
        return run_check()
    if args.jobs is not None:
        row = run_scale_scenario(
            jobs=args.jobs, partitions=args.partitions,
            tenants=args.tenants, steps=args.steps,
            gpus_per_node=4, gpu_nodes=args.gpu_nodes,
            gpus_per_job=args.gpus_per_job, seed=2)
        print(json.dumps(row, indent=2))
        return 0
    scale = run_full()
    result = (json.loads(RESULT_PATH.read_text())
              if RESULT_PATH.exists() else {})
    result["scale"] = scale
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(scale, indent=2))
    print(f"updated scale section of {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
