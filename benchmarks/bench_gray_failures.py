"""Gray-failure detection latency through the differential pipeline.

The crash fault matrix (Fig. 4, ``bench_fig4_recovery``) measures how
fast the platform notices a component that *died*. This bench measures
the failure class the paper never injected: components that keep
passing their health probes while degrading the traffic through them.
For every injectable gray fault kind — slow endpoint, asymmetric
one-way partition, probabilistic packet loss, packet duplication, and
disk stalls on mongo/etcd members — it records how long the
differential detector (peer-divergence ``gray_divergence`` recording
rule -> ``GrayFailure*`` alert) takes to move the alert to firing, and
how long after the fault clears the alert resolves. A crashed API pod
(``ApiDown``) is measured alongside as the reference: gray detection
pays for the divergence window, crash detection only for the probe.

Every scenario also asserts the defining property of the regime: the
target's ``up{component=...}`` series holds 1.0 for the entire fault —
crash monitoring alone would never have paged.

Invoke directly for the full measurement (updates the ``gray``
section of ``BENCH_perf.json`` and prints the EXPERIMENTS.md table)::

    PYTHONPATH=src python benchmarks/bench_gray_failures.py

or as the CI smoke gate (two scenarios plus the timeline-digest
identity check)::

    PYTHONPATH=src python benchmarks/bench_gray_failures.py --check
"""

import argparse
import json
import sys
from pathlib import Path

import bench_perf

from repro.bench import bench_manifest, build_platform, render_table
from repro.core import ComponentCrasher, GrayFailureInjector
from repro.docstore import MongoClient
from repro.raftkv import EtcdClient

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"

# Tight cadence + short divergence window: the bench measures detector
# latency, not scrape cadence.
FAST = dict(scrape_interval=0.05, alert_eval_interval=0.05,
            event_flush_interval=0.5, gray_window=2.0, gray_alert_for=0.4)

BASELINE_S = 3.0       # healthy traffic before the injection
FAULT_DURATION = 6.0
SETTLE_S = 13.0        # fault + decay + resolution
# Budgets: detection pays scrape cadence + enough of the 2 s window to
# shift the mean + the 0.4 s `for:` hold; resolution pays the window
# draining the degraded samples after the fault clears.
DETECT_LIMIT_S = 4.0
RESOLVE_LIMIT_S = 4.0

COLUMNS = ["fault", "kind", "alert", "probe", "detect s", "resolve s"]


def _build(seed=17):
    return build_platform("k80", gpus_per_node=4, seed=seed, **FAST)


# ----------------------------------------------------------------------
# Traffic drivers: gray detection is differential, so every scenario
# needs a steady request stream for the divergence to show up in.
# ----------------------------------------------------------------------

def drive_status_polls(platform, period=0.05):
    """API read traffic, round-robined across replicas by the balancer."""
    client = platform.client("bench-gray")
    job_id = platform.run_process(client.submit(
        bench_manifest("vgg16", "tensorflow", 1, "k80", steps=100_000)))

    def poll():
        while True:
            yield from client.status(job_id)
            yield platform.kernel.sleep(period)

    platform.kernel.spawn(poll(), name="gray-status-poller")


def drive_mongo_writes(platform, period=0.05):
    """Write stream giving each secondary a dense ``replicate`` series."""
    mongo = MongoClient(platform.kernel, platform.network, platform.mongo,
                        caller="gray-write-driver")

    def writes():
        n = 0
        while True:
            n += 1
            yield from mongo.update_one("gray_probe", {"_id": "probe"},
                                        {"$set": {"n": n}}, upsert=True)
            yield platform.kernel.sleep(period)

    platform.kernel.spawn(writes(), name="gray-mongo-writer")


def drive_etcd_puts(platform, period=0.05):
    """etcd writes so entry-carrying appends dominate follower latency."""
    etcd = EtcdClient(platform.kernel, platform.network, platform.etcd,
                      client_id="gray-etcd-writer")

    def puts():
        n = 0
        while True:
            n += 1
            yield from etcd.put("/gray/probe", str(n))
            yield platform.kernel.sleep(period)

    platform.kernel.spawn(puts(), name="gray-etcd-writer")


# ----------------------------------------------------------------------
# Scenarios: one per injectable gray fault kind
# ----------------------------------------------------------------------

SCENARIOS = {
    "slow-endpoint": dict(
        kind="slow", rule="GrayFailureSlow", role="api",
        drive=drive_status_polls,
        inject=lambda p, inj: inj.slow_endpoint(
            inj.api_endpoints()[0], extra_latency=0.05,
            duration=FAULT_DURATION)),
    "oneway-partition": dict(
        kind="partition", rule="GrayFailurePartition", role="mongo",
        drive=drive_mongo_writes,
        inject=lambda p, inj: inj.oneway_partition(
            p.mongo.primary_id(), inj.mongo_secondaries()[0],
            duration=FAULT_DURATION)),
    "packet-loss": dict(
        kind="loss", rule="GrayFailurePartition", role="mongo",
        drive=drive_mongo_writes,
        inject=lambda p, inj: inj.lossy_endpoint(
            inj.mongo_secondaries()[0], loss=0.5,
            duration=FAULT_DURATION)),
    "packet-duplication": dict(
        kind="duplicate", rule="GrayFailurePartition", role="etcd",
        drive=None,  # raft heartbeats are the traffic
        inject=lambda p, inj: inj.lossy_endpoint(
            inj.etcd_followers()[0], duplicate=0.9,
            duration=FAULT_DURATION)),
    "disk-stall-mongo": dict(
        kind="disk-stall", rule="GrayFailureDiskStall", role="mongo",
        drive=drive_mongo_writes,
        inject=lambda p, inj: inj.disk_stall_mongo(
            inj.mongo_secondaries()[0], delay=0.15,
            duration=FAULT_DURATION)),
    "disk-stall-etcd": dict(
        kind="disk-stall", rule="GrayFailureDiskStall", role="etcd",
        drive=drive_etcd_puts,
        inject=lambda p, inj: inj.disk_stall_etcd(
            inj.etcd_followers()[0], delay=0.04,
            duration=FAULT_DURATION)),
}


def _hop_time(engine, rule, component, to_state, after=0.0):
    for record in engine.history:
        if (record["rule"] == rule and record["to"] == to_state
                and record["time"] >= after
                and dict(record["labels"]).get("component") == component):
            return record["time"]
    return None


def run_gray(name, seed=17):
    spec = SCENARIOS[name]
    platform = _build(seed)
    if spec["drive"] is not None:
        spec["drive"](platform)
    platform.run_for(BASELINE_S)

    injector = GrayFailureInjector(platform)
    target = spec["inject"](platform, injector)
    inject_time = platform.kernel.now
    platform.run_for(SETTLE_S)

    engine = platform.monitoring.engine
    rule = spec["rule"]
    clear_time = inject_time + FAULT_DURATION
    firing_at = _hop_time(engine, rule, target, "firing", inject_time)
    resolved_at = _hop_time(engine, rule, target, "resolved", clear_time)
    series = platform.monitoring.store.get("up", {"component": spec["role"]})
    window = series.window(inject_time, clear_time) if series else []
    up_clean = bool(window) and all(v == 1.0 for _, v in window)
    return {
        "fault": name,
        "kind": spec["kind"],
        "target": target,
        "alert": rule,
        "probe_up_throughout": up_clean,
        "detect_s": (None if firing_at is None
                     else round(firing_at - inject_time, 2)),
        "resolve_s": (None if resolved_at is None
                      else round(resolved_at - clear_time, 2)),
    }


def run_crash_reference(seed=17):
    """The crash-detection baseline the gray numbers compare against:
    ApiDown fires off a probe dip, no divergence window to fill."""
    platform = _build(seed)
    platform.run_for(BASELINE_S)
    when, pod = ComponentCrasher(platform).crash_api()
    platform.run_for(SETTLE_S)
    engine = platform.monitoring.engine
    firing_at = _hop_time(engine, "ApiDown", "api", "firing", when)
    resolved_at = _hop_time(engine, "ApiDown", "api", "resolved", when)
    return {
        "fault": "crash-api (reference)",
        "kind": "crash",
        "target": pod,
        "alert": "ApiDown",
        "probe_up_throughout": False,  # the probe IS the detector here
        "detect_s": None if firing_at is None else round(firing_at - when, 2),
        # For the crash row this is crash -> pod restarted -> alert
        # cleared, i.e. the Fig. 4 recovery path, not window decay.
        "resolve_s": (None if resolved_at is None
                      else round(resolved_at - when, 2)),
    }


def run_digest_identity():
    """With the detector enabled (the default) and no gray fault
    injected, the training smoke scenario must replay the digest
    committed in ``BENCH_perf.json`` bit for bit: the detector is a
    pure consumer of scraped series."""
    committed = (json.loads(RESULT_PATH.read_text())
                 if RESULT_PATH.exists() else {})
    expected = committed.get("smoke", {}).get("digest")
    measured = bench_perf.run_scenario(bench_perf.SMOKE, fast=True)
    return {
        "expected": expected,
        "measured": measured["digest"],
        "identical": expected == measured["digest"],
    }


def assert_gray(result):
    for row in result["faults"]:
        if row["kind"] == "crash":
            assert row["detect_s"] is not None, row
            continue
        assert row["probe_up_throughout"], (
            f"health probe dipped during a gray fault: {row}")
        assert row["detect_s"] is not None, f"never fired: {row}"
        assert row["detect_s"] <= DETECT_LIMIT_S, (
            f"detection took {row['detect_s']}s (limit {DETECT_LIMIT_S}s): "
            f"{row}")
        assert row["resolve_s"] is not None, f"never resolved: {row}"
        assert row["resolve_s"] <= RESOLVE_LIMIT_S, (
            f"resolution took {row['resolve_s']}s "
            f"(limit {RESOLVE_LIMIT_S}s): {row}")
    digest = result["timeline_digest"]
    assert digest["identical"], (
        "detector-on training timeline drifted from the committed smoke "
        f"digest: {digest}")
    return result


def render(result):
    rows = [{
        "fault": row["fault"],
        "kind": row["kind"],
        "alert": row["alert"],
        "probe": "up" if row["probe_up_throughout"] else "dips",
        "detect s": "-" if row["detect_s"] is None else row["detect_s"],
        "resolve s": "-" if row["resolve_s"] is None else row["resolve_s"],
    } for row in result["faults"]]
    return render_table(
        "Gray-failure detection latency (inject -> GrayFailure* firing)",
        COLUMNS, rows)


def run_full():
    faults = [run_gray(name) for name in SCENARIOS]
    faults.append(run_crash_reference())
    return {"faults": faults, "timeline_digest": run_digest_identity()}


def run_check():
    """CI smoke gate: one latency-signal and one write-latency-signal
    scenario, plus the digest-identity invariant."""
    if not RESULT_PATH.exists():
        print(f"error: {RESULT_PATH} missing; run the full bench first",
              file=sys.stderr)
        return 2
    committed = json.loads(RESULT_PATH.read_text()).get("gray")
    if committed is None:
        print("error: no committed gray section; run "
              "`python benchmarks/bench_gray_failures.py` first",
              file=sys.stderr)
        return 2
    result = {
        "faults": [run_gray("slow-endpoint"), run_gray("disk-stall-mongo")],
        "timeline_digest": run_digest_identity(),
    }
    try:
        assert_gray(result)
    except AssertionError as exc:
        print(f"gray smoke: FAIL {exc}", file=sys.stderr)
        return 1
    baseline = {row["fault"]: row for row in committed["faults"]}
    for row in result["faults"]:
        base = baseline.get(row["fault"], {})
        print(f"gray smoke: {row['fault']} detected in {row['detect_s']}s "
              f"(baseline {base.get('detect_s')}s, limit {DETECT_LIMIT_S}s), "
              f"probe up throughout [ok]")
    print("gray smoke: detector-on timeline digest identical [ok]")
    return 0


def test_gray_gate(record_table):
    """Benchmark-suite entry: full gray matrix + invariants."""
    result = assert_gray(run_full())
    record_table("gray_failures", render(result))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="smoke gate against committed BENCH_perf.json")
    args = parser.parse_args(argv)
    if args.check:
        return run_check()
    result = assert_gray(run_full())
    committed = (json.loads(RESULT_PATH.read_text())
                 if RESULT_PATH.exists() else {})
    committed["gray"] = result
    RESULT_PATH.write_text(json.dumps(committed, indent=2) + "\n")
    print(render(result))
    print(f"updated gray section of {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
