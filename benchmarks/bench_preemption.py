"""Extension bench — priority & preemption for urgent jobs.

On a full cluster, an urgent (priority 90) job either waits behind a
long low-priority job (preemption off) or evicts its learners
(preemption on); the victims later resume from checkpoints. Measures
the urgent job's submission-to-completion latency and the background
job's fate.
"""

from conftest import seed_buckets, training_manifest

from repro.bench import render_table
from repro.core import DlaasPlatform, PlatformConfig

COLUMNS = ["preemption", "urgent latency s", "urgent status",
           "background status", "preemptions"]


def _manifest(name, steps, priority, checkpoint=15.0):
    return training_manifest(name, gpus_per_learner=2, target_steps=steps,
                             priority=priority,
                             checkpoint_interval=checkpoint)


def run_scenario(preemption):
    platform = DlaasPlatform(
        seed=41,
        config=PlatformConfig(gpu_nodes=1, gpus_per_node=2, management_nodes=2),
    ).start()
    platform.k8s.scheduler.preemption = preemption
    seed_buckets(platform)
    client = platform.client("bench")

    def scenario():
        background = yield from client.submit(
            _manifest("background", steps=1500, priority=10))
        yield from client.wait_for_status(background, statuses={"PROCESSING"},
                                          timeout=2000)
        yield platform.kernel.sleep(60.0)
        submit_time = platform.kernel.now
        urgent = yield from client.submit(
            _manifest("urgent", steps=100, priority=90, checkpoint=0.0))
        urgent_doc = yield from client.wait_for_status(urgent, timeout=50_000)
        latency = platform.kernel.now - submit_time
        background_doc = yield from client.wait_for_status(background,
                                                           timeout=100_000)
        return latency, urgent_doc, background_doc

    latency, urgent_doc, background_doc = platform.run_process(
        scenario(), limit=500_000
    )
    return {
        "preemption": "on" if preemption else "off",
        "urgent latency s": latency,
        "urgent status": urgent_doc["status"],
        "background status": background_doc["status"],
        "preemptions": platform.k8s.scheduler.preemptions,
    }


def test_preemption(benchmark, record_table):
    def run_both():
        return [run_scenario(False), run_scenario(True)]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = render_table(
        "Priority/preemption extension: urgent job vs busy 2-GPU cluster",
        COLUMNS, rows,
    )
    record_table("preemption", table)

    without, with_preemption = rows
    assert without["urgent status"] == with_preemption["urgent status"] == "COMPLETED"
    # Both ways the background job survives (checkpoint recovery).
    assert without["background status"] == "COMPLETED"
    assert with_preemption["background status"] == "COMPLETED"
    assert with_preemption["preemptions"] >= 1
    # Preemption cuts the urgent job's latency substantially.
    assert with_preemption["urgent latency s"] < 0.6 * without["urgent latency s"]
