"""Substrate microbenchmarks (wall-clock, via pytest-benchmark).

These measure the *simulator's* own performance — how fast the Raft
cluster commits, the document store queries, the kernel dispatches
events — so regressions in the reproduction's machinery are visible.
All other benches in this directory measure simulated time; these
measure real time.
"""

from repro.docstore import Collection
from repro.grpcnet import LatencyModel, Network
from repro.raftkv import EtcdClient, EtcdCluster
from repro.sim import Kernel


def test_kernel_event_dispatch(benchmark):
    def run():
        kernel = Kernel(seed=0)

        def ticker():
            for _ in range(5000):
                yield kernel.sleep(0.001)

        kernel.run_until_complete(kernel.spawn(ticker()))
        return kernel.now

    result = benchmark(run)
    assert result > 4.9


def test_raft_commit_throughput(benchmark):
    def run():
        kernel = Kernel(seed=0)
        network = Network(kernel, latency=LatencyModel(0.001, 0.0))
        cluster = EtcdCluster(kernel, network, size=3).start()
        client = EtcdClient(kernel, network, cluster)

        def writer():
            yield from cluster.wait_for_leader()
            for i in range(200):
                yield from client.put(f"k{i % 10}", i)

        kernel.run_until_complete(kernel.spawn(writer()), limit=120)
        return cluster.leader().commit_index

    commits = benchmark(run)
    assert commits >= 200


def test_docstore_query_throughput(benchmark):
    coll = Collection("bench")
    for i in range(2000):
        coll.insert_one({"i": i, "status": "PROCESSING" if i % 3 else "COMPLETED",
                         "nested": {"gpu": i % 4}})

    def run():
        return len(coll.find({"status": "PROCESSING", "nested.gpu": {"$gte": 2}}))

    count = benchmark(run)
    assert count > 0


def test_platform_boot_wall_time(benchmark):
    """How long a full platform boot takes in real seconds."""
    from repro.bench import build_platform

    def run():
        platform = build_platform("k80", gpus_per_node=4)
        return platform.kernel.now

    booted_at = benchmark.pedantic(run, rounds=1, iterations=1)
    assert booted_at >= 15.0
