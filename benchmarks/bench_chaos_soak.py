"""Chaos soak bench — no job is ever lost under sustained failures.

Sweeps the failure rate (MTBF of a Poisson crash process over learners,
helpers, Guardians, API/LCM pods and whole nodes) while a batch of
checkpointing jobs runs. Dependability claim under test: completion
stays 100% at every failure rate; harsher chaos only inflates makespan.
"""

from repro.bench import render_table
from repro.bench.chaos import run_soak

COLUMNS = ["mtbf s", "jobs", "completed", "crashes injected", "makespan s"]


def test_chaos_soak(benchmark, record_table):
    def sweep():
        return [run_soak(mtbf) for mtbf in (None, 120.0, 45.0)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        "Chaos soak: 4 checkpointing jobs under Poisson component crashes",
        COLUMNS, rows,
    )
    record_table("chaos_soak", table)

    fault_free, mild, harsh = rows
    for row in rows:
        assert row["completed"] == row["jobs"], row  # nothing ever lost
    assert fault_free["crashes injected"] == 0
    assert harsh["crashes injected"] > mild["crashes injected"] > 0
    # Chaos costs time, never correctness.
    assert mild["makespan s"] >= fault_free["makespan s"]
