"""Day-in-the-life bench: a stochastic job mix on a shared cluster.

Poisson job arrivals drawn from a realistic mix (mostly small jobs,
some multi-GPU, a few distributed) run against one platform while the
cluster monitor samples utilization — the shared-hardware economics of
the paper's §I, measured. Assertions pin the dependable-by-default
behaviour: everything completes, nothing leaks, utilization is real.
"""

from repro.bench import build_platform, render_table
from repro.bench.platform_runner import CREDENTIALS
from repro.bench.workloads import WorkloadGenerator

COLUMNS = ["jobs", "arrival rate /s", "completed", "mean util %", "peak util %",
           "mean wait s", "makespan s"]


def run_day(jobs=14, rate=0.05, seed=12):
    platform = build_platform("k80", gpus_per_node=4, gpu_nodes=4, seed=seed)
    client = platform.client("mix")
    generator = WorkloadGenerator(
        platform, data_bucket="bench-data", results_bucket="bench-results",
        credentials=CREDENTIALS,
    )
    monitor = platform.monitor(interval=10.0)

    def scenario():
        job_ids = yield from generator.poisson_arrivals(client, jobs, rate)
        docs = []
        for job_id in job_ids:
            docs.append((yield from client.wait_for_status(job_id,
                                                           timeout=100_000)))
        return docs

    start = platform.kernel.now
    docs = platform.run_process(scenario(), limit=500_000)
    makespan = platform.kernel.now - start
    monitor.stop()

    waits = []
    for doc in docs:
        history = {h["status"]: h["time"] for h in doc["status_history"]}
        if "PROCESSING" in history:
            waits.append(history["PROCESSING"] - history["QUEUED"])
    summary = monitor.summary()
    return {
        "jobs": jobs,
        "arrival rate /s": rate,
        "completed": sum(1 for d in docs if d["status"] == "COMPLETED"),
        "mean util %": summary["mean_utilization"] * 100,
        "peak util %": summary["peak_utilization"] * 100,
        "mean wait s": sum(waits) / len(waits),
        "makespan s": makespan,
    }, platform


def test_job_mix(benchmark, record_table):
    def run():
        return run_day()

    row, platform = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "Job-mix soak: Poisson arrivals from a mixed population (16 GPUs)",
        COLUMNS, [row],
    )
    record_table("job_mix", table)

    assert row["completed"] == row["jobs"]
    assert row["peak util %"] > 30.0  # demand actually hit the cluster
    assert platform.k8s.capacity_summary()["gpus_allocated"] == 0
