#!/usr/bin/env python
"""Lint: metric names must be static string literals.

Scans ``src/`` for ``*.counter(...)`` / ``*.gauge(...)`` /
``*.histogram(...)`` calls whose name argument is not a plain string
constant — f-strings, concatenation or variables smuggle unbounded
dimensions (job ids, pod names) into the metric *name*, exploding the
time-series space. Dynamic dimensions belong in labels:

    bad:   metrics.counter(f"logs.{job_id}.lines")
    good:  metrics.counter("logs_collected_lines_total", ("job",))
               .labels(job=job_id)

Static names must also match the registry's charset
(``[a-zA-Z_][a-zA-Z0-9_.]*``). Exits non-zero listing violations;
wired into ``scripts/check.sh`` (and thus ``make check``).
"""

import ast
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
FACTORIES = {"counter", "gauge", "histogram"}
NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")

# The registry itself forwards a caller-supplied name; that is the one
# place a non-literal name argument is by design.
EXEMPT = {SRC / "repro" / "sim" / "metrics.py"}


def check_file(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in FACTORIES):
            continue
        if not node.args:
            continue  # name passed by keyword or missing: registry rejects
        name_arg = node.args[0]
        where = f"{path.relative_to(ROOT)}:{name_arg.lineno}"
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            if not NAME_RE.match(name_arg.value):
                violations.append(
                    f"{where}: metric name {name_arg.value!r} has invalid "
                    f"characters")
        else:
            violations.append(
                f"{where}: dynamic metric name "
                f"({ast.unparse(name_arg)}); use a static name and put "
                f"the dynamic dimension in a label")
    return violations


def main():
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        if path in EXEMPT:
            continue
        violations.extend(check_file(path))
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} dynamic metric name(s); "
              f"job ids belong in labels, not names", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
