#!/usr/bin/env bash
# Repo gate: lint (when ruff is available) + the tier-1 test suite.
#
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable) =="
fi

echo "== metric-name lint =="
python scripts/lint_metric_names.py

echo "== event-reason lint =="
python scripts/lint_event_reasons.py

echo "== deepcopy lint =="
python scripts/lint_deepcopy.py

echo "== shared-state lint =="
python scripts/lint_shared_state.py

echo "== pytest (tier 1) =="
PYTHONPATH=src python -m pytest -q "$@"

echo "== perf smoke gate =="
PYTHONPATH=src python benchmarks/bench_perf.py --check

echo "== scale smoke gate =="
PYTHONPATH=src python benchmarks/bench_scalability.py --check

echo "== serving smoke gate =="
PYTHONPATH=src python benchmarks/bench_serving.py --check

echo "== gray-failure smoke gate =="
PYTHONPATH=src python benchmarks/bench_gray_failures.py --check

echo "== consistency smoke gate =="
PYTHONPATH=src python benchmarks/bench_consistency.py --check
