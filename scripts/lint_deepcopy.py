#!/usr/bin/env python
"""Lint: ``copy.deepcopy`` is banned outside the two copy boundaries.

The fast path's copy discipline is structural: documents are deep-copied
in exactly two places — the docstore's own copier
(``repro/docstore/update.py``, which also powers read-copies) and the
RPC serialization boundary (``repro/grpcnet/payload.py``). Everything
else passes references and relies on those boundaries, so a stray
``copy.deepcopy`` elsewhere is either a redundant double copy (the perf
bug this PR removed) or a sign that state is escaping its owner.

Scans ``src/`` for ``import copy`` / ``from copy import deepcopy`` and
any ``copy.deepcopy(...)`` / ``deepcopy(...)`` call outside the allowed
files. Exits non-zero listing violations; wired into
``scripts/check.sh`` (and thus ``make check``).
"""

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

# The only modules allowed to deep-copy: the docstore's mutation/read
# copier and the RPC single-serialization boundary.
ALLOWED = {
    SRC / "repro" / "docstore" / "update.py",
    SRC / "repro" / "grpcnet" / "payload.py",
}


def check_file(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []

    def flag(node, what):
        violations.append(f"{path.relative_to(ROOT)}:{node.lineno}: {what}")

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "copy":
                    flag(node, "imports the copy module")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "copy":
                names = ", ".join(a.name for a in node.names)
                flag(node, f"imports from copy ({names})")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and func.attr == "deepcopy"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "copy"):
                flag(node, "calls copy.deepcopy")
            elif isinstance(func, ast.Name) and func.id == "deepcopy":
                flag(node, "calls deepcopy")
    return violations


def main():
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        violations.extend(check_file(path))
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} deepcopy use(s) outside the docstore "
              f"copier and the RPC payload boundary; pass references and "
              f"let the boundary copy", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
