#!/usr/bin/env python
"""Run one job through the platform and print its causal trace.

The report shows the span tree rooted at the API submission — API ->
LCM -> Guardian -> helper/learner containers — followed by the critical
path, attributing the job's end-to-end latency to deployment and
training stages (the per-stage breakdown behind the paper's Fig. 4
style recovery analysis).

Usage::

    PYTHONPATH=src python scripts/trace_report.py [--steps N] [--learners N]
"""

import argparse
import sys

from repro.bench import bench_manifest, build_platform
from repro.sim import render_critical_path, render_span_tree


def run_job(steps, learners):
    platform = build_platform("k80", gpus_per_node=4)
    manifest = bench_manifest("vgg16", "tensorflow", gpus=1, gpu_type="k80",
                              steps=steps, learners=learners)
    client = platform.client("trace-report")
    job_id, doc = platform.run_process(
        client.run_to_completion(manifest, timeout=100_000), limit=500_000
    )
    return platform, job_id, doc


def report(platform, job_id, doc, out=sys.stdout):
    tracer = platform.tracer
    roots = tracer.find_spans(name="api.submit", job=job_id)
    if not roots:
        print(f"no api.submit span for {job_id}", file=out)
        return 1
    trace_id = roots[0].trace_id
    print(f"job {job_id}: {doc['status']} "
          f"({len(tracer.trace_of(trace_id))} spans in trace {trace_id})",
          file=out)
    print(file=out)
    print(render_span_tree(tracer, trace_id), file=out)
    print(file=out)
    print(render_critical_path(tracer, trace_id), file=out)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=50,
                        help="training steps for the demo job")
    parser.add_argument("--learners", type=int, default=1,
                        help="learner replicas for the demo job")
    args = parser.parse_args(argv)
    platform, job_id, doc = run_job(args.steps, args.learners)
    return report(platform, job_id, doc)


if __name__ == "__main__":
    raise SystemExit(main())
