#!/usr/bin/env python
"""Lint: event reasons must be static, registered CamelCase tokens.

Scans ``src/`` for ``*.emit_event(...)`` call sites and checks that the
``type`` and ``reason`` arguments are string literals (or conditional
expressions between string literals), that the type is ``Normal`` or
``Warning``, and that the reason appears in the ``REASONS`` vocabulary
literal in ``src/repro/core/events.py``. Free-form detail belongs in
``message``; a dynamic *reason* would fragment the event log the same
way a dynamic metric name fragments the series namespace:

    bad:   events.emit_event("Warning", f"Crash{pod}", ...)
    good:  events.emit_event("Warning", "ComponentCrashed", "Pod", pod, ...)

Also validates the ``TERMINAL_EVENT_FOR`` mapping literal in
``src/repro/core/states.py`` and every ``AlertRule(...)`` construction
(the rule name and its event reason feed the alert engine's dynamic
emit, which is exempted below) against the same vocabulary. Exits
non-zero listing violations; wired into ``scripts/check.sh`` (and thus
``make check``). Mirrors ``scripts/lint_metric_names.py``.
"""

import ast
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
EVENTS = SRC / "repro" / "core" / "events.py"
STATES = SRC / "repro" / "core" / "states.py"
REASON_RE = re.compile(r"^[A-Z][A-Za-z0-9]*$")
TYPES = {"Normal", "Warning"}

# Files where *dynamic* type/reason arguments are by design (the
# recorder's own re-emit path; the alert engine, whose rule reasons are
# validated at add_rule time; the Guardian's terminal-status mapping,
# validated below). String literals in these files are still checked.
DYNAMIC_OK = {
    EVENTS,
    SRC / "repro" / "monitoring" / "alerts.py",
    SRC / "repro" / "core" / "guardian.py",
}


def load_reasons():
    """Extract the REASONS frozenset literal from events.py."""
    tree = ast.parse(EVENTS.read_text(), filename=str(EVENTS))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "REASONS" not in targets:
            continue
        call = node.value
        if (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
                and call.func.id == "frozenset" and call.args
                and isinstance(call.args[0], ast.Set)):
            return {
                el.value for el in call.args[0].elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            }
    raise SystemExit(f"could not find REASONS frozenset literal in {EVENTS}")


def literal_values(node):
    """The possible constant string values of an argument, or None if
    the argument is dynamic. Handles ``"A" if cond else "B"``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        body = literal_values(node.body)
        orelse = literal_values(node.orelse)
        if body is not None and orelse is not None:
            return body + orelse
    return None


def check_file(path, reasons):
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit_event"):
            continue
        if len(node.args) < 2:
            continue  # keyword-only calls: the recorder rejects at runtime
        where = f"{path.relative_to(ROOT)}:{node.lineno}"
        type_values = literal_values(node.args[0])
        reason_values = literal_values(node.args[1])
        if type_values is None:
            if path not in DYNAMIC_OK:
                violations.append(
                    f"{where}: dynamic event type "
                    f"({ast.unparse(node.args[0])}); use \"Normal\" or "
                    f"\"Warning\" literally")
        else:
            for value in type_values:
                if value not in TYPES:
                    violations.append(
                        f"{where}: event type {value!r} is not Normal/Warning")
        if reason_values is None:
            if path not in DYNAMIC_OK:
                violations.append(
                    f"{where}: dynamic event reason "
                    f"({ast.unparse(node.args[1])}); reasons are a closed "
                    f"CamelCase vocabulary — put detail in the message")
            continue
        for value in reason_values:
            if not REASON_RE.match(value):
                violations.append(
                    f"{where}: event reason {value!r} is not CamelCase")
            elif value not in reasons:
                violations.append(
                    f"{where}: event reason {value!r} is not registered in "
                    f"repro.core.events.REASONS")
    return violations


def check_terminal_mapping(reasons):
    """The Guardian's dynamic emit draws from TERMINAL_EVENT_FOR;
    validate that mapping's literals so the exemption stays sound."""
    tree = ast.parse(STATES.read_text(), filename=str(STATES))
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "TERMINAL_EVENT_FOR" not in targets or not isinstance(node.value, ast.Dict):
            continue
        for value in node.value.values:
            where = f"{STATES.relative_to(ROOT)}:{value.lineno}"
            pair = (
                [el.value for el in value.elts
                 if isinstance(el, ast.Constant)]
                if isinstance(value, ast.Tuple) else []
            )
            if len(pair) != 2:
                violations.append(
                    f"{where}: TERMINAL_EVENT_FOR values must be "
                    f"(type, reason) string-literal tuples")
                continue
            event_type, reason = pair
            if event_type not in TYPES:
                violations.append(
                    f"{where}: event type {event_type!r} is not Normal/Warning")
            if reason not in reasons:
                violations.append(
                    f"{where}: event reason {reason!r} is not registered in "
                    f"repro.core.events.REASONS")
    return violations


def loop_string_bindings(tree):
    """Names bound by ``for (a, b, ...) in ((literals), ...)`` loops,
    mapped to the string constants they can take — the idiom the
    default rule pack uses to stamp out the per-component Down rules."""
    bindings = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.For) and isinstance(node.target, ast.Tuple)
                and isinstance(node.iter, ast.Tuple)):
            continue
        targets = node.target.elts
        for row in node.iter.elts:
            if not (isinstance(row, ast.Tuple)
                    and len(row.elts) == len(targets)):
                continue
            for target, value in zip(targets, row.elts):
                if (isinstance(target, ast.Name)
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    bindings.setdefault(target.id, set()).add(value.value)
    return bindings


def check_alert_rules(path, reasons):
    """Alert-rule names double as event reasons through the engine's
    dynamic ``emit_event`` (exempted above); validate the literals at
    every ``AlertRule(...)`` construction so the exemption stays sound."""
    tree = ast.parse(path.read_text(), filename=str(path))
    bindings = loop_string_bindings(tree)
    violations = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "AlertRule"):
            continue
        where = f"{path.relative_to(ROOT)}:{node.lineno}"
        names = literal_values(node.args[0]) if node.args else None
        if names is None and node.args and isinstance(node.args[0], ast.Name):
            bound = bindings.get(node.args[0].id)
            if bound:
                names = sorted(bound)
        if names is None:
            violations.append(
                f"{where}: AlertRule name must be a string literal "
                f"(it becomes the alert's event reason)")
            names = []
        reason_values = list(names)
        for keyword in node.keywords:
            if keyword.arg != "event_reason":
                continue
            explicit = literal_values(keyword.value)
            if explicit is None:
                violations.append(
                    f"{where}: dynamic AlertRule event_reason "
                    f"({ast.unparse(keyword.value)})")
            else:
                reason_values = explicit  # overrides the name default
        for value in names:
            if not REASON_RE.match(value):
                violations.append(
                    f"{where}: alert rule name {value!r} is not CamelCase")
        for value in reason_values:
            if value not in reasons:
                violations.append(
                    f"{where}: alert event reason {value!r} is not "
                    f"registered in repro.core.events.REASONS")
    return violations


def main():
    reasons = load_reasons()
    violations = [
        f"{EVENTS.relative_to(ROOT)}: REASONS entry {reason!r} is not CamelCase"
        for reason in sorted(reasons) if not REASON_RE.match(reason)
    ]
    violations.extend(check_terminal_mapping(reasons))
    for path in sorted(SRC.rglob("*.py")):
        violations.extend(check_file(path, reasons))
        violations.extend(check_alert_rules(path, reasons))
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} event-reason violation(s); reasons are a "
              f"closed CamelCase vocabulary", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
