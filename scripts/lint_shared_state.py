#!/usr/bin/env python
"""Lint: no module-level mutable state in the kernel or RPC fabric.

The sharded kernel (``repro.sim.shard``) runs any number of
:class:`Kernel` instances side by side — interleaved in one process or
forked onto multiprocessing workers — and merges their timelines
deterministically. That only holds if *every* piece of simulation
state is owned by an instance: a module-level dict of timers, a
class-attribute registry of channels, or a global counter would be
silently shared between shards (or, worse, diverge between the inline
and forked executors) and corrupt the merge.

This lint enforces the rule structurally for ``src/repro/sim/`` and
``src/repro/grpcnet/``: no assignment at module or class scope may
bind a mutable container — a dict/list/set/bytearray literal or
comprehension, or a call to a well-known mutable-container factory
(``dict``/``list``/``set``/``defaultdict``/``deque``/``Counter``/
``OrderedDict``/``count``). Immutable bindings (constants, strings,
tuples, ``frozenset``) are fine, as are ``__all__`` and ``__slots__``
by convention, and anything inside a function body (instance wiring).

Exits non-zero listing violations; wired into ``scripts/check.sh``
(and thus ``make check``).
"""

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCANNED = (
    ROOT / "src" / "repro" / "sim",
    ROOT / "src" / "repro" / "grpcnet",
)

# Conventional module/class-level names that are never mutated.
ALLOWED_NAMES = {"__all__", "__slots__"}

MUTABLE_FACTORIES = {
    "dict", "list", "set", "bytearray",
    "defaultdict", "deque", "Counter", "OrderedDict",
    "count",  # itertools.count: a hidden global sequence generator
}


def _call_name(node):
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def is_mutable(node):
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node) in MUTABLE_FACTORIES
    return False


def _target_names(node):
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        yield element.id
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(node.target, ast.Name):
            yield node.target.id


def check_scope(body, path, scope, violations):
    for node in body:
        if isinstance(node, ast.ClassDef):
            check_scope(node.body, path, f"class {node.name}", violations)
            continue
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None or not is_mutable(value):
            continue
        names = list(_target_names(node))
        if names and all(name in ALLOWED_NAMES for name in names):
            continue
        label = ", ".join(names) or ast.unparse(node).split("=")[0].strip()
        violations.append(
            f"{path.relative_to(ROOT)}:{node.lineno}: mutable "
            f"{type(value).__name__.lower()} bound at {scope} scope "
            f"({label}); shard isolation requires instance-owned state")


def check_file(path):
    violations = []
    tree = ast.parse(path.read_text(), filename=str(path))
    check_scope(tree.body, path, "module", violations)
    return violations


def main():
    violations = []
    for root in SCANNED:
        for path in sorted(root.rglob("*.py")):
            violations.extend(check_file(path))
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} module/class-level mutable binding(s); "
              f"move them onto the owning instance", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
