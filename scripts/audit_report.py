"""Consistency-audit demo report (``make audit``).

Runs the two halves of the audit story back to back and prints a
human-readable report:

1. a short nemesis soak (gray faults + crashes under concurrent etcd
   clients) whose recorded history passes the linearizability checker;
2. the seeded stale-read bug (``stale_reads`` node toggle, which
   disables the leader's read lease) whose history FAILS, with the
   minimal counterexample witness rendered.

The point of the pairing: a green audit only means something if the
same checker demonstrably turns red on a real violation.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.audit.nemesis import NemesisSoak, seeded_stale_read_scenario  # noqa: E402
from repro.bench import build_platform  # noqa: E402

CONFIG = dict(history_recording=True, audit_interval=2.0,
              scrape_interval=0.25, alert_eval_interval=0.25,
              event_flush_interval=1.0)


def report_soak(seed, duration):
    print(f"== nemesis soak ({duration:g}s, seed {seed}) ==")
    platform = build_platform("k80", gpus_per_node=4, seed=seed, **CONFIG)
    soak = NemesisSoak(platform, **(dict(clients=4, keys=6,
                                         duration=duration)))
    out = soak.run()
    counts = out["history"]
    print(f"  clients issued {out['ops_issued']} ops "
          f"(ok={counts['ok']} fail={counts['fail']} "
          f"info/maybe-applied={counts['info']})")
    print(f"  nemesis injected {len(out['faults_injected'])} faults:")
    for when, kind, target in out["faults_injected"]:
        print(f"    t={when:<8} {kind:<13} {target}")
    audit = out["audit"]
    print(f"  auditor: {audit['passes']} passes, "
          f"{audit['ops_checked']} ops checked, "
          f"{audit['violations']} violations")
    verdict = "LINEARIZABLE" if out["ok"] else "VIOLATION"
    print(f"  verdict: {verdict}")
    if not out["ok"]:
        auditor = platform.monitoring.auditor
        print(auditor.render_violations())
    return out["ok"]


def run_seeded(seed):
    print()
    print(f"== seeded stale-read bug (seed {seed}) ==")
    platform = build_platform("k80", gpus_per_node=4, seed=seed, **CONFIG)
    for node_id in platform.etcd.node_ids:
        platform.etcd.node(node_id).stale_reads = True
    observed, outcome = seeded_stale_read_scenario(platform)
    platform.run_for(3 * CONFIG["audit_interval"])
    print("  read lease disabled (stale_reads=True on every node)")
    print(f"  deposed-leader read observed {observed!r} after a newer "
          "write committed v2")
    if outcome.ok:
        print("  verdict: PASS — the checker MISSED the seeded bug")
        return False
    print("  verdict: VIOLATION (expected) — minimal counterexample:")
    print()
    from repro.audit import render_witness
    for line in render_witness(outcome.witness).splitlines():
        print(f"  {line}")
    engine = platform.monitoring.engine
    fired = any(to == "firing"
                for _f, to in engine.transitions("ConsistencyViolation"))
    print()
    print(f"  ConsistencyViolation alert fired: {fired}")
    return fired


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--duration", type=float, default=20.0,
                        help="soak length in simulated seconds")
    args = parser.parse_args(argv)
    soak_ok = report_soak(args.seed, args.duration)
    seeded_caught = run_seeded(args.seed)
    print()
    if soak_ok and seeded_caught:
        print("audit report: soak linearizable, seeded bug caught — OK")
        return 0
    print("audit report: FAILED "
          f"(soak_ok={soak_ok}, seeded_caught={seeded_caught})")
    return 1


if __name__ == "__main__":
    sys.exit(main())
