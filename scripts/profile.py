"""Profile the simulator hot path under cProfile.

Runs the bench_perf scenario (small by default, ``--full`` for the
24-job scalability scenario) and prints the top functions by own time
and by cumulative time. This is the workflow that found every
optimization in the fast path: run, read the tottime column, fix the
top entry, repeat.

Usage::

    PYTHONPATH=src python scripts/profile.py            # smoke scenario
    PYTHONPATH=src python scripts/profile.py --full     # 24-job scenario
    PYTHONPATH=src python scripts/profile.py --slow     # compat path
    PYTHONPATH=src python scripts/profile.py -o out.pstats  # for snakeviz
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
# This file is named profile.py, which would shadow the stdlib profile
# module cProfile imports — drop scripts/ from the path first.
sys.path[:] = [p for p in sys.path
               if Path(p or ".").resolve() != REPO_ROOT / "scripts"]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import argparse  # noqa: E402
import cProfile  # noqa: E402
import pstats  # noqa: E402

from bench_perf import SCENARIO, SMOKE, run_scenario  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="profile the 24-job scalability scenario")
    parser.add_argument("--slow", action="store_true",
                        help="profile the sim_fast_path=False compat path")
    parser.add_argument("--lines", type=int, default=25,
                        help="rows per stats table (default 25)")
    parser.add_argument("-o", "--output", metavar="FILE",
                        help="also dump raw pstats to FILE")
    args = parser.parse_args(argv)

    scenario = SCENARIO if args.full else SMOKE
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_scenario(scenario, fast=not args.slow)
    profiler.disable()

    print(f"mode={result['mode']} jobs={result['jobs']} "
          f"wall={result['wall_s']}s events={result['events_processed']} "
          f"({result['events_per_sec']}/s)\n")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs()
    for sort in ("tottime", "cumulative"):
        print(f"--- top {args.lines} by {sort} ---")
        stats.sort_stats(sort).print_stats(args.lines)
    if args.output:
        stats.dump_stats(args.output)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
