#!/usr/bin/env python
"""Run a job, inject a crash, and print the monitoring dashboard.

The demo drives the full observability pipeline: the scraper samples
``up{component=...}`` and the platform metrics into the time-series
store, the injected API crash dips ``up{component=api}`` and walks the
``ApiDown`` alert through pending -> firing -> resolved, and the event
log records the whole episode. The dashboard then renders component
sparklines, key series, gray-divergence scores, active alerts and the
recent events.

``--gray`` injects a gray fault instead of the crash — a slow API
replica whose health probe keeps passing — so the divergence panel and
the GrayFailureSlow alert light up while every ``up`` sparkline stays
solid.

Usage::

    PYTHONPATH=src python scripts/dashboard.py [--steps N]
        [--no-crash | --gray]
"""

import argparse

from repro.bench import bench_manifest, build_platform
from repro.core import ComponentCrasher, GrayFailureInjector
from repro.monitoring import render_dashboard


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=60,
                        help="training steps for the demo job")
    parser.add_argument("--no-crash", action="store_true",
                        help="skip the injected API crash")
    parser.add_argument("--gray", action="store_true",
                        help="inject a gray fault (slow API replica) "
                             "instead of the crash")
    args = parser.parse_args(argv)

    overrides = {}
    if args.gray:
        # Tight cadence + short stats window so the divergence shows up
        # within the demo's few simulated seconds.
        overrides = dict(scrape_interval=0.25, alert_eval_interval=0.25,
                         gray_window=3.0, gray_alert_for=0.5)
    platform = build_platform("k80", gpus_per_node=4, **overrides)
    manifest = bench_manifest("vgg16", "tensorflow", gpus=1, gpu_type="k80",
                              steps=args.steps, learners=1)
    client = platform.client("dashboard-demo")

    job_id = platform.run_process(client.submit(manifest))
    platform.run_for(10.0)  # deploy + start training

    if args.gray:
        # Detection is differential, so the replicas need a steady
        # request stream to diverge on: poll job status through the
        # balancer (round-robined across the API endpoints).
        def poll():
            while True:
                yield from client.status(job_id)
                yield platform.kernel.sleep(0.1)

        platform.kernel.spawn(poll(), name="status-poller")
        platform.run_for(4.0)  # healthy peer baseline
        injector = GrayFailureInjector(platform)
        target = injector.api_endpoints()[0]
        injector.slow_endpoint(target, extra_latency=0.05, duration=10.0)
        print(f"injected slow-endpoint gray fault on {target} "
              f"at t={platform.kernel.now:.1f}s (health probe stays up)\n")
        platform.run_for(18.0)  # divergence scored, alert fires, resolves
    elif not args.no_crash:
        crasher = ComponentCrasher(platform)
        when, pod = crasher.crash_api()
        print(f"injected API crash at t={when:.1f}s (pod {pod})\n")
        platform.run_for(15.0)  # outage detected, alert fires, pod recovers

    doc = platform.run_process(
        client.wait_for_status(job_id, timeout=10_000), limit=5_000_000)
    print(f"job {job_id} finished: {doc['status']}\n")
    print(render_dashboard(platform))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
