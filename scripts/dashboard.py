#!/usr/bin/env python
"""Run a job, inject a crash, and print the monitoring dashboard.

The demo drives the full observability pipeline: the scraper samples
``up{component=...}`` and the platform metrics into the time-series
store, the injected API crash dips ``up{component=api}`` and walks the
``ApiDown`` alert through pending -> firing -> resolved, and the event
log records the whole episode. The dashboard then renders component
sparklines, key series, active alerts and the recent events.

Usage::

    PYTHONPATH=src python scripts/dashboard.py [--steps N] [--no-crash]
"""

import argparse

from repro.bench import bench_manifest, build_platform
from repro.core import ComponentCrasher
from repro.monitoring import render_dashboard


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=60,
                        help="training steps for the demo job")
    parser.add_argument("--no-crash", action="store_true",
                        help="skip the injected API crash")
    args = parser.parse_args(argv)

    platform = build_platform("k80", gpus_per_node=4)
    manifest = bench_manifest("vgg16", "tensorflow", gpus=1, gpu_type="k80",
                              steps=args.steps, learners=1)
    client = platform.client("dashboard-demo")

    job_id = platform.run_process(client.submit(manifest))
    platform.run_for(10.0)  # deploy + start training

    if not args.no_crash:
        crasher = ComponentCrasher(platform)
        when, pod = crasher.crash_api()
        print(f"injected API crash at t={when:.1f}s (pod {pod})\n")
        platform.run_for(15.0)  # outage detected, alert fires, pod recovers

    doc = platform.run_process(
        client.wait_for_status(job_id, timeout=10_000), limit=5_000_000)
    print(f"job {job_id} finished: {doc['status']}\n")
    print(render_dashboard(platform))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
