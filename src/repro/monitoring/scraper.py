"""The scrape pipeline: registry snapshots -> bounded time series.

A simulated Prometheus: every ``interval`` simulated seconds the
scraper walks the platform's :class:`MetricsRegistry` and health
probes and appends one sample per series to the
:class:`~repro.sim.timeseries.TimeSeriesStore`.

Collection is pure in-memory reading — no RPCs, no RNG — so enabling
the scraper cannot perturb the simulated job timeline.

Histograms are collected as ``<name>_count``, ``<name>_sum`` and
quantile-labeled gauges (``quantile="p50"|"p95"|"p99"``). Quantiles
are *estimated from the cumulative buckets* (Prometheus'
``histogram_quantile``), not from the raw samples: exact percentiles
re-sort the observation list, which is far too expensive to pay per
scrape tick on hot RPC histograms.

Series that existed on the previous scrape but are absent from this
one (a label set that vanished, a probe with no data) receive a
staleness marker, so downstream alert rules stop seeing their last
value.
"""


class MetricsScraper:
    """Periodic collector of metrics + health into the series store."""

    QUANTILES = (("p50", 50), ("p95", 95), ("p99", 99))

    def __init__(self, kernel, store, interval=1.0, registry=None,
                 health=None):
        if interval <= 0:
            raise ValueError("scrape interval must be positive")
        self.kernel = kernel
        self.store = store
        self.interval = interval
        self.registry = registry
        self.health = health
        self.running = False
        self.scrape_count = 0
        self._proc = None
        self._last_keys = set()
        if registry is not None:
            self._m_scrapes = registry.counter(
                "monitoring_scrapes_total", help="Completed scrape passes")
            self._m_series = registry.gauge(
                "monitoring_series", help="Live series in the scrape store")
        else:
            self._m_scrapes = self._m_series = None

    def start(self):
        if self.running:
            return self
        self.running = True
        self._proc = self.kernel.spawn(self._loop(), name="metrics-scraper")
        return self

    def stop(self):
        self.running = False
        if self._proc is not None:
            self._proc.kill("scraper stopped")
            self._proc = None
        return self

    def _loop(self):
        while self.running:
            self.scrape_once()
            yield self.kernel.sleep(self.interval)

    # ------------------------------------------------------------------

    def scrape_once(self):
        """One scrape pass; safe to call directly from tests."""
        now = self.kernel.now
        seen = set()

        def put(name, labels, value):
            self.store.add(name, labels, now, value)
            seen.add((name, tuple(sorted(labels.items()))))

        if self.registry is not None:
            self._collect_registry(put)
        if self.health is not None:
            for component, up in self.health.up_samples():
                put("up", {"component": component}, up)

        for name, labels in self._last_keys - seen:
            self.store.mark_stale(name, labels, now)
        self._last_keys = seen
        self.scrape_count += 1
        if self._m_scrapes is not None:
            self._m_scrapes.inc()
            self._m_series.set(len(self.store))

    def _collect_registry(self, put):
        for name in self.registry.names():
            metric = self.registry.get(name)
            for labelvalues, child in metric.children():
                labels = dict(zip(metric.labelnames, labelvalues))
                if metric.kind == "histogram":
                    put(f"{name}_count", labels, float(child.count))
                    put(f"{name}_sum", labels, child.total)
                    if child.count:
                        for quantile_label, q in self.QUANTILES:
                            value = child.bucket_percentile(q)
                            put(name, {**labels, "quantile": quantile_label},
                                value)
                else:
                    put(name, labels, child.value)
