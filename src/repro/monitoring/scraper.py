"""The scrape pipeline: registry snapshots -> bounded time series.

A simulated Prometheus: every ``interval`` simulated seconds the
scraper walks the platform's :class:`MetricsRegistry` and health
probes and appends one sample per series to the
:class:`~repro.sim.timeseries.TimeSeriesStore`.

Collection is pure in-memory reading — no RPCs, no RNG — so enabling
the scraper cannot perturb the simulated job timeline.

Histograms are collected as ``<name>_count``, ``<name>_sum`` and
quantile-labeled gauges (``quantile="p50"|"p95"|"p99"``). Quantiles
are *estimated from the cumulative buckets* (Prometheus'
``histogram_quantile``), not from the raw samples: exact percentiles
re-sort the observation list, which is far too expensive to pay per
scrape tick on hot RPC histograms.

Series that existed on the previous scrape but are absent from this
one (a label set that vanished, a probe with no data) receive a
staleness marker, so downstream alert rules stop seeing their last
value.

Each (metric child -> series) emission runs thousands of times per
simulated minute, so its plan — the derived series names, the label
dict, the canonical staleness key, and eventually the series object
itself — is computed once per child and cached on a
:class:`_SeriesHandle`; a scrape tick then reduces to value reads and
ring-buffer appends.
"""

from ..sim.timeseries import canonical_labels


class _SeriesHandle:
    """Cached emission target: one (name, labels) series."""

    __slots__ = ("name", "labels", "key", "series")

    def __init__(self, name, labels):
        self.name = name
        self.labels = canonical_labels(labels)
        self.key = (name, self.labels)
        self.series = None  # resolved on first emission


class MetricsScraper:
    """Periodic collector of metrics + health into the series store."""

    QUANTILES = (("p50", 50), ("p95", 95), ("p99", 99))

    # One registry-vs-plan-cache sweep per this many scrapes: plans of
    # pruned metric children are dead weight, but walking the registry
    # to find them is not free, so do it rarely.
    PLAN_GC_EVERY = 64

    def __init__(self, kernel, store, interval=1.0, registry=None,
                 health=None, prune_after=None):
        if interval <= 0:
            raise ValueError("scrape interval must be positive")
        self.kernel = kernel
        self.store = store
        self.interval = interval
        self.registry = registry
        self.health = health
        # A series stale this long is dropped from the store entirely
        # (its source endpoint is gone for good, not rebooting).
        self.prune_after = prune_after if prune_after is not None \
            else store.retention
        self.series_pruned = 0
        self.running = False
        self.scrape_count = 0
        self._proc = None
        self._last_keys = set()
        self._stale_since = {}  # (name, labels) -> time marked stale
        self._plans = {}  # (family name, labelvalues) -> emit plan
        self._quantile_cache = {}  # plan key -> (count, [q values])
        self._up_handles = {}  # component -> _SeriesHandle
        if registry is not None:
            self._m_scrapes = registry.counter(
                "monitoring_scrapes_total", help="Completed scrape passes")
            self._m_series = registry.gauge(
                "monitoring_series", help="Live series in the scrape store")
            # Kernel perf counters, published like any other scraped
            # family (setting gauges is pure bookkeeping — no events).
            self._g_events = registry.gauge(
                "kernel_events_processed_total",
                help="Heap entries popped by the simulation kernel")
            self._g_dead = registry.gauge(
                "kernel_dead_entries_total",
                help="Cancelled timers skipped at pop (lazy heap deletion)")
            self._g_dead_ratio = registry.gauge(
                "kernel_dead_entry_ratio",
                help="Fraction of heap pops that were cancelled timers")
        else:
            self._m_scrapes = self._m_series = None
            self._g_events = self._g_dead = self._g_dead_ratio = None
        # Shard-boundary gauges, registered lazily on the first scrape
        # that sees ``kernel.shard`` bound: an unsharded platform (the
        # overwhelmingly common case) must not grow empty shard series.
        self._shard_handles = None

    def _shard_gauges(self):
        handles = self._shard_handles
        if handles is None:
            messages = self.registry.gauge(
                "shard_boundary_messages_total", ("direction",),
                help="Boundary messages crossed by this shard's port")
            handles = self._shard_handles = (
                messages.labels(direction="sent"),
                messages.labels(direction="received"),
                self.registry.gauge(
                    "shard_lookahead_stalls_total",
                    help="Windows this shard had work but none executable"),
                self.registry.gauge(
                    "shard_merge_lag_seconds",
                    help="Local-clock lag behind the global window start"),
            )
        return handles

    def start(self):
        if self.running:
            return self
        self.running = True
        self._proc = self.kernel.spawn(self._loop(), name="metrics-scraper")
        return self

    def stop(self):
        self.running = False
        if self._proc is not None:
            self._proc.kill("scraper stopped")
            self._proc = None
        return self

    def _loop(self):
        while self.running:
            self.scrape_once()
            yield self.kernel.sleep(self.interval)

    # ------------------------------------------------------------------

    def _emit(self, handle, now, value, seen):
        series = handle.series
        if series is None:
            series = handle.series = self.store._get_or_create(
                handle.name, handle.labels)
        series.add(now, value)
        seen.add(handle.key)

    def scrape_once(self):
        """One scrape pass; safe to call directly from tests."""
        now = self.kernel.now
        seen = set()

        if self._g_events is not None:
            kernel = self.kernel
            self._g_events.set(float(kernel.events_processed))
            self._g_dead.set(float(kernel.dead_entries_skipped))
            self._g_dead_ratio.set(kernel.dead_entry_ratio)
            shard = kernel.shard
            if shard is not None:
                sent, received, stalls, lag = self._shard_gauges()
                sent.set(float(shard.messages_sent))
                received.set(float(shard.messages_received))
                stalls.set(float(shard.lookahead_stalls))
                lag.set(shard.merge_lag)

        if self.registry is not None:
            self._collect_registry(now, seen)
        if self.health is not None:
            handles = self._up_handles
            for component, up in self.health.up_samples():
                handle = handles.get(component)
                if handle is None:
                    handle = handles[component] = _SeriesHandle(
                        "up", {"component": component})
                self._emit(handle, now, up, seen)

        for key in self._last_keys - seen:
            self.store.mark_stale(key[0], key[1], now)
            self._stale_since.setdefault(key, now)
        self._last_keys = seen
        self._prune_stale(now, seen)
        self.scrape_count += 1
        if self.registry is not None \
                and self.scrape_count % self.PLAN_GC_EVERY == 0:
            self._gc_plans()
        if self._m_scrapes is not None:
            self._m_scrapes.inc()
            self._m_series.set(len(self.store))

    def _prune_stale(self, now, seen):
        """Forget series whose source stayed gone past ``prune_after``.

        A staleness marker already hides a vanished series from rule
        evaluation; this goes further and reclaims the series (and the
        tracking entry) once it is clear the label set is not coming
        back, so endpoint churn cannot grow the store without bound. A
        source that *does* come back before the deadline simply drops
        its tracking entry and keeps its history."""
        stale = self._stale_since
        if not stale:
            return
        for key in [k for k in stale if k in seen]:
            del stale[key]
        cutoff = now - self.prune_after
        pruned = set()
        for key in [k for k, since in stale.items() if since <= cutoff]:
            del stale[key]
            if self.store.remove(key[0], key[1]):
                self.series_pruned += 1
                pruned.add(key)
        if pruned:
            # A cached handle still pointing at a pruned series would
            # write into an orphaned ring buffer if the source came
            # back much later; drop the resolution so the next emission
            # re-creates the series in the store.
            self._invalidate_handles(pruned)

    def _invalidate_handles(self, pruned):
        def invalidate(handle):
            if handle.key in pruned:
                handle.series = None

        for plan in self._plans.values():
            if isinstance(plan, _SeriesHandle):
                invalidate(plan)
            else:
                count_handle, sum_handle, quantile_plan = plan
                invalidate(count_handle)
                invalidate(sum_handle)
                for _q, handle in quantile_plan:
                    invalidate(handle)
        for handle in self._up_handles.values():
            invalidate(handle)

    def _gc_plans(self):
        """Drop emission plans for metric children that no longer
        exist (pruned via ``_Family.remove``); their series went stale
        and will be pruned by ``_prune_stale`` independently."""
        live = set()
        for name in self.registry.names():
            metric = self.registry.get(name)
            for labelvalues, _child in metric.children():
                live.add((name, labelvalues))
        for plan_key in [k for k in self._plans if k not in live]:
            del self._plans[plan_key]
            self._quantile_cache.pop(plan_key, None)

    def _collect_registry(self, now, seen):
        plans = self._plans
        for name in self.registry.names():
            metric = self.registry.get(name)
            is_histogram = metric.kind == "histogram"
            for labelvalues, child in metric.children():
                plan_key = (name, labelvalues)
                plan = plans.get(plan_key)
                if plan is None:
                    labels = dict(zip(metric.labelnames, labelvalues))
                    if is_histogram:
                        plan = (
                            _SeriesHandle(f"{name}_count", labels),
                            _SeriesHandle(f"{name}_sum", labels),
                            tuple(
                                (q, _SeriesHandle(
                                    name, {**labels, "quantile": quantile}))
                                for quantile, q in self.QUANTILES
                            ),
                        )
                    else:
                        plan = _SeriesHandle(name, labels)
                    plans[plan_key] = plan
                if is_histogram:
                    count_handle, sum_handle, quantile_plan = plan
                    count = child.count
                    self._emit(count_handle, now, float(count), seen)
                    self._emit(sum_handle, now, child.total, seen)
                    if count:
                        # No new observations since the last scrape means
                        # identical buckets, hence identical quantiles —
                        # skip the percentile walk for idle histograms.
                        cached = self._quantile_cache.get(plan_key)
                        if cached is None or cached[0] != count:
                            cached = (count, [child.bucket_percentile(q)
                                              for q, _h in quantile_plan])
                            self._quantile_cache[plan_key] = cached
                        values = cached[1]
                        for i, (_q, handle) in enumerate(quantile_plan):
                            self._emit(handle, now, values[i], seen)
                else:
                    self._emit(plan, now, child.value, seen)
