"""Assembly of the monitoring subsystem for a DlaasPlatform.

One object owning the series store, the scraper, the alert engine
(loaded with the default rule pack) and the event flusher. Constructed
by ``DlaasPlatform`` when ``PlatformConfig(monitoring=True)`` and
started alongside the core services.

Everything here observes without perturbing: scraping and rule
evaluation are pure in-memory reads, and event persistence writes
*directly* into the Mongo members' databases (the same path bootstrap
index creation uses) rather than through the RPC fabric. An RPC would
consume draws from the shared network-jitter RNG stream and shift
every subsequent call's latency — the simulated job timeline must be
bit-identical with monitoring on or off.
"""

from .alerts import AlertEngine, default_rule_pack
from .differential import DifferentialDetector
from .scraper import MetricsScraper
from ..sim.timeseries import TimeSeriesStore


class EventFlusher:
    """Periodically persists dirty platform events to the docstore."""

    def __init__(self, kernel, recorder, replica_set, interval=1.0):
        self.kernel = kernel
        self.recorder = recorder
        self.replica_set = replica_set
        self.interval = interval
        self.running = False
        self._proc = None

    def start(self):
        if self.running:
            return self
        self.running = True
        self._proc = self.kernel.spawn(self._loop(), name="event-flusher")
        return self

    def stop(self):
        self.running = False
        if self._proc is not None:
            self._proc.kill("event flusher stopped")
            self._proc = None
        return self

    def _loop(self):
        while self.running:
            self.flush_once()
            yield self.kernel.sleep(self.interval)

    def flush_once(self):
        """Upsert every event touched since the last flush into each
        alive member. A member that is down misses the write and
        catches up through its restart initial sync."""
        dirty = self.recorder.drain_dirty()
        if not dirty:
            return 0
        for event in dirty:
            doc = event.to_doc()
            for member in self.replica_set.members.values():
                if not member.alive:
                    continue
                member.database.collection("events").update_one(
                    {"event_key": doc["event_key"]}, {"$set": dict(doc)},
                    upsert=True)
        return len(dirty)


class MonitoringStack:
    """Scraper + series store + alert engine + event flusher."""

    def __init__(self, platform):
        config = platform.config
        self.platform = platform
        self.store = TimeSeriesStore(retention=config.series_retention,
                                     max_samples=config.series_max_samples)
        self.scraper = MetricsScraper(
            platform.kernel, self.store, interval=config.scrape_interval,
            registry=platform.metrics, health=platform.health)
        self.engine = AlertEngine(
            platform.kernel, self.store, events=platform.events,
            metrics=platform.metrics, interval=config.alert_eval_interval,
            staleness=3.0 * config.scrape_interval)
        # Gray-failure detection: the detector runs as a recording rule
        # (pure series-store reads) so divergence scores land in the
        # store before the GrayFailure* alert rules of the same pass.
        if getattr(config, "gray_detection", False):
            self.detector = DifferentialDetector(
                window=config.gray_window, min_count=config.gray_min_count)
            self.engine.add_recording_rule("gray_divergence", self.detector)
        else:
            self.detector = None
        for rule in default_rule_pack(config):
            self.engine.add_rule(rule)
        # Consistency audit: periodic linearizability checking of the
        # flight-recorded raftkv client history. Pure in-memory reads of
        # the recorder plus counter bumps — same non-perturbation
        # argument as the scraper.
        if getattr(platform, "history", None) is not None:
            from ..audit import ConsistencyAuditor

            self.auditor = ConsistencyAuditor(
                platform.kernel, platform.history,
                metrics=platform.metrics,
                interval=config.audit_interval,
                max_configs=config.audit_max_configs)
        else:
            self.auditor = None
        self.flusher = EventFlusher(
            platform.kernel, platform.events, platform.mongo,
            interval=config.event_flush_interval)

    def start(self):
        self.scraper.start()
        self.engine.start()
        if self.auditor is not None:
            self.auditor.start()
        self.flusher.start()
        return self

    def stop(self):
        self.scraper.stop()
        self.engine.stop()
        if self.auditor is not None:
            self.auditor.stop()
        self.flusher.stop()
        return self
