"""Declarative recording/alert rules over scraped series (SLO engine).

A tiny Prometheus-rules analogue evaluated on the simulation clock:

* expressions are instant vectors over the
  :class:`~repro.sim.timeseries.TimeSeriesStore` —
  :class:`Metric` (freshest sample per matching series),
  :class:`Increase` (counter delta over a trailing window) and ratios
  of the two; comparison operators produce threshold conditions, e.g.
  ``Metric("up", component="api") == 0``;
* a :class:`RecordingRule` writes an expression's result back to the
  store as a derived series;
* an :class:`AlertRule` holds a condition plus a ``for_`` duration and
  walks each matching label set through the Prometheus lifecycle
  inactive -> pending -> firing -> resolved. A condition that clears
  before ``for_`` elapses never fires.

Firing raises a ``Warning`` platform event on the involved component
and is visible as the ``alerts_firing{alert=...}`` gauge; resolution
emits a ``Normal`` event. The default rule pack covers the paper's
failure matrix (API / LCM / Guardian / helper / learner / etcd-member
crash) plus deploy-failure ratio, p99 RPC latency and workqueue-depth
SLOs.

Evaluation reads only in-memory series — no RPCs — so the engine
cannot perturb the simulated job timeline.
"""

from ..sim.timeseries import counter_increase

PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"
INACTIVE = "inactive"


class _Expr:
    """Operator sugar: comparing an expression yields a Condition."""

    def __gt__(self, threshold):
        return Condition(self, ">", threshold)

    def __ge__(self, threshold):
        return Condition(self, ">=", threshold)

    def __lt__(self, threshold):
        return Condition(self, "<", threshold)

    def __le__(self, threshold):
        return Condition(self, "<=", threshold)

    def __eq__(self, threshold):
        return Condition(self, "==", threshold)

    def __ne__(self, threshold):
        return Condition(self, "!=", threshold)

    __hash__ = None

    def __truediv__(self, other):
        return Ratio(self, other)


class Metric(_Expr):
    """Instant vector: freshest non-stale sample of matching series."""

    def __init__(self, name, **match):
        self.name = name
        self.match = match

    def eval(self, store, now, staleness):
        out = {}
        for series in store.series(self.name, **self.match):
            value = series.latest_value(now, staleness)
            if value is not None:
                out[series.labels] = value
        return out

    def __repr__(self):
        match = "".join(f", {k}={v!r}" for k, v in sorted(self.match.items()))
        return f"Metric({self.name!r}{match})"


class Increase(_Expr):
    """Counter increase over a trailing window of scraped samples."""

    def __init__(self, name, window, **match):
        self.name = name
        self.window = window
        self.match = match

    def eval(self, store, now, staleness):
        del staleness  # windows read history; instant staleness n/a
        out = {}
        for series in store.series(self.name, **self.match):
            points = series.window(now - self.window, now)
            if len(points) >= 2:
                out[series.labels] = counter_increase(points)
        return out

    def __repr__(self):
        return f"Increase({self.name!r}, {self.window})"


class Ratio(_Expr):
    """Label-matched division; instances without a positive denominator
    sample are dropped (no division by zero, no phantom ratios)."""

    def __init__(self, numerator, denominator):
        self.numerator = numerator
        self.denominator = denominator

    def eval(self, store, now, staleness):
        num = self.numerator.eval(store, now, staleness)
        den = self.denominator.eval(store, now, staleness)
        out = {}
        for labels, value in num.items():
            below = den.get(labels)
            if below is None and len(den) == 1:
                below = next(iter(den.values()))  # scalar-like denominator
            if below:
                out[labels] = value / below
        return out

    def __repr__(self):
        return f"({self.numerator!r} / {self.denominator!r})"


_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class Condition:
    """expression OP threshold -> the satisfied instances."""

    def __init__(self, expr, op, threshold):
        self.expr = expr
        self.op = op
        self.threshold = float(threshold)

    def eval(self, store, now, staleness):
        compare = _OPS[self.op]
        return {labels: value
                for labels, value in self.expr.eval(store, now, staleness).items()
                if compare(value, self.threshold)}

    def __repr__(self):
        return f"{self.expr!r} {self.op} {self.threshold}"


class RecordingRule:
    """Precompute an expression into a named derived series."""

    def __init__(self, name, expr):
        self.name = name
        self.expr = expr


class AlertRule:
    """A condition that must hold for ``for_`` seconds to fire."""

    def __init__(self, name, condition, for_=0.0, severity="warning",
                 event_reason=None, description=""):
        if not isinstance(condition, Condition):
            raise TypeError("AlertRule needs a Condition "
                            "(compare a Metric/Increase against a threshold)")
        self.name = name
        self.condition = condition
        self.for_ = for_
        self.severity = severity
        self.event_reason = event_reason or name
        self.description = description


class AlertEngine:
    """Evaluates recording + alert rules on a fixed simulated cadence."""

    def __init__(self, kernel, store, events=None, metrics=None,
                 interval=1.0, staleness=None):
        if interval <= 0:
            raise ValueError("evaluation interval must be positive")
        self.kernel = kernel
        self.store = store
        self.events = events
        self.interval = interval
        # An instant sample older than this is stale. Default: a bit
        # more than two eval ticks, so one late scrape is forgiven.
        self.staleness = staleness if staleness is not None else 2.5 * interval
        self.rules = []
        self.recording_rules = []
        self.active = {}  # (rule_name, labels) -> instance dict
        self.history = []  # transition records, append-only
        self.running = False
        self._proc = None
        if metrics is not None:
            self._g_firing = metrics.gauge(
                "alerts_firing", ("alert",), help="Currently firing alerts")
            self._c_transitions = metrics.counter(
                "alert_transitions_total", ("alert", "state"),
                help="Alert lifecycle transitions by target state")
        else:
            self._g_firing = self._c_transitions = None

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------

    def add_rule(self, rule):
        self.rules.append(rule)
        if self.events is not None:
            # Rules declare their event reason; admit it so firing can
            # always be recorded (built-in reasons are already known).
            self.events.register_reason(rule.event_reason)
        if self._g_firing is not None:
            self._g_firing.labels(alert=rule.name).set(0)
        return rule

    def add_recording_rule(self, name, expr):
        rule = RecordingRule(name, expr)
        self.recording_rules.append(rule)
        return rule

    def rule(self, name):
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        if self.running:
            return self
        self.running = True
        self._proc = self.kernel.spawn(self._loop(), name="alert-engine")
        return self

    def stop(self):
        self.running = False
        if self._proc is not None:
            self._proc.kill("alert engine stopped")
            self._proc = None
        return self

    def _loop(self):
        while self.running:
            self.evaluate_once()
            yield self.kernel.sleep(self.interval)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate_once(self):
        now = self.kernel.now
        # Recording rules run first so alert rules can use their output
        # in the same pass.
        for rec in self.recording_rules:
            for labels, value in rec.expr.eval(self.store, now,
                                               self.staleness).items():
                self.store.add(rec.name, labels, now, value)
        for rule in self.rules:
            satisfied = rule.condition.eval(self.store, now, self.staleness)
            self._step_rule(rule, satisfied, now)

    def _step_rule(self, rule, satisfied, now):
        for labels, value in satisfied.items():
            key = (rule.name, labels)
            instance = self.active.get(key)
            if instance is None:
                instance = {"rule": rule.name, "labels": labels,
                            "state": PENDING, "since": now, "value": value,
                            "firing_at": None}
                self.active[key] = instance
                self._record(rule, labels, INACTIVE, PENDING, now, value)
            instance["value"] = value
            if (instance["state"] == PENDING
                    and now - instance["since"] >= rule.for_):
                instance["state"] = FIRING
                instance["firing_at"] = now
                self._record(rule, labels, PENDING, FIRING, now, value)
                self._on_firing(rule, labels, value)
        # Instances whose condition cleared.
        for key in [k for k in self.active if k[0] == rule.name
                    and k[1] not in satisfied]:
            instance = self.active.pop(key)
            if instance["state"] == FIRING:
                self._record(rule, instance["labels"], FIRING, RESOLVED, now,
                             instance["value"])
                self._on_resolved(rule, instance["labels"])
            else:
                # Recovered while still pending: never fired, no event.
                self._record(rule, instance["labels"], PENDING, INACTIVE, now,
                             instance["value"])

    def _record(self, rule, labels, old, new, now, value):
        self.history.append({"time": now, "rule": rule.name, "labels": labels,
                             "from": old, "to": new, "value": value})
        if self._c_transitions is not None:
            self._c_transitions.labels(alert=rule.name, state=new).inc()
        if self._g_firing is not None:
            self._g_firing.labels(alert=rule.name).set(self.firing_count(rule.name))

    def _involved(self, rule, labels):
        labels = dict(labels)
        for key, kind in (("component", "Component"), ("model", "Model"),
                          ("batch", "BatchInfer"), ("key", "EtcdKey"),
                          ("name", "Component")):
            if labels.get(key):
                return kind, labels[key]
        return "Component", rule.name

    def _on_firing(self, rule, labels, value):
        if self.events is None:
            return
        kind, name = self._involved(rule, labels)
        detail = ",".join(f"{k}={v}" for k, v in labels) or "-"
        self.events.emit_event(
            "Warning", rule.event_reason, kind, name,
            message=f"alert {rule.name} firing ({detail}, value {value:g})")

    def _on_resolved(self, rule, labels):
        if self.events is None:
            return
        kind, name = self._involved(rule, labels)
        self.events.emit_event(
            "Normal", "AlertResolved", kind, name,
            message=f"alert {rule.name} resolved")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def firing(self, rule_name=None):
        return [i for i in self.active.values()
                if i["state"] == FIRING
                and (rule_name is None or i["rule"] == rule_name)]

    def firing_count(self, rule_name):
        return len(self.firing(rule_name))

    def transitions(self, rule_name, labels=None):
        """Ordered ``(from, to)`` pairs a rule instance went through."""
        out = []
        for record in self.history:
            if record["rule"] != rule_name:
                continue
            if labels is not None and dict(record["labels"]) != dict(labels):
                continue
            out.append((record["from"], record["to"]))
        return out


def default_rule_pack(config):
    """Alert rules covering the paper's failure matrix (§IV-V) plus
    platform SLOs. ``for_`` durations come from the platform config:
    service-level rules ride out one scrape hiccup, pod-level rules
    are tighter because learner/guardian dips last well under a
    second (Fig. 4 recovery bands)."""
    service_for = config.alert_service_for
    pod_for = config.alert_pod_for

    def down(component, for_):
        return Metric("up", component=component) == 0, for_

    rules = []
    for component, reason, for_ in (
        ("api", "ApiDown", service_for),
        ("lcm", "LcmDown", service_for),
        ("etcd", "EtcdDegraded", pod_for),
        ("mongo", "MongoDegraded", pod_for),
        ("nfs", "NfsDown", pod_for),
        ("guardian", "GuardianDown", pod_for),
        ("helper", "HelperDown", pod_for),
        ("learner", "LearnerDown", pod_for),
    ):
        condition, for_duration = down(component, for_)
        rules.append(AlertRule(reason, condition, for_=for_duration,
                               severity="critical",
                               description=f"up{{component={component}}} == 0"))
    rules.append(AlertRule(
        "DeployFailureRatioHigh",
        Ratio(Increase("guardian_deploy_rollbacks_total", 60.0),
              Increase("guardian_deploy_attempts_total", 60.0)) > 0.5,
        for_=0.0, severity="warning",
        description="more than half of recent guardian deploy attempts "
                    "rolled back"))
    rules.append(AlertRule(
        "RpcLatencyHigh",
        Metric("rpc_client_duration_seconds", quantile="p99") > 1.0,
        for_=service_for, severity="warning",
        description="p99 RPC latency above 1s"))
    rules.append(AlertRule(
        "WorkqueueBacklog",
        Metric("workqueue_depth") > 50,
        for_=service_for, severity="warning",
        description="a reconciler workqueue is backing up"))
    if getattr(config, "gray_detection", False):
        # Gray failures: the differential detector's gray_divergence
        # recording series score each endpoint against its role peers
        # (repro.monitoring.differential). The three signals map to the
        # three injectable gray fault families; the shared ``for_``
        # hold rides out a single-window statistical blip.
        threshold = config.gray_divergence_threshold
        gray_for = config.gray_alert_for
        rules.append(AlertRule(
            "GrayFailureSlow",
            Metric("gray_divergence", signal="latency") > threshold,
            for_=gray_for, severity="warning",
            description="an endpoint's windowed mean RPC latency diverges "
                        "from its role peers while its health probe stays "
                        "up (slow node / degraded NIC)"))
        rules.append(AlertRule(
            "GrayFailurePartition",
            Metric("gray_divergence", signal="link") > threshold,
            for_=gray_for, severity="warning",
            description="an endpoint's error rate diverges from its role "
                        "peers or it serves more requests than callers "
                        "sent (asymmetric partition / loss / duplication)"))
        rules.append(AlertRule(
            "GrayFailureDiskStall",
            Metric("gray_divergence", signal="write_latency") > threshold,
            for_=gray_for, severity="warning",
            description="an endpoint's write/replication latency diverges "
                        "from its role peers (stalling disk under a "
                        "member that still answers reads)"))
    if getattr(config, "admission_queue_limit", 0) > 0:
        # A tenant pinned at its admission-queue limit means quota
        # capacity is not freeing fast enough for its offered load;
        # sustained saturation turns queue waits into 429s.
        rules.append(AlertRule(
            "AdmissionSaturated",
            Metric("admission_queue_depth") >= config.admission_queue_limit,
            for_=service_for, severity="warning",
            description="a tenant's admission queue is pinned at its "
                        "limit; over-quota submissions are being "
                        "rejected instead of queued"))
    if getattr(config, "history_recording", False):
        # The consistency auditor latches one counter bump per
        # non-linearizable key; any bump at all is a platform-integrity
        # incident, so the rule fires immediately and never resolves
        # until restart (latched counters only move up).
        rules.append(AlertRule(
            "ConsistencyViolation",
            Metric("consistency_violations_total") > 0,
            for_=0.0, severity="critical",
            description="the linearizability checker found a key whose "
                        "recorded client history admits no legal "
                        "serialization (stale read / lost write)"))
    if getattr(config, "serving", False):
        rules.append(AlertRule(
            "ServingDown",
            Metric("up", component="serving") == 0,
            for_=service_for, severity="critical",
            description="up{component=serving} == 0"))
        # The autoscaler exports each model's p99/SLO ratio; above 1.0
        # the model is out of SLO. ``for_`` rides out the scale-up lag
        # an autoscaler is *expected* to incur on a burst edge.
        rules.append(AlertRule(
            "ServingSLOBreach",
            Metric("serving_slo_breach") > 1.0,
            for_=service_for, severity="warning",
            description="a serving model's windowed p99 exceeds its SLO"))
        rules.append(AlertRule(
            "BatchInferStalled",
            Metric("batchinfer_stalled_seconds") > config.batchinfer_stall_threshold,
            for_=0.0, severity="warning",
            description="a batch-inference job has made no progress for "
                        "longer than the stall threshold"))
    return rules
