"""Health probes: every service answers ``healthz()``.

Each probe is a *pure, synchronous* check over platform state — load
balancer endpoint counts, Raft liveness/quorum, Mongo membership, NFS
availability, pod-group strength. Probes never issue RPCs, so probing
(at scrape time or on a REST ``GET /healthz``) cannot perturb the
simulated timeline.

A probe returns ``None`` ("no data yet") or a dict with:

* ``live``  — the component is present at all;
* ``ready`` — the component is at full declared strength;
* ``detail`` — human-readable summary for ``/healthz``.

The scraper turns probe results into ``up{component=...}`` samples
(1.0 iff live *and* ready, so a degraded replica set dips the series),
and the REST gateway aggregates them at ``GET /healthz``.

Pod-group probes (guardian/helper/learner) carry an *ever-ready
latch*: an owner (K8S Job / Deployment / StatefulSet) only counts
toward health once it has first reached full Running strength.
Without the latch every job deployment would masquerade as an outage
while its pods boot.
"""

from ..cluster.resources.pod import RUNNING, SUCCEEDED


class Probe:
    """A named health check wrapping a plain callable."""

    def __init__(self, name, check, core=True, latch=False):
        self.name = name
        self._check = check
        # Core probes gate the aggregate /healthz status; per-job pod
        # groups degrade a job, not the platform.
        self.core = core
        self._latch = latch
        self._seen_ready = False

    def check(self):
        result = self._check()
        if result is None:
            return None
        if self._latch:
            if result["ready"]:
                self._seen_ready = True
            elif not self._seen_ready:
                return None  # still booting; don't report a false outage
        return result


class HealthRegistry:
    """All registered probes; the aggregation point for /healthz."""

    def __init__(self):
        self._probes = {}

    def register(self, name, check, core=True, latch=False):
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        probe = Probe(name, check, core=core, latch=latch)
        self._probes[name] = probe
        return probe

    def register_probe(self, probe):
        if probe.name in self._probes:
            raise ValueError(f"probe {probe.name!r} already registered")
        self._probes[probe.name] = probe
        return probe

    def probe_names(self):
        return list(self._probes)

    def check(self, name):
        return self._probes[name].check()

    def snapshot(self):
        """The ``GET /healthz`` body: per-component status + rollup."""
        components = {}
        ok = True
        for name, probe in self._probes.items():
            result = probe.check()
            if result is None:
                components[name] = {"status": "unknown"}
                continue
            live, ready = result["live"], result["ready"]
            status = "ok" if live and ready else ("degraded" if live else "down")
            if probe.core and status != "ok":
                ok = False
            components[name] = {
                "status": status,
                "live": live,
                "ready": ready,
                "detail": result.get("detail", ""),
            }
        return {"status": "ok" if ok else "degraded", "components": components}

    def up_samples(self):
        """``(component, up)`` pairs for the scraper; probes with no
        data yield no sample (the series goes stale, not to zero)."""
        out = []
        for name, probe in self._probes.items():
            result = probe.check()
            if result is None:
                continue
            out.append((name, 1.0 if result["live"] and result["ready"] else 0.0))
        return out


class PodGroupProbe(Probe):
    """Health of a per-job pod family (guardian, helper or learner).

    An owner counts once latched (first seen at full Running strength);
    from then on, fewer Running pods than desired means the group — and
    the component — is down until replacements run. Owners being torn
    down (or K8S Jobs that completed) stop counting entirely.
    """

    def __init__(self, platform, name, collect_owners):
        super().__init__(name, self._check_groups, core=False)
        self.platform = platform
        self._collect_owners = collect_owners
        self._latched = set()

    def _check_groups(self):
        owners = self._collect_owners(self.platform.k8s.api)
        current = {owner_name for owner_name, _desired, _running in owners}
        self._latched &= current  # forget owners that went away
        total = healthy = 0
        for owner_name, desired, running in owners:
            full = running >= desired
            if full:
                self._latched.add(owner_name)
            elif owner_name not in self._latched:
                continue  # still booting for the first time
            total += 1
            healthy += 1 if full else 0
        if total == 0:
            return None
        live = healthy == total
        return {"live": live, "ready": live,
                "detail": f"{healthy}/{total} groups at full strength"}


def _guardian_owners(api):
    out = []
    for job in api.list("Job"):
        job_id = job.metadata.labels.get("dlaas-job")
        if job_id is None or job.complete:
            continue
        running = 0
        if job.active_pod:
            pod = api.get_or_none("Pod", job.active_pod)
            # A Succeeded guardian finished its K8S Job; that is health,
            # not an outage.
            if pod is not None and pod.phase in (RUNNING, SUCCEEDED):
                running = 1
        out.append((job.metadata.name, 1, running))
    return out


def _template_owners(api, kind, role):
    out = []
    for owner in api.list(kind):
        labels = owner.template.labels or {}
        if labels.get("role") != role or getattr(owner, "deletion_requested", False):
            continue
        selector = {"dlaas-job": labels.get("dlaas-job"), "role": role}
        running = sum(
            1 for pod in api.list("Pod", selector=selector)
            if pod.phase == RUNNING and not pod.deletion_requested
        )
        out.append((owner.metadata.name, owner.replicas, running))
    return out


def register_platform_probes(platform, registry):
    """Wire the standard probe set for an assembled DlaasPlatform."""
    config = platform.config

    def balancer_check(balancer, desired):
        def check():
            n = len(balancer.endpoints)
            return {"live": n > 0, "ready": n >= desired,
                    "detail": f"{n}/{desired} endpoints"}
        return check

    # Core services answer through their load-balancer registration —
    # the endpoint set is exactly what a Kubernetes readiness probe
    # feeds. Latched: no false outage while the first pods boot.
    registry.register("api",
                      balancer_check(platform.api_balancer, config.api_replicas),
                      latch=True)
    registry.register("lcm",
                      balancer_check(platform.lcm_balancer, config.lcm_replicas),
                      latch=True)
    if getattr(config, "serving", False):
        registry.register(
            "serving",
            balancer_check(platform.serving_balancer, config.serving_replicas),
            latch=True)

    def etcd_check():
        alive = platform.etcd.alive_count()
        size = len(platform.etcd.nodes)
        has_leader = platform.etcd.leader() is not None
        return {"live": alive > size // 2 and has_leader,
                "ready": alive == size and has_leader,
                "detail": f"{alive}/{size} members alive"
                          + ("" if has_leader else ", no leader")}

    def mongo_check():
        # With docstore sharding, every shard must have a primary for
        # the store to be live (each owns part of the key space).
        shard_sets = ([shard for shard in platform.mongo_shard_set.shards]
                      if getattr(platform, "mongo_shard_set", None) is not None
                      else [platform.mongo])
        alive = total = 0
        primaries = 0
        for shard in shard_sets:
            alive += sum(1 for m in shard.members.values() if m.alive)
            total += len(shard.members)
            primaries += 1 if shard.primary_id() is not None else 0
        all_primaried = primaries == len(shard_sets)
        return {"live": all_primaried,
                "ready": alive == total and all_primaried,
                "detail": f"{alive}/{total} members alive, "
                          f"{primaries}/{len(shard_sets)} shards primaried"}

    def nfs_check():
        up = platform.nfs.available
        return {"live": up, "ready": up,
                "detail": "serving" if up else "unavailable"}

    registry.register("etcd", etcd_check)
    registry.register("mongo", mongo_check)
    registry.register("nfs", nfs_check)

    registry.register_probe(PodGroupProbe(platform, "guardian", _guardian_owners))
    registry.register_probe(PodGroupProbe(
        platform, "helper",
        lambda api: _template_owners(api, "Deployment", "helper")))
    registry.register_probe(PodGroupProbe(
        platform, "learner",
        lambda api: _template_owners(api, "StatefulSet", "learner")))
    return registry
