"""Differential observability: peer-divergence detection of gray faults.

A component can pass its liveness probe while silently degrading the
traffic routed through it — the *gray failure* regime that ``up``-based
crash monitoring cannot see. The :class:`DifferentialDetector` detects
it the way large fleets do: compare each replica against its *peers*
of the same role rather than against a static threshold, so the
detector needs no per-deployment tuning and tracks load swings that
move every replica together.

Three signals per endpoint, each over a trailing window of the scraped
per-endpoint counter series
(``rpc_endpoint_requests_total{endpoint,method,code}``,
``rpc_endpoint_latency_seconds_total{endpoint,method}``,
``rpc_server_handled_total{endpoint}``):

* ``latency`` — windowed mean RPC latency of non-write methods. A slow
  node/NIC lifts it on one replica only.
* ``write_latency`` — windowed mean latency of the replication/write
  methods (``replicate``, ``append_entries``, ...), isolating a disk
  stall from request-path slowness.
* ``link`` — the larger of the windowed error-*rate* divergence (an
  asymmetric partition or lossy link fails calls to one endpoint while
  its peers stay clean) and the served-vs-requested flow anomaly (a
  fabric duplicating messages makes a server handle more requests than
  its callers sent — invisible client-side).

Each per-(role, method) group scores every member against the others
with a robust z-score, ``max(0, (value - median(peers)) / scale)``
where ``scale = max(1.4826 * MAD, rel_floor * |median|, abs_floor)``;
the clamp means only the *degraded* side of a divergence alerts, and
the floors keep two-replica groups (MAD = 0) and near-zero baselines
from paging on noise. Scores publish as
``gray_divergence{component=...,role=...,signal=...}`` through the
alert engine's recording-rule pass; the ``GrayFailure{Slow,Partition,
DiskStall}`` rules in the default pack threshold them.

The detector is a pure consumer of the series store: no RPCs, no RNG
draws, no scheduled events — with detection enabled and no gray fault
injected the simulated timeline is bit-identical.
"""

from ..sim.timeseries import counter_increase

# Methods that are disk writes on the serving member: a stalled disk
# shows up here first, while the member's read path stays competitive.
WRITE_METHODS = frozenset({
    "replicate", "append_entries", "install_snapshot", "propose",
})


def role_of(endpoint):
    """Peer-group key of an endpoint address.

    Service endpoints are ``role:pod-name`` (``api:dlaas-api-...``);
    substrate members are ``role-ordinal`` (``mongo-0``, ``etcd-2``).
    """
    if ":" in endpoint:
        return endpoint.split(":", 1)[0]
    return endpoint.rsplit("-", 1)[0]


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_score(value, peers, abs_floor, rel_floor=0.0):
    """How many robust deviations ``value`` sits *above* its peers.

    The 1.4826 factor makes the MAD estimate a normal sigma; the
    clamp at zero means the healthy side of a divergence never scores.
    """
    med = _median(peers)
    mad = _median([abs(p - med) for p in peers])
    scale = max(1.4826 * mad, rel_floor * abs(med), abs_floor)
    return max(0.0, (value - med) / scale)


def _counter_delta(series, start, end):
    """Counter increase across the window, or None without two samples."""
    points = series.window(start, end)
    if len(points) < 2:
        return None
    return counter_increase(points)


class DifferentialDetector:
    """Scores endpoint divergence from role peers; a recording-rule
    expression (``eval(store, now, staleness)`` -> labels -> score).
    """

    def __init__(self, window=8.0, min_count=4, write_methods=WRITE_METHODS,
                 latency_floor=0.002, latency_rel_floor=0.5,
                 error_floor=0.05, flow_floor=0.15):
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1: {min_count}")
        self.window = window
        self.min_count = min_count
        self.write_methods = frozenset(write_methods)
        # Scale floors: absolute seconds / rate fraction below which a
        # difference is noise, and the relative floor that demands a
        # multiple of the peer median before a latency divergence scores.
        self.latency_floor = latency_floor
        self.latency_rel_floor = latency_rel_floor
        self.error_floor = error_floor
        self.flow_floor = flow_floor

    def eval(self, store, now, staleness):
        del staleness  # windowed deltas, not instant samples
        start = now - self.window

        requests = {}  # (endpoint, method) -> [total delta, error delta]
        for series in store.series("rpc_endpoint_requests_total"):
            delta = _counter_delta(series, start, now)
            if not delta:
                continue
            labels = series.labels_dict
            entry = requests.setdefault(
                (labels["endpoint"], labels["method"]), [0.0, 0.0])
            entry[0] += delta
            if labels["code"] != "ok":
                entry[1] += delta

        latency_sums = {}  # (endpoint, method) -> duration-sum delta
        for series in store.series("rpc_endpoint_latency_seconds_total"):
            delta = _counter_delta(series, start, now)
            if delta is None:
                continue
            labels = series.labels_dict
            latency_sums[(labels["endpoint"], labels["method"])] = delta

        means = {}  # (endpoint, method) -> windowed mean latency
        rates = {}  # (endpoint, method) -> windowed error rate
        client_totals = {}  # endpoint -> requests sent to it (all methods)
        for key, (total, errors) in requests.items():
            endpoint = key[0]
            client_totals[endpoint] = client_totals.get(endpoint, 0.0) + total
            if total < self.min_count:
                continue  # too little traffic to judge this endpoint
            rates[key] = errors / total
            duration = latency_sums.get(key)
            if duration is not None:
                means[key] = duration / total

        out = {}

        def publish(endpoint, signal, score):
            # Label tuples are already canonically sorted:
            # component < role < signal.
            labels = (("component", endpoint), ("role", role_of(endpoint)),
                      ("signal", signal))
            if score > out.get(labels, -1.0):
                out[labels] = score

        def score_groups(values, signal_of, abs_floor, rel_floor=0.0):
            groups = {}
            for (endpoint, method), value in values.items():
                groups.setdefault((role_of(endpoint), method),
                                  []).append((endpoint, value))
            for (_role, method), members in groups.items():
                if len(members) < 2:
                    continue  # no peers, no baseline
                signal = signal_of(method)
                for endpoint, value in members:
                    others = [v for e, v in members if e != endpoint]
                    publish(endpoint, signal,
                            robust_score(value, others, abs_floor, rel_floor))

        score_groups(
            means,
            lambda method: ("write_latency" if method in self.write_methods
                            else "latency"),
            self.latency_floor, self.latency_rel_floor)
        score_groups(rates, lambda _method: "link", self.error_floor)

        # Flow anomaly: handled-at-server vs requested-by-clients. An
        # absolute check (no peer group needed) — a healthy endpoint
        # serves each sent request exactly once, so any sustained
        # excess means the link is duplicating deliveries.
        served = {}
        for series in store.series("rpc_server_handled_total"):
            delta = _counter_delta(series, start, now)
            if delta is not None:
                served[series.labels_dict["endpoint"]] = delta
        for endpoint, total in client_totals.items():
            if total < self.min_count:
                continue
            handled = served.get(endpoint)
            if handled is None:
                continue
            excess = max(0.0, handled / total - 1.0)
            publish(endpoint, "link", excess / self.flow_floor)

        return out
