"""Text dashboard: scraped series + active alerts + recent events.

The operator's single-pane view (the simulated Grafana): component
``up`` sparklines over the retained window, key platform gauges,
whatever alerts are pending/firing right now, and the tail of the
platform event log. Pure rendering over the monitoring stack's state.
"""

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width=40, maximum=None):
    """Render values as a block-character strip, ``width`` cells wide."""
    if not values:
        return " " * width
    step = max(1, len(values) // width)
    top = maximum if maximum else max(max(values), 1e-12)
    cells = []
    for i in range(0, len(values), step):
        chunk = values[i:i + step]
        level = (sum(chunk) / len(chunk)) / top
        cells.append(_BLOCKS[max(0, min(8, int(level * 8 + 0.5)))])
    return "".join(cells[:width]).ljust(width)


def render_dashboard(platform, width=40, events_tail=10):
    """The full text dashboard for a platform with monitoring enabled."""
    stack = platform.monitoring
    if stack is None:
        return "monitoring disabled (PlatformConfig(monitoring=False))"
    now = platform.kernel.now
    store = stack.store
    lines = [f"== DLaaS monitoring dashboard @ t={now:.1f}s =="]

    lines.append("")
    lines.append("-- component health (up{component=...}) --")
    up_series = store.series("up")
    if not up_series:
        lines.append("  (no scrapes yet)")
    for series in up_series:
        component = series.labels_dict.get("component", "?")
        current = series.latest_value(now, staleness=3 * stack.scraper.interval)
        state = "UP" if current == 1.0 else ("DOWN" if current == 0.0 else "STALE")
        values = series.values()
        lines.append(f"  {component:<10} {state:<5} [{sparkline(values, width, maximum=1.0)}]")

    gauges = [name for name in ("cluster_gpus_allocated", "scheduler_pending_pods",
                                "monitoring_series") if store.series(name)]
    if gauges:
        lines.append("")
        lines.append("-- platform series --")
        for name in gauges:
            for series in store.series(name):
                values = series.values()
                latest = values[-1] if values else 0.0
                lines.append(f"  {name:<26} {latest:>8g} [{sparkline(values, width)}]")

    gray = store.series("gray_divergence")
    if gray:
        lines.append("")
        lines.append("-- gray divergence (robust score vs role peers) --")
        quiet = 0
        for series in gray:
            labels = series.labels_dict
            values = series.values()
            latest = values[-1] if values else 0.0
            if max(values, default=0.0) < 0.5:
                quiet += 1  # within peer baseline the whole window
                continue
            tag = (f"{labels.get('component', '?')}"
                   f"/{labels.get('signal', '?')}")
            lines.append(
                f"  {tag:<32} {latest:>6.1f} [{sparkline(values, width)}]")
        if quiet:
            lines.append(f"  ({quiet} series within peer baseline)")

    auditor = getattr(stack, "auditor", None)
    if auditor is not None:
        lines.append("")
        lines.append("-- consistency audit (linearizability checker) --")
        checked = store.series("consistency_ops_checked_total")
        for series in checked:
            values = series.values()
            latest = values[-1] if values else 0.0
            lines.append(f"  {'ops checked':<26} {latest:>8g} "
                         f"[{sparkline(values, width)}]")
        if not checked:
            lines.append(f"  ops checked {auditor.ops_checked} "
                         f"over {auditor.passes} passes (not yet scraped)")
        violations = store.series("consistency_violations_total")
        for series in violations:
            key = series.labels_dict.get("key", "?")
            lines.append(f"  VIOLATION {key}")
        if not violations:
            lines.append("  (no violations)")

    lines.append("")
    lines.append("-- alerts --")
    active = sorted(stack.engine.active.values(),
                    key=lambda i: (i["rule"], i["labels"]))
    if not active:
        lines.append("  (none pending or firing)")
    for instance in active:
        labels = ",".join(f"{k}={v}" for k, v in instance["labels"]) or "-"
        lines.append(
            f"  {instance['state'].upper():<8} {instance['rule']:<24} "
            f"{labels:<24} since t={instance['since']:.1f}s")

    lines.append("")
    lines.append(f"-- recent events (last {events_tail}) --")
    events = sorted(platform.events.events(), key=lambda e: e.last_time)
    if not events:
        lines.append("  (none)")
    for event in events[-events_tail:]:
        count = f" x{event.count}" if event.count > 1 else ""
        lines.append(
            f"  [{event.last_time:8.2f}s] {event.type:<7} "
            f"{event.reason:<24} {event.kind}/{event.name}{count} "
            f"{event.message}")
    return "\n".join(lines)
