"""Monitoring subsystem: scrape pipeline, health probes, SLO alerting.

The consumption side of observability (FfDL's monitoring stack, NSML's
automated health monitoring): periodic scrapes of the platform's
metric registry into bounded time series, ``healthz`` probes exposed
as ``up{component=...}``, Kubernetes-style platform events, and a
declarative alert-rule engine walking pending -> firing -> resolved.
"""

from .alerts import (
    AlertEngine,
    AlertRule,
    Condition,
    FIRING,
    INACTIVE,
    Increase,
    Metric,
    PENDING,
    Ratio,
    RecordingRule,
    RESOLVED,
    default_rule_pack,
)
from .dashboard import render_dashboard, sparkline
from .differential import DifferentialDetector, robust_score, role_of
from .health import HealthRegistry, PodGroupProbe, Probe, register_platform_probes
from .scraper import MetricsScraper
from .stack import EventFlusher, MonitoringStack

__all__ = [
    "AlertEngine",
    "AlertRule",
    "Condition",
    "DifferentialDetector",
    "EventFlusher",
    "FIRING",
    "HealthRegistry",
    "INACTIVE",
    "Increase",
    "Metric",
    "MetricsScraper",
    "MonitoringStack",
    "PENDING",
    "PodGroupProbe",
    "Probe",
    "RESOLVED",
    "Ratio",
    "RecordingRule",
    "default_rule_pack",
    "register_platform_probes",
    "render_dashboard",
    "robust_score",
    "role_of",
    "sparkline",
]
