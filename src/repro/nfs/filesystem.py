"""An in-memory POSIX-ish tree shared between containers.

The learner and helper containers of a DL job share one NFS volume
(paper §III.e): learners redirect exit statuses and logs to files, and
the helper's controller reads them. The filesystem state lives on the
server, so it survives any container crash — exactly the property the
paper's failure-detection design depends on.
"""

from .errors import AlreadyExists, IsADirectory, NotADirectory, NotFound


class ChangeSubscription:
    """An inotify-style registration: ``callback(path)`` on change.

    Registered against the *volume*, so it survives container crashes
    on other mounts; holders cancel it when their own container stops
    (the helper controller re-registers after a restart, mirroring how
    it rebuilds all other state from NFS).
    """

    def __init__(self, filesystem, prefix, callback):
        self._filesystem = filesystem
        self.prefix = prefix
        self.callback = callback
        self.active = True

    def cancel(self):
        self.active = False
        self._filesystem._subscriptions.discard(self)


class _File:
    __slots__ = ("content", "mtime")

    def __init__(self, mtime):
        self.content = ""
        self.mtime = mtime


class _Directory:
    __slots__ = ("entries", "mtime")

    def __init__(self, mtime):
        self.entries = {}
        self.mtime = mtime


def _split(path):
    parts = [p for p in path.split("/") if p]
    if not parts and path.strip("/") != "":
        raise NotFound(f"bad path {path!r}")
    return parts


class SharedFilesystem:
    """One NFS volume: a tree of directories and text files."""

    def __init__(self, name="volume", clock=None):
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self._root = _Directory(self._clock())
        self._subscriptions = set()

    # ------------------------------------------------------------------
    # Change notification (inotify analogue)
    # ------------------------------------------------------------------

    def subscribe(self, prefix, callback):
        """Invoke ``callback(path)`` whenever a file under ``prefix``
        is written or deleted; returns a cancellable subscription."""
        subscription = ChangeSubscription(self, prefix, callback)
        self._subscriptions.add(subscription)
        return subscription

    def _notify_change(self, path):
        for subscription in list(self._subscriptions):
            if subscription.active and path.startswith(subscription.prefix):
                subscription.callback(path)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def _lookup(self, path):
        node = self._root
        for part in _split(path):
            if not isinstance(node, _Directory):
                raise NotADirectory(f"{part!r} in {path!r}")
            if part not in node.entries:
                raise NotFound(path)
            node = node.entries[part]
        return node

    def _lookup_dir(self, path, create=False):
        node = self._root
        for part in _split(path):
            if not isinstance(node, _Directory):
                raise NotADirectory(f"{part!r} in {path!r}")
            if part not in node.entries:
                if not create:
                    raise NotFound(path)
                node.entries[part] = _Directory(self._clock())
            node = node.entries[part]
        if not isinstance(node, _Directory):
            raise NotADirectory(path)
        return node

    # ------------------------------------------------------------------
    # Directories
    # ------------------------------------------------------------------

    def mkdir(self, path, parents=True):
        if not parents:
            parent_path, _slash, name = path.rstrip("/").rpartition("/")
            parent = self._lookup_dir(parent_path)
            if name in parent.entries:
                raise AlreadyExists(path)
            parent.entries[name] = _Directory(self._clock())
            return
        self._lookup_dir(path, create=True)

    def listdir(self, path="/"):
        node = self._lookup(path) if _split(path) else self._root
        if not isinstance(node, _Directory):
            raise NotADirectory(path)
        return sorted(node.entries)

    def is_dir(self, path):
        try:
            return isinstance(self._lookup(path), _Directory)
        except (NotFound, NotADirectory):
            return False

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------

    def write_file(self, path, content, append=False):
        parent_path, _slash, name = path.rstrip("/").rpartition("/")
        parent = self._lookup_dir(parent_path, create=True)
        node = parent.entries.get(name)
        if node is None:
            node = _File(self._clock())
            parent.entries[name] = node
        elif isinstance(node, _Directory):
            raise IsADirectory(path)
        if append:
            node.content += content
        else:
            node.content = content
        node.mtime = self._clock()
        self._notify_change(path)

    def append_line(self, path, line):
        self.write_file(path, line.rstrip("\n") + "\n", append=True)

    def read_file(self, path):
        node = self._lookup(path)
        if isinstance(node, _Directory):
            raise IsADirectory(path)
        return node.content

    def read_from(self, path, offset):
        """Tail support: content from ``offset``; '' if nothing new."""
        content = self.read_file(path)
        return content[offset:]

    def exists(self, path):
        try:
            self._lookup(path)
            return True
        except (NotFound, NotADirectory):
            return False

    def size(self, path):
        return len(self.read_file(path))

    def mtime(self, path):
        return self._lookup(path).mtime

    def delete(self, path, recursive=False):
        parent_path, _slash, name = path.rstrip("/").rpartition("/")
        parent = self._lookup_dir(parent_path)
        node = parent.entries.get(name)
        if node is None:
            raise NotFound(path)
        if isinstance(node, _Directory) and node.entries and not recursive:
            raise IsADirectory(f"directory not empty: {path}")
        del parent.entries[name]
        self._notify_change(path)

    def walk(self, path="/"):
        """Yield (dirpath, dirnames, filenames), like ``os.walk``."""
        start = self._lookup_dir(path) if _split(path) else self._root
        stack = [(path.rstrip("/") or "/", start)]
        while stack:
            dirpath, node = stack.pop()
            dirnames = sorted(
                n for n, e in node.entries.items() if isinstance(e, _Directory)
            )
            filenames = sorted(
                n for n, e in node.entries.items() if isinstance(e, _File)
            )
            yield dirpath, dirnames, filenames
            for name in reversed(dirnames):
                child = f"{dirpath}/{name}" if dirpath != "/" else f"/{name}"
                stack.append((child, node.entries[name]))
