"""Shared NFS volumes.

The intra-job communication substrate (paper §III.e): learners and the
helper pod share a volume mounted by the Guardian through a persistent
volume claim; exit statuses, logs and progress files flow through it.
"""

from .errors import (
    AlreadyExists,
    FsError,
    IsADirectory,
    NotADirectory,
    NotFound,
    VolumeNotFound,
)
from .filesystem import SharedFilesystem
from .server import Mount, NfsServer

__all__ = [
    "AlreadyExists",
    "FsError",
    "IsADirectory",
    "Mount",
    "NfsServer",
    "NotADirectory",
    "NotFound",
    "SharedFilesystem",
    "VolumeNotFound",
]
