"""The NFS server: named persistent volumes and mounts.

Volumes outlive every container and pod; a crashed controller rereads
current and previous statuses from NFS after restart (paper §III.f).
Mounts are per-container views; crashing the container invalidates its
mounts, but never the volume.
"""

from .errors import AlreadyExists, FsError, VolumeNotFound
from .filesystem import SharedFilesystem


class Mount:
    """A container's handle on a volume; dies with the container."""

    def __init__(self, server, volume_name, filesystem):
        self._server = server
        self.volume_name = volume_name
        self._filesystem = filesystem
        self.active = True
        self._subscriptions = []

    def _fs(self, op=None):
        if op is not None:
            self._server.record_op(op, ok=self.active and self._server.available)
        if not self.active:
            raise FsError(f"mount of {self.volume_name!r} is stale")
        if not self._server.available:
            raise FsError("NFS server unavailable")
        return self._filesystem

    def unmount(self):
        self.active = False
        subscriptions, self._subscriptions = self._subscriptions, []
        for subscription in subscriptions:
            subscription.cancel()

    def subscribe(self, prefix, callback):
        """Change notifications under ``prefix``; cancelled on unmount."""
        subscription = self._fs().subscribe(prefix, callback)
        self._subscriptions.append(subscription)
        return subscription

    # Delegate the filesystem API through the liveness checks.

    def mkdir(self, path, parents=True):
        return self._fs("mkdir").mkdir(path, parents=parents)

    def listdir(self, path="/"):
        return self._fs("listdir").listdir(path)

    def is_dir(self, path):
        return self._fs("stat").is_dir(path)

    def write_file(self, path, content, append=False):
        return self._fs("write").write_file(path, content, append=append)

    def append_line(self, path, line):
        return self._fs("write").append_line(path, line)

    def read_file(self, path):
        return self._fs("read").read_file(path)

    def read_from(self, path, offset):
        return self._fs("read").read_from(path, offset)

    def exists(self, path):
        return self._fs("stat").exists(path)

    def size(self, path):
        return self._fs("stat").size(path)

    def mtime(self, path):
        return self._fs("stat").mtime(path)

    def delete(self, path, recursive=False):
        return self._fs("delete").delete(path, recursive=recursive)

    def walk(self, path="/"):
        return self._fs("listdir").walk(path)


class NfsServer:
    """Holds the volumes; hands out mounts."""

    def __init__(self, kernel=None, metrics=None, events=None):
        self._clock = (lambda: kernel.now) if kernel is not None else (lambda: 0.0)
        self._volumes = {}
        self.available = True
        self.events = events
        if metrics is not None:
            self._m_ops = metrics.counter(
                "nfs_ops_total", ("op",), help="NFS operations by kind")
            self._m_errors = metrics.counter(
                "nfs_op_errors_total", ("op",),
                help="NFS operations refused (stale mount or outage)")
        else:
            self._m_ops = self._m_errors = None
        self._op_children = {}

    def record_op(self, op, ok=True):
        if self._m_ops is not None:
            pair = self._op_children.get(op)
            if pair is None:
                pair = self._op_children[op] = (
                    self._m_ops.labels(op=op), self._m_errors.labels(op=op))
            pair[0].inc()
            if not ok:
                pair[1].inc()

    def create_volume(self, name, exist_ok=False):
        if name in self._volumes:
            if exist_ok:
                return self._volumes[name]
            raise AlreadyExists(f"volume {name!r}")
        volume = SharedFilesystem(name=name, clock=self._clock)
        self._volumes[name] = volume
        return volume

    def delete_volume(self, name):
        if name not in self._volumes:
            raise VolumeNotFound(name)
        del self._volumes[name]

    def volume(self, name):
        if name not in self._volumes:
            raise VolumeNotFound(name)
        return self._volumes[name]

    def volume_names(self):
        return sorted(self._volumes)

    def mount(self, name):
        return Mount(self, name, self.volume(name))

    def go_down(self):
        """Simulate an NFS outage; mounts raise until :meth:`come_up`."""
        self.available = False
        if self.events is not None:
            self.events.emit_event("Warning", "NfsOutage", "NfsServer", "nfs",
                                   message="shared filesystem unavailable")

    def come_up(self):
        self.available = True
        if self.events is not None:
            self.events.emit_event("Normal", "NfsRestored", "NfsServer", "nfs",
                                   message="shared filesystem back")
