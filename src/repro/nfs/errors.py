"""Errors for the shared filesystem."""


class FsError(Exception):
    """Base class for filesystem errors."""


class NotFound(FsError):
    """Path does not exist."""


class NotADirectory(FsError):
    """Path component is a file where a directory was required."""


class IsADirectory(FsError):
    """File operation attempted on a directory."""


class AlreadyExists(FsError):
    """Exclusive create found an existing entry."""


class VolumeNotFound(FsError):
    """The NFS server has no volume by that name."""
