"""Open-loop synthetic inference traffic.

The generator is *open-loop*: inter-arrival times are drawn from a
Poisson process whose rate follows the profile, independent of how
the platform is coping — an overloaded fleet sees queues grow rather
than arrivals politely slowing down, which is what makes SLO breaches
observable at all (closed-loop load generators famously hide them).

Profiles give ``rate(t)`` in requests/second:

* :class:`ConstantProfile` — flat rate;
* :class:`DiurnalProfile` — sinusoid between base and peak over a
  period, the daily cycle every serving fleet sizes against;
* :class:`BurstProfile` — flat base with a rectangular burst window,
  the flash-crowd case that exercises the autoscaler's reaction time.

All randomness comes from the dedicated ``serving-traffic`` kernel
stream, so traffic never perturbs training-side draws.
"""

import math


class ConstantProfile:
    def __init__(self, rate):
        self.rate_rps = rate

    def rate(self, t):
        return self.rate_rps


class DiurnalProfile:
    """Sinusoidal day: base at t=0, peak half a period later."""

    def __init__(self, base_rate, peak_rate, period=240.0):
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.period = period

    def rate(self, t):
        phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / self.period))
        return self.base_rate + (self.peak_rate - self.base_rate) * phase


class BurstProfile:
    """Flat base rate with one rectangular burst window."""

    def __init__(self, base_rate, burst_rate, burst_start, burst_duration):
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.burst_start = burst_start
        self.burst_duration = burst_duration

    def rate(self, t):
        if self.burst_start <= t < self.burst_start + self.burst_duration:
            return self.burst_rate
        return self.base_rate


class TrafficGenerator:
    """Drives one model's ingress from a profile."""

    def __init__(self, platform, model_id, profile, stream="serving-traffic"):
        self.platform = platform
        self.kernel = platform.kernel
        self.model_id = model_id
        self.profile = profile
        self.rng = self.kernel.rng(stream)
        self.sent = 0

    def run(self, duration):
        """Process generator: emit arrivals for ``duration`` seconds.

        The time origin is the moment the process starts, so a profile's
        ``t`` is relative to traffic start, not platform boot.
        """
        start = self.kernel.now
        end = start + duration
        while True:
            now = self.kernel.now
            if now >= end:
                return self.sent
            rate = self.profile.rate(now - start)
            if rate <= 0:
                # Dead air: step forward without emitting.
                yield self.kernel.sleep(min(1.0, end - now))
                continue
            gap = self.rng.expovariate(rate)
            if now + gap >= end:
                yield self.kernel.sleep(end - now)
                return self.sent
            yield self.kernel.sleep(gap)
            self.platform.serving.dispatch(self.model_id)
            self.sent += 1
