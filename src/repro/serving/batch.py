"""Elastic batch inference (AntBatchInfer-style).

A batch job scores a fixed item count partitioned into *shards*. A
coordinator owns the shard table; stateless workers (pods of an
elastic Deployment) lease shards, renew the lease while scoring, and
report completion. The three dependability properties the design
buys, per the AntBatchInfer paper:

* **crash tolerance without restart** — a worker dying mid-shard
  just lets its lease expire (or releases it in its pod teardown);
  the shard returns to PENDING and another worker picks it up. The
  batch as a whole never restarts.
* **exactly-once completion accounting** — execution is at-least-once
  (a crashed worker's half-scored shard is redone), but the first
  ``complete()`` wins: late duplicates are counted in a metric and
  otherwise ignored, so every shard is DONE exactly once.
* **mid-run elasticity** — ``scale(n)`` just patches the Deployment's
  replica count; joining workers start leasing, surplus workers are
  stopped gracefully and release their shard on the way out.

Shard state machine::

    PENDING --lease--> LEASED --complete--> DONE
       ^                  |
       +---requeue--------+   (lease expiry, worker release)
"""

from ..cluster import ContainerSpec, Deployment, PodSpec, PodTemplate, RESTART_ALWAYS
from ..frameworks import get_framework

SHARD_PENDING = "PENDING"
SHARD_LEASED = "LEASED"
SHARD_DONE = "DONE"


class _Shard:
    __slots__ = ("index", "items", "state", "holder", "lease_expires",
                 "completions")

    def __init__(self, index, items):
        self.index = index
        self.items = items
        self.state = SHARD_PENDING
        self.holder = None
        self.lease_expires = None
        self.completions = 0


class BatchCoordinator:
    """The shard table plus lease bookkeeping for one batch job."""

    def __init__(self, platform, batch_id, manifest):
        self.platform = platform
        self.kernel = platform.kernel
        self.batch_id = batch_id
        self.manifest = manifest
        config = platform.config
        self.lease_timeout = config.batchinfer_lease_timeout
        self.shards = []
        remaining = manifest.items
        index = 0
        while remaining > 0:
            take = min(manifest.shard_size, remaining)
            self.shards.append(_Shard(index, take))
            remaining -= take
            index += 1
        self.started_at = self.kernel.now
        self.last_completion = self.kernel.now
        self.completed = 0
        self.requeues = 0
        self.duplicates = 0
        self._waiters = []
        metrics = platform.metrics
        self._m_completed = metrics.counter(
            "batchinfer_shards_completed_total", ("batch",),
            help="Shards completed (exactly once each)")
        self._m_requeues = metrics.counter(
            "batchinfer_shard_requeues_total", ("batch",),
            help="Shards returned to PENDING after a lease was lost")
        self._m_duplicates = metrics.counter(
            "batchinfer_duplicate_completions_total", ("batch",),
            help="Late completions of already-DONE shards (ignored)")
        self._g_stalled = metrics.gauge(
            "batchinfer_stalled_seconds", ("batch",),
            help="Seconds since the last shard completion while work remains")

    # ------------------------------------------------------------------
    # Worker-facing surface
    # ------------------------------------------------------------------

    @property
    def done(self):
        return self.completed == len(self.shards)

    def lease(self, worker):
        """Claim the first PENDING shard, or None when nothing is free."""
        for shard in self.shards:
            if shard.state == SHARD_PENDING:
                shard.state = SHARD_LEASED
                shard.holder = worker
                shard.lease_expires = self.kernel.now + self.lease_timeout
                return shard
        return None

    def renew(self, shard, worker):
        if shard.state == SHARD_LEASED and shard.holder == worker:
            shard.lease_expires = self.kernel.now + self.lease_timeout

    def complete(self, shard, worker):
        """First completion wins; duplicates are accounted, not applied."""
        shard.completions += 1
        if shard.state == SHARD_DONE:
            self.duplicates += 1
            self._m_duplicates.labels(batch=self.batch_id).inc()
            return False
        shard.state = SHARD_DONE
        shard.holder = None
        self.completed += 1
        self.last_completion = self.kernel.now
        self._m_completed.labels(batch=self.batch_id).inc()
        if self.done:
            self._g_stalled.labels(batch=self.batch_id).set(0.0)
            self.platform.events.emit_event(
                "Normal", "BatchInferCompleted", "BatchInfer", self.batch_id,
                message=f"{len(self.shards)} shards done "
                        f"({self.requeues} requeues, "
                        f"{self.duplicates} duplicate completions)")
            self._wake_all()
        return True

    def release(self, worker):
        """Pod teardown fast path: requeue the worker's LEASED shards
        immediately instead of waiting out the lease clock."""
        for shard in self.shards:
            if shard.state == SHARD_LEASED and shard.holder == worker:
                self._requeue(shard, f"worker {worker} gone")

    def wait_for_work(self):
        """Event triggered on the next requeue or batch completion."""
        event = self.kernel.event(f"batch-work:{self.batch_id}")
        self._waiters.append(event)
        return event

    # ------------------------------------------------------------------
    # Monitoring (driven by the job's monitor process)
    # ------------------------------------------------------------------

    def expire_leases(self):
        now = self.kernel.now
        expired = 0
        for shard in self.shards:
            if shard.state == SHARD_LEASED and shard.lease_expires <= now:
                self._requeue(shard, f"lease expired on {shard.holder}")
                expired += 1
        stalled = 0.0 if self.done else now - max(self.last_completion,
                                                  self.started_at)
        self._g_stalled.labels(batch=self.batch_id).set(stalled)
        return expired

    def _requeue(self, shard, why):
        shard.state = SHARD_PENDING
        shard.holder = None
        shard.lease_expires = None
        self.requeues += 1
        self._m_requeues.labels(batch=self.batch_id).inc()
        self.platform.events.emit_event(
            "Warning", "BatchShardRequeued", "BatchInfer", self.batch_id,
            message=f"shard {shard.index} requeued: {why}")
        self._wake_all()

    def _wake_all(self):
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()


def make_batch_worker_workload(platform, coordinator):
    """One worker pod: lease/score/complete until the table is drained.

    The lease is renewed every ``batchinfer_renew_interval`` of scoring
    time, so a healthy worker never expires mid-shard while a crashed
    one expires within one lease timeout.
    """
    manifest = coordinator.manifest
    renew_interval = platform.config.batchinfer_renew_interval

    def workload(ctx):
        kernel = ctx.kernel
        worker = ctx.pod.metadata.name
        yield kernel.sleep(platform.config.serving_replica_init_time)
        try:
            while not ctx.stop_event.triggered:
                shard = coordinator.lease(worker)
                if shard is None:
                    if coordinator.done:
                        break
                    # Everything is leased elsewhere; wake on requeue.
                    yield kernel.any_of([ctx.stop_event,
                                         coordinator.wait_for_work()])
                    continue
                remaining = shard.items * manifest.item_time
                while remaining > 0:
                    step = min(renew_interval, remaining)
                    yield kernel.sleep(step)
                    remaining -= step
                    coordinator.renew(shard, worker)
                coordinator.complete(shard, worker)
        finally:
            coordinator.release(worker)
        # Drained: idle gracefully until the Deployment is torn down
        # (RESTART_ALWAYS would otherwise respawn a busy-looping pod).
        if not ctx.stop_event.triggered:
            yield ctx.stop_event
        return 0

    return workload


class BatchInferJob:
    """Library-level driver for one elastic batch-inference run."""

    def __init__(self, platform, batch_id, manifest):
        if platform.serving is None:
            raise RuntimeError("batch inference needs PlatformConfig(serving=True)")
        self.platform = platform
        self.kernel = platform.kernel
        self.batch_id = batch_id
        self.manifest = manifest
        self.coordinator = BatchCoordinator(platform, batch_id, manifest)
        self.deployment_name = f"batchinfer-{batch_id}"
        self._monitor_proc = None

    def start(self):
        platform = self.platform
        manifest = self.manifest
        coordinator = self.coordinator

        def spec_factory():
            return PodSpec(
                containers=[ContainerSpec(
                    "scorer", get_framework(manifest.framework).image,
                    workload=make_batch_worker_workload(platform, coordinator),
                    gpus=manifest.gpus_per_worker,
                    cpu_millicores=manifest.cpu_millicores,
                    memory_mb=manifest.memory_mb,
                )],
                restart_policy=RESTART_ALWAYS,
                node_selector={"pool": "gpu"},
                gpu_type=manifest.gpu_type,
                priority=manifest.priority,
            )

        platform.k8s.api.create(Deployment(
            self.deployment_name,
            PodTemplate(spec_factory, labels={"dlaas-batch": self.batch_id,
                                              "role": "batch-worker"}),
            replicas=manifest.workers,
            labels={"dlaas-batch": self.batch_id},
        ))
        self._monitor_proc = self.kernel.spawn(
            self._monitor(), name=f"batch-monitor:{self.batch_id}")
        return self

    def _monitor(self):
        interval = self.platform.config.batchinfer_monitor_interval
        while not self.coordinator.done:
            self.coordinator.expire_leases()
            yield self.kernel.sleep(interval)
        self.coordinator.expire_leases()  # final gauge reset

    def scale(self, workers):
        """Mid-run elasticity: patch the worker Deployment in place."""
        workers = max(1, min(workers, self.manifest.max_workers))
        api = self.platform.k8s.api
        deployment = api.get_or_none("Deployment", self.deployment_name)
        if deployment is not None and deployment.replicas != workers:
            deployment.replicas = workers
            api.update(deployment)
        return workers

    def wait(self, timeout=100_000.0, poll=1.0):
        """Process generator: block until every shard is DONE, then
        tear the worker Deployment down. Returns the summary."""
        deadline = self.kernel.now + timeout
        while not self.coordinator.done:
            if self.kernel.now >= deadline:
                raise TimeoutError(
                    f"batch {self.batch_id}: "
                    f"{self.coordinator.completed}/{len(self.coordinator.shards)} "
                    f"shards after {timeout}s")
            yield self.kernel.sleep(poll)
        api = self.platform.k8s.api
        deployment = api.get_or_none("Deployment", self.deployment_name)
        if deployment is not None and not deployment.deletion_requested:
            deployment.deletion_requested = True
            api.update(deployment)
        return self.summary()

    def summary(self):
        coordinator = self.coordinator
        return {
            "batch_id": self.batch_id,
            "shards": len(coordinator.shards),
            "completed": coordinator.completed,
            "requeues": coordinator.requeues,
            "duplicates": coordinator.duplicates,
            "makespan_s": self.kernel.now - coordinator.started_at,
            "max_completions_per_shard": max(
                s.completions for s in coordinator.shards),
        }
