"""Elastic inference serving: the second workload class (ROADMAP item 2).

Long-running inference Deployments with an SLO-driven replica
autoscaler sharing the GPU pool with training, plus AntBatchInfer-
style elastic batch inference. Everything is gated behind
``PlatformConfig(serving=True)``: with the flag off none of this is
constructed and the simulated training timeline is bit-identical to a
tree without the subsystem.
"""

from .autoscaler import ServingAutoscaler, plan_scaling
from .batch import (
    BatchCoordinator,
    BatchInferJob,
    SHARD_DONE,
    SHARD_LEASED,
    SHARD_PENDING,
    make_batch_worker_workload,
)
from .manifest import BatchInferManifest, ServingManifest
from .manager import (
    MODEL_ACTIVE,
    MODEL_DELETED,
    MODEL_DELETING,
    ServingManager,
    deployment_name,
)
from .replica import make_replica_workload
from .runtime import ReplicaHandle, ServingRuntime
from .traffic import (
    BurstProfile,
    ConstantProfile,
    DiurnalProfile,
    TrafficGenerator,
)

__all__ = [
    "BatchCoordinator",
    "BatchInferJob",
    "BatchInferManifest",
    "BurstProfile",
    "ConstantProfile",
    "DiurnalProfile",
    "MODEL_ACTIVE",
    "MODEL_DELETED",
    "MODEL_DELETING",
    "ReplicaHandle",
    "SHARD_DONE",
    "SHARD_LEASED",
    "SHARD_PENDING",
    "ServingAutoscaler",
    "ServingManager",
    "ServingManifest",
    "ServingRuntime",
    "TrafficGenerator",
    "deployment_name",
    "make_batch_worker_workload",
    "make_replica_workload",
    "plan_scaling",
]
