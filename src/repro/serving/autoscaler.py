"""SLO-driven replica autoscaling (distinct from the node-level
``ClusterAutoscaler``).

The node autoscaler provisions *machines* from unschedulable demand;
this one sets *replica counts* per model from user-visible signals —
window p99 latency and queue depth, never utilization — because the
SLO is what tenants buy. Policy:

* scale **up** (by half the fleet, at least one) when the p99 over the
  runtime's rolling window exceeds the manifest's ``slo_p99`` or the
  queue holds more than ``serving_queue_high`` requests per replica;
* scale **down** (by one) only when p99 sits below half the SLO and
  the queue is nearly drained — and no scale-up happened recently;
* both directions respect the manifest's ``[min, max]`` bounds and a
  per-direction cooldown, so one burst cannot thrash the Deployment.

Every decision is written to MongoDB *before* the Deployment is
patched: desired state is durable first (the same write-ahead
discipline the API applies to submissions), so a manager crash
between the write and the patch is healed by the next reconcile.
``plan_scaling`` is a pure function of the observed stats, unit-tested
in isolation from the platform.
"""


def plan_scaling(*, replicas, p99, queue_depth, manifest, now,
                 last_scale_up, last_scale_down, queue_high,
                 up_cooldown, down_cooldown):
    """Return the new desired replica count, or ``None`` to hold."""
    breach = ((p99 is not None and p99 > manifest.slo_p99)
              or queue_depth > queue_high * max(replicas, 1))
    if breach:
        if replicas >= manifest.max_replicas:
            return None
        if now - last_scale_up < up_cooldown:
            return None
        step = max(1, (replicas + 1) // 2)
        return min(manifest.max_replicas, replicas + step)
    calm = ((p99 is None or p99 < 0.5 * manifest.slo_p99)
            and queue_depth <= max(replicas, 1))
    if calm and replicas > manifest.min_replicas:
        if now - last_scale_down < down_cooldown \
                or now - last_scale_up < down_cooldown:
            return None
        return replicas - 1
    return None


class ServingAutoscaler:
    """Periodic per-model evaluation loop inside the manager pod."""

    def __init__(self, manager):
        self.manager = manager
        self.platform = manager.platform
        self.kernel = manager.kernel
        config = self.platform.config
        self.interval = config.serving_autoscale_interval
        self.queue_high = config.serving_queue_high
        self.up_cooldown = config.serving_scale_up_cooldown
        self.down_cooldown = config.serving_scale_down_cooldown
        # Cooldown clocks are in-memory only: a manager restart resets
        # them, which at worst re-permits one early scaling step.
        self._last_up = {}
        self._last_down = {}
        self.running = False
        self._proc = None
        metrics = self.platform.metrics
        self._m_scale = metrics.counter(
            "serving_scale_events_total", ("model", "direction"),
            help="Autoscaler replica-count changes")
        self._g_breach = metrics.gauge(
            "serving_slo_breach", ("model",),
            help="Window p99 over the model SLO (ratio; >1 is a breach)")

    def start(self):
        if self.running:
            return self
        self.running = True
        self._proc = self.kernel.spawn(self._loop(),
                                       name=f"serving-autoscaler:{self.manager.address}")
        return self

    def stop(self):
        self.running = False
        if self._proc is not None:
            self._proc.kill("serving autoscaler stopped")
            self._proc = None
        return self

    def _loop(self):
        while self.running:
            yield from self.evaluate_once()
            yield self.kernel.sleep(self.interval)

    def evaluate_once(self):
        runtime = self.platform.serving
        for model_id in runtime.model_ids():
            manifest = runtime.manifest_of(model_id)
            if manifest is None:
                continue
            stats = runtime.stats(model_id)
            p99 = stats["window_p99"]
            self._g_breach.labels(model=model_id).set(
                0.0 if p99 is None else p99 / manifest.slo_p99)
            doc = yield from self.manager.mongo.find_one(
                "models", {"model_id": model_id, "status": "ACTIVE"},
                projection=["replicas"])
            if doc is None:
                continue
            replicas = doc.get("replicas", manifest.min_replicas)
            now = self.kernel.now
            target = plan_scaling(
                replicas=replicas, p99=p99,
                queue_depth=stats["queue_depth"], manifest=manifest,
                now=now,
                last_scale_up=self._last_up.get(model_id, float("-inf")),
                last_scale_down=self._last_down.get(model_id, float("-inf")),
                queue_high=self.queue_high,
                up_cooldown=self.up_cooldown,
                down_cooldown=self.down_cooldown)
            if target is None or target == replicas:
                continue
            yield from self._apply(model_id, replicas, target, p99, stats)

    def _apply(self, model_id, replicas, target, p99, stats):
        direction = "up" if target > replicas else "down"
        # Durable intent first; actuation second. The reconciler resync
        # replays the Deployment patch if we crash in between.
        matched, _modified = yield from self.manager.mongo.update_one(
            "models", {"model_id": model_id, "status": "ACTIVE"},
            {"$set": {"replicas": target}})
        if not matched:
            return  # deleted underneath us
        if direction == "up":
            self._last_up[model_id] = self.kernel.now
        else:
            self._last_down[model_id] = self.kernel.now
        self._m_scale.labels(model=model_id, direction=direction).inc()
        self.platform.events.emit_event(
            "Normal", "ServingScaleUp" if direction == "up" else "ServingScaleDown",
            "Model", model_id,
            message=f"{replicas} -> {target} replicas "
                    f"(p99 {p99 if p99 is not None else 'n/a'}, "
                    f"queue {stats['queue_depth']})")
        yield from self.manager.reconcile_model(model_id)
