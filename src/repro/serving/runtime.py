"""The serving data plane: request routing, queues, latency accounting.

Platform-owned (one :class:`ServingRuntime` per platform, constructed
when ``PlatformConfig(serving=True)``), so it plays the role of the
service mesh in front of the inference Deployments: the traffic
generator dispatches requests into it, replica pods register and pull
batches out of it, and latency is measured arrival-to-completion —
queue wait plus service time.

Because the runtime outlives any individual pod, a crashed replica
never loses requests: its queue is redistributed to the surviving
replicas (or parked in the per-model backlog until one registers).
The ServingManager, by contrast, keeps *no* state here it cannot
rebuild from MongoDB — the split mirrors the LCM's design.

All operations are plain in-process bookkeeping on the kernel clock —
no RPCs, no RNG draws — so observation paths (API reads, the
autoscaler's stats pass) cannot perturb the simulated timeline.
"""

from collections import deque


class ReplicaHandle:
    """One registered replica's inbound queue, owned by its workload."""

    __slots__ = ("name", "queue", "_kernel", "_waiter")

    def __init__(self, kernel, name):
        self._kernel = kernel
        self.name = name
        self.queue = deque()  # arrival timestamps, FIFO
        self._waiter = None

    def notify(self):
        if self._waiter is not None and not self._waiter.triggered:
            self._waiter.succeed()
        self._waiter = None

    def wait_event(self):
        """A fresh event the replica parks on while its queue is empty."""
        self._waiter = self._kernel.event(f"serving-arrival:{self.name}")
        return self._waiter

    def take(self, limit):
        """Pop up to ``limit`` queued arrivals (one forward pass)."""
        batch = []
        while self.queue and len(batch) < limit:
            batch.append(self.queue.popleft())
        return batch


class _ModelState:
    __slots__ = ("model_id", "manifest", "replicas", "backlog", "window",
                 "requests", "completed", "slo_ok", "redispatched")

    def __init__(self, model_id):
        self.model_id = model_id
        self.manifest = None
        self.replicas = {}  # name -> ReplicaHandle, insertion-ordered
        self.backlog = deque()  # arrivals with no replica to route to
        self.window = deque()  # (completion_time, latency) for stats()
        self.requests = 0
        self.completed = 0
        self.slo_ok = 0
        self.redispatched = 0

    def queue_depth(self):
        return len(self.backlog) + sum(len(r.queue) for r in
                                       self.replicas.values())


class ServingRuntime:
    """Routers, queues and rolling stats for every registered model."""

    def __init__(self, kernel, metrics, events, latency_window=30.0):
        self.kernel = kernel
        self.events = events
        self.latency_window = latency_window
        self._models = {}
        self._m_requests = metrics.counter(
            "serving_requests_total", ("model",),
            help="Inference requests dispatched per model")
        self._m_completed = metrics.counter(
            "serving_completed_total", ("model",),
            help="Inference requests completed per model")
        self._m_queue = metrics.gauge(
            "serving_queue_depth", ("model",),
            help="Requests queued (replica queues + unrouted backlog)")
        self._m_replicas = metrics.gauge(
            "serving_replicas", ("model",),
            help="Registered (ready) replicas per model")
        self._m_latency = metrics.histogram(
            "serving_request_latency_seconds", ("model",),
            help="Arrival-to-completion inference latency")
        self._m_redispatched = metrics.counter(
            "serving_redispatched_total", ("model",),
            help="Queued requests re-routed off a departing replica")

    # ------------------------------------------------------------------
    # Model registry
    # ------------------------------------------------------------------

    def _state(self, model_id):
        state = self._models.get(model_id)
        if state is None:
            state = self._models[model_id] = _ModelState(model_id)
        return state

    def ensure_model(self, model_id, manifest):
        """Idempotently (re)attach a manifest; survives manager restarts."""
        self._state(model_id).manifest = manifest

    def remove_model(self, model_id):
        self._models.pop(model_id, None)

    def model_ids(self):
        return list(self._models)

    def manifest_of(self, model_id):
        state = self._models.get(model_id)
        return state.manifest if state is not None else None

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def dispatch(self, model_id, count=1):
        """Accept ``count`` requests arriving now (open-loop ingress)."""
        state = self._state(model_id)
        now = self.kernel.now
        state.requests += count
        self._m_requests.labels(model=model_id).inc(count)
        for _ in range(count):
            replica = self._least_loaded(state)
            if replica is None:
                state.backlog.append(now)
            else:
                replica.queue.append(now)
                replica.notify()
        self._m_queue.labels(model=model_id).set(state.queue_depth())

    @staticmethod
    def _least_loaded(state):
        best = None
        for replica in state.replicas.values():
            if best is None or len(replica.queue) < len(best.queue):
                best = replica
        return best

    def register_replica(self, model_id, name):
        state = self._state(model_id)
        handle = ReplicaHandle(self.kernel, name)
        state.replicas[name] = handle
        # Drain the unrouted backlog across the (now non-empty) fleet.
        while state.backlog:
            target = self._least_loaded(state)
            target.queue.append(state.backlog.popleft())
            target.notify()
        self._m_replicas.labels(model=model_id).set(len(state.replicas))
        self._m_queue.labels(model=model_id).set(state.queue_depth())
        return handle

    def deregister_replica(self, model_id, handle):
        state = self._models.get(model_id)
        if state is None or state.replicas.get(handle.name) is not handle:
            return
        del state.replicas[handle.name]
        moved = len(handle.queue)
        while handle.queue:
            arrival = handle.queue.popleft()
            target = self._least_loaded(state)
            if target is None:
                state.backlog.append(arrival)
            else:
                target.queue.append(arrival)
                target.notify()
        if moved:
            state.redispatched += moved
            self._m_redispatched.labels(model=model_id).inc(moved)
        self._m_replicas.labels(model=model_id).set(len(state.replicas))
        self._m_queue.labels(model=model_id).set(state.queue_depth())

    def replica_count(self, model_id):
        state = self._models.get(model_id)
        return len(state.replicas) if state is not None else 0

    def take_batch(self, model_id, handle, limit):
        batch = handle.take(limit)
        state = self._models.get(model_id)
        if state is not None:
            self._m_queue.labels(model=model_id).set(state.queue_depth())
        return batch

    def complete(self, model_id, arrivals):
        """Record one served batch; latency is measured per request."""
        state = self._state(model_id)
        now = self.kernel.now
        slo = state.manifest.slo_p99 if state.manifest is not None else None
        histogram = self._m_latency.labels(model=model_id)
        for arrival in arrivals:
            latency = now - arrival
            histogram.observe(latency)
            state.window.append((now, latency))
            state.completed += 1
            if slo is None or latency <= slo:
                state.slo_ok += 1
        self._m_completed.labels(model=model_id).inc(len(arrivals))

    # ------------------------------------------------------------------
    # Stats (read by the autoscaler, the API and benchmarks)
    # ------------------------------------------------------------------

    def stats(self, model_id):
        state = self._state(model_id)
        now = self.kernel.now
        horizon = now - self.latency_window
        window = state.window
        while window and window[0][0] < horizon:
            window.popleft()
        p99 = None
        if window:
            latencies = sorted(latency for _t, latency in window)
            p99 = latencies[min(len(latencies) - 1,
                                int(0.99 * (len(latencies) - 1) + 0.5))]
        return {
            "model_id": model_id,
            "replicas": len(state.replicas),
            "queue_depth": state.queue_depth(),
            "requests": state.requests,
            "completed": state.completed,
            "slo_ok": state.slo_ok,
            "redispatched": state.redispatched,
            "window_p99": p99,
            "window_samples": len(window),
        }

    def slo_attainment(self, model_id):
        """Fraction of completed requests that met the model's SLO."""
        state = self._state(model_id)
        if state.completed == 0:
            return None
        return state.slo_ok / state.completed
