"""The inference-replica pod workload.

One replica = one container in a pod owned by the model's Deployment
(``serving-<model_id>``). After an init delay (model load, weight
download) it registers into the platform's :class:`ServingRuntime`,
then loops: pull up to ``max_batch`` queued requests, spend one
forward pass of simulated service time, report completions. Service
time follows the manifest's linear model (base + per-item) with
multiplicative jitter from the dedicated ``serving-service`` RNG
stream, so serving never perturbs the training streams.

Graceful scale-down triggers the pod's stop event; a crash kills the
generator outright. Either way the ``finally`` deregisters the
replica, and the runtime re-routes whatever was still queued — a
dying replica drops no requests.
"""


def make_replica_workload(platform, model_id, manifest):
    def workload(ctx):
        kernel = ctx.kernel
        runtime = platform.serving
        rng = kernel.rng("serving-service")
        jitter = platform.config.serving_service_jitter
        yield kernel.sleep(platform.config.serving_replica_init_time)
        handle = runtime.register_replica(model_id, ctx.pod.metadata.name)
        platform.events.emit_event(
            "Normal", "ComponentReady", "Pod", ctx.pod.metadata.name,
            message=f"serving replica for {model_id} ready")
        try:
            while not ctx.stop_event.triggered:
                if not handle.queue:
                    yield kernel.any_of([ctx.stop_event, handle.wait_event()])
                    if ctx.stop_event.triggered:
                        break
                batch = runtime.take_batch(model_id, handle, manifest.max_batch)
                if not batch:
                    continue
                service = (manifest.base_service_time
                           + manifest.per_item_time * len(batch))
                if jitter:
                    service *= 1.0 + jitter * rng.random()
                yield kernel.sleep(service)
                runtime.complete(model_id, batch)
        finally:
            runtime.deregister_replica(model_id, handle)
        return 0

    return workload
