"""The ServingManager: the LCM of the serving workload class.

Reconciles the durable model registry (the ``models`` MongoDB
collection, written by the API before any acknowledgement) against
Kubernetes state: an ACTIVE model gets a Deployment named
``serving-<model_id>`` with the desired replica count; a DELETING
model has its Deployment torn down and is then marked DELETED.

Like the LCM it keeps no in-memory state it cannot rebuild: desired
replica counts live in MongoDB (the autoscaler writes them there
*before* actuating), and the reconciler relists on every resync, so a
manager crash/restart — or a notify RPC lost to a network fault —
delays convergence by at most one resync interval.
"""

from ..cluster import ContainerSpec, Deployment, PodSpec, PodTemplate, RESTART_ALWAYS
from ..frameworks import get_framework
from ..grpcnet import Server
from ..sim import Reconciler, WatchSource
from .autoscaler import ServingAutoscaler
from .manifest import ServingManifest
from .replica import make_replica_workload

MODEL_ACTIVE = "ACTIVE"
MODEL_DELETING = "DELETING"
MODEL_DELETED = "DELETED"


def deployment_name(model_id):
    return f"serving-{model_id}"


class ServingManager:
    """One manager instance (runs inside a dlaas-serving pod)."""

    def __init__(self, platform, address):
        self.platform = platform
        self.kernel = platform.kernel
        self.address = address
        self.mongo = platform.mongo_client(address, tracer=platform.tracer)
        self.server = Server(self.kernel, platform.network, address)
        self.server.add_method("reconcile_model", self._on_reconcile_model)

    # ------------------------------------------------------------------
    # RPC handlers (the API's best-effort notify path)
    # ------------------------------------------------------------------

    def _on_reconcile_model(self, request):
        yield from self.reconcile_model(request["model_id"])
        return {"ok": True}

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------

    def reconcile_model(self, model_id):
        doc = yield from self.mongo.find_one("models", {"model_id": model_id})
        if doc is None:
            return
        api = self.platform.k8s.api
        name = deployment_name(model_id)
        deployment = api.get_or_none("Deployment", name)

        if doc["status"] == MODEL_DELETING:
            if deployment is not None:
                if not deployment.deletion_requested:
                    deployment.deletion_requested = True
                    api.update(deployment)
                return  # pods still draining; the resync re-checks
            self.platform.serving.remove_model(model_id)
            yield from self.mongo.update_one(
                "models", {"model_id": model_id, "status": MODEL_DELETING},
                {"$set": {"status": MODEL_DELETED,
                          "deleted_at": self.kernel.now}})
            self.platform.events.emit_event(
                "Normal", "ServingModelDeleted", "Model", model_id,
                message=f"deployment {name} torn down")
            return

        if doc["status"] != MODEL_ACTIVE:
            return
        manifest = ServingManifest.from_dict(doc["manifest"])
        self.platform.serving.ensure_model(model_id, manifest)
        desired = doc.get("replicas", manifest.min_replicas)
        if deployment is None:
            deployment = Deployment(
                name,
                PodTemplate(self._spec_factory(model_id, manifest),
                            labels={"dlaas-serving": model_id,
                                    "role": "serving-replica"}),
                replicas=desired,
                labels={"dlaas-serving": model_id},
            )
            api.create(deployment)
            self.platform.tracer.emit("serving", "model-deployed",
                                      model=model_id)
            self.platform.events.emit_event(
                "Normal", "ServingModelCreated", "Model", model_id,
                message=f"deployment {name} created with {desired} replicas")
        elif deployment.replicas != desired:
            deployment.replicas = desired
            api.update(deployment)

    def _spec_factory(self, model_id, manifest):
        platform = self.platform

        def spec_factory():
            return PodSpec(
                containers=[ContainerSpec(
                    "replica", get_framework(manifest.framework).image,
                    workload=make_replica_workload(platform, model_id,
                                                   manifest),
                    gpus=manifest.gpus_per_replica,
                    cpu_millicores=manifest.cpu_millicores,
                    memory_mb=manifest.memory_mb,
                )],
                restart_policy=RESTART_ALWAYS,
                node_selector={"pool": "gpu"},
                gpu_type=manifest.gpu_type,
                priority=manifest.priority,
            )

        return spec_factory

    # ------------------------------------------------------------------
    # Reconciler + autoscaler (started/stopped by the pod workload)
    # ------------------------------------------------------------------

    def make_reconciler(self):
        """Level-triggered resync over the durable model registry.

        MongoDB has no change stream in the simulation, so (exactly
        like the LCM's deploy reconciler) the API's notify RPC is the
        event path and the resync relist is the safety net that covers
        lost notifies and manager restarts.
        """

        def list_models():
            docs = yield from self.mongo.find(
                "models", {}, projection=["model_id", "status"])
            return [d["model_id"] for d in docs
                    if d["status"] != MODEL_DELETED]

        reconciler = Reconciler(
            self.kernel, f"serving:{self.address}",
            self.reconcile_model,
            resync_interval=self.platform.config.serving_reconcile_interval,
            rewatch_delay=self.platform.config.watch_retry_delay,
            tracer=self.platform.tracer,
            metrics=self.platform.metrics,
        )
        reconciler.add_source(WatchSource("mongo-models",
                                          list_keys=list_models))
        reconciler.queue.backoff_base = \
            self.platform.config.reconciler_backoff_base
        reconciler.queue.backoff_max = \
            self.platform.config.reconciler_backoff_max
        return reconciler

    def make_autoscaler(self):
        return ServingAutoscaler(self)
