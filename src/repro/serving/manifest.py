"""Serving manifests: what users register and what batch jobs score.

A *serving model* is the second workload class next to training (FfDL
ships both side by side): a long-running inference Deployment with an
SLO, replica bounds for the autoscaler, and a service-time model the
replicas sample from. A *batch inference job* (AntBatchInfer-style)
scores a fixed item count, partitioned into shards that elastic
workers lease and complete.

Validation mirrors :class:`repro.core.manifest.TrainingManifest`: all
problems are collected and raised at once as ``InvalidManifest``.
"""

from dataclasses import dataclass

from ..core.errors import InvalidManifest
from ..frameworks import FRAMEWORKS, GPU_CATALOGUE, MODEL_ZOO


def _check_number(raw, problems, key, default, minimum=0.0,
                  exclusive=True):
    value = raw.get(key, default)
    if not isinstance(value, (int, float)) or (
            value <= minimum if exclusive else value < minimum):
        bound = ">" if exclusive else ">="
        problems.append(f"{key}: must be a number {bound} {minimum:g}")
        return default
    return float(value)


def _check_int(raw, problems, key, default, minimum, maximum=None):
    value = raw.get(key, default)
    if not isinstance(value, int) or value < minimum \
            or (maximum is not None and value > maximum):
        upper = f", {maximum}]" if maximum is not None else ")"
        problems.append(f"{key}: must be an integer in [{minimum}{upper}"
                        if maximum is not None else
                        f"{key}: must be an integer >= {minimum}")
        return default
    return value


def _check_common(raw, problems):
    """Fields shared by serving and batch manifests."""
    name = raw.get("name")
    if not name or not isinstance(name, str):
        problems.append("name: required string")

    framework = str(raw.get("framework", "")).lower()
    if framework not in FRAMEWORKS:
        problems.append(
            f"framework: {framework!r} not supported; have {sorted(FRAMEWORKS)}")

    model = str(raw.get("model", "")).lower()
    if model not in MODEL_ZOO:
        problems.append(f"model: {model!r} unknown; have {sorted(MODEL_ZOO)}")

    gpu_type = str(raw.get("gpu_type", "")).lower()
    if gpu_type not in GPU_CATALOGUE:
        problems.append(
            f"gpu_type: {gpu_type!r} unknown; have {sorted(GPU_CATALOGUE)}")
    return name, framework, model, gpu_type


@dataclass
class ServingManifest:
    """A validated inference-Deployment specification."""

    name: str
    framework: str
    model: str
    gpu_type: str
    gpus_per_replica: int = 1
    min_replicas: int = 1
    max_replicas: int = 4
    slo_p99: float = 0.25  # seconds; the autoscaler's target
    max_batch: int = 8  # requests a replica serves per forward pass
    priority: int = 50  # serving outranks default-priority training
    base_service_time: float = 0.02  # per-pass fixed cost, seconds
    per_item_time: float = 0.005  # marginal cost per batched request
    memory_mb: int = 4096
    cpu_millicores: int = 2000

    @classmethod
    def from_dict(cls, raw):
        if not isinstance(raw, dict):
            raise InvalidManifest("manifest must be an object")
        problems = []
        name, framework, model, gpu_type = _check_common(raw, problems)

        gpus = _check_int(raw, problems, "gpus_per_replica", 1, 1, 8)
        min_replicas = _check_int(raw, problems, "min_replicas", 1, 1)
        max_replicas = _check_int(raw, problems, "max_replicas",
                                  max(4, min_replicas), 1)
        if max_replicas < min_replicas:
            problems.append("max_replicas: must be >= min_replicas")
        slo_p99 = _check_number(raw, problems, "slo_p99", 0.25)
        max_batch = _check_int(raw, problems, "max_batch", 8, 1)
        priority = _check_int(raw, problems, "priority", 50, 0, 100)
        base = _check_number(raw, problems, "base_service_time", 0.02)
        per_item = _check_number(raw, problems, "per_item_time", 0.005)

        if problems:
            raise InvalidManifest(problems)
        return cls(
            name=name,
            framework=framework,
            model=model,
            gpu_type=gpu_type,
            gpus_per_replica=gpus,
            min_replicas=min_replicas,
            max_replicas=max_replicas,
            slo_p99=slo_p99,
            max_batch=max_batch,
            priority=priority,
            base_service_time=base,
            per_item_time=per_item,
            memory_mb=int(raw.get("memory_mb", 4096)),
            cpu_millicores=int(raw.get("cpu_millicores", 2000)),
        )

    def to_dict(self):
        return {
            "name": self.name,
            "framework": self.framework,
            "model": self.model,
            "gpu_type": self.gpu_type,
            "gpus_per_replica": self.gpus_per_replica,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "slo_p99": self.slo_p99,
            "max_batch": self.max_batch,
            "priority": self.priority,
            "base_service_time": self.base_service_time,
            "per_item_time": self.per_item_time,
            "memory_mb": self.memory_mb,
            "cpu_millicores": self.cpu_millicores,
        }


@dataclass
class BatchInferManifest:
    """A validated elastic batch-inference job specification."""

    name: str
    framework: str
    model: str
    gpu_type: str
    items: int
    shard_size: int = 100
    workers: int = 2
    max_workers: int = 8
    gpus_per_worker: int = 1
    item_time: float = 0.01  # seconds of GPU time per scored item
    priority: int = 0  # batch inference is preemptible, like training
    memory_mb: int = 4096
    cpu_millicores: int = 2000

    @classmethod
    def from_dict(cls, raw):
        if not isinstance(raw, dict):
            raise InvalidManifest("manifest must be an object")
        problems = []
        name, framework, model, gpu_type = _check_common(raw, problems)

        items = raw.get("items")
        if not isinstance(items, int) or items < 1:
            problems.append("items: required integer >= 1")
            items = 1
        shard_size = _check_int(raw, problems, "shard_size", 100, 1)
        workers = _check_int(raw, problems, "workers", 2, 1)
        max_workers = _check_int(raw, problems, "max_workers",
                                 max(8, workers), 1)
        if max_workers < workers:
            problems.append("max_workers: must be >= workers")
        gpus = _check_int(raw, problems, "gpus_per_worker", 1, 1, 8)
        item_time = _check_number(raw, problems, "item_time", 0.01)
        priority = _check_int(raw, problems, "priority", 0, 0, 100)

        if problems:
            raise InvalidManifest(problems)
        return cls(
            name=name,
            framework=framework,
            model=model,
            gpu_type=gpu_type,
            items=items,
            shard_size=shard_size,
            workers=workers,
            max_workers=max_workers,
            gpus_per_worker=gpus,
            item_time=item_time,
            priority=priority,
            memory_mb=int(raw.get("memory_mb", 4096)),
            cpu_millicores=int(raw.get("cpu_millicores", 2000)),
        )

    @property
    def shard_count(self):
        return (self.items + self.shard_size - 1) // self.shard_size
