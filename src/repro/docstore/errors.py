"""Errors for the document store."""


class DocstoreError(Exception):
    """Base class for document-store errors."""


class DuplicateKeyError(DocstoreError):
    """Insert/update violated a unique index."""

    def __init__(self, index, value):
        super().__init__(f"duplicate value {value!r} for unique index {index!r}")
        self.index = index
        self.value = value


class InvalidQuery(DocstoreError):
    """Malformed filter document."""


class InvalidUpdate(DocstoreError):
    """Malformed update document."""


class NoPrimary(DocstoreError):
    """The replica set has no primary to accept writes."""
