"""Named databases of named collections."""

from .collection import Collection


class Database:
    """A namespace of collections, created on first access.

    ``use_planner=False`` propagates to every collection, replaying
    pre-index full-scan behavior for equivalence tests.
    """

    def __init__(self, name, use_planner=True):
        self.name = name
        self.use_planner = use_planner
        self._collections = {}

    def collection(self, name):
        coll = self._collections.get(name)
        if coll is None:
            coll = Collection(f"{self.name}.{name}", use_planner=self.use_planner)
            self._collections[name] = coll
        return coll

    def __getitem__(self, name):
        return self.collection(name)

    def collection_names(self):
        return sorted(self._collections)

    def drop_collection(self, name):
        self._collections.pop(name, None)

    def clone(self, new_name=None):
        """Deep copy of every collection (replica state transfer)."""
        copy = Database(new_name or self.name, use_planner=self.use_planner)
        for name, coll in self._collections.items():
            target = copy.collection(name)
            for field in coll._unique_indexes:
                target.create_index(field, unique=True)
            for field in coll._indexes:
                target.create_index(field)
            for doc in coll._iter_docs():
                target.insert_one(doc)
        return copy

    def document_count(self):
        return sum(len(coll) for coll in self._collections.values())
