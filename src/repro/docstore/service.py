"""MongoDB as a service: replica set over the RPC fabric.

DLaaS stores all job metadata in MongoDB *before* acknowledging a
submission (paper §III.c), so metadata durability matters. The replica
set here is deliberately simple compared to the Raft store: a fixed
member list, writes accepted by the primary and synchronously copied to
a majority of live secondaries, and failover to the lowest-id live
member — enough to exercise the durability path without duplicating the
consensus machinery already built in :mod:`repro.raftkv`.
"""

from ..grpcnet import Server
from ..grpcnet.errors import RpcError, ServiceError
from .database import Database
from .errors import NoPrimary


class MongoMember:
    """One replica-set member: a Database behind an RPC server."""

    def __init__(self, kernel, network, member_id, replica_set, service_time=0.0005,
                 fast_path=True):
        self.kernel = kernel
        self.member_id = member_id
        self.replica_set = replica_set
        # Fast path: reads return uncopied documents (copy=False) and
        # the RPC server deep-copies the response once at the send
        # boundary — one copy per query instead of one per read plus
        # implicit sharing per hop. False restores per-read copying for
        # the equivalence tests.
        self.fast_path = fast_path
        self.database = Database(member_id, use_planner=fast_path)
        self.alive = False
        self.syncing = False
        # Gray fault: seconds every write op hangs in "fsync" before it
        # succeeds. Reads are untouched and the member stays alive, so
        # health probes keep passing while writes through this member
        # silently slow down. 0.0 (healthy) adds no sleeps at all.
        self.disk_stall = 0.0
        self.server = Server(kernel, network, member_id, service_time=service_time,
                             copy_responses=fast_path)
        self.server.add_method("command", self._on_command)
        self.server.add_method("replicate", self._on_replicate)
        self.server.add_method("is_primary", lambda _r: {"primary": self.is_primary})

    @property
    def is_primary(self):
        return self.alive and self.replica_set.primary_id() == self.member_id

    def start(self):
        if not self.alive:
            self.alive = True
            self.server.start()
            if self.replica_set.events is not None:
                self.replica_set.events.emit_event(
                    "Normal", "MongoMemberUp", "MongoMember", self.member_id,
                    message="member serving")
        return self

    def crash(self, lose_data=False):
        """Stop the member; ``lose_data`` models disk loss, not just crash."""
        if self.alive:
            self.alive = False
            self.server.stop()
            if self.replica_set.events is not None:
                self.replica_set.events.emit_event(
                    "Warning", "MongoMemberDown", "MongoMember", self.member_id,
                    message="data lost" if lose_data else "member crashed")
        if lose_data:
            self.database = Database(self.member_id, use_planner=self.fast_path)
        return self

    def restart(self, sync_base_time=0.2, sync_per_doc=0.0005):
        """Rejoin the set: state-transfer from the primary, then serve.

        A crashed member's data is stale — it missed every write made
        while it was down. Serving (or worse, becoming primary) with
        stale data would diverge the set, so the member first performs
        an initial sync: after a transfer delay it takes a consistent
        copy of the current primary's database at a single simulated
        instant, and only then comes up. With no live primary to sync
        from, it comes up as-is (it IS the freshest data available).
        """
        if self.alive or self.syncing:
            return self
        primary = self.replica_set.primary()
        if primary is None or primary is self:
            return self.start()
        self.syncing = True
        delay = sync_base_time + sync_per_doc * primary.database.document_count()
        self.kernel.spawn(self._initial_sync(delay), name=f"{self.member_id}:sync")
        return self

    def _initial_sync(self, delay):
        yield self.kernel.sleep(delay)
        self.syncing = False
        source = self.replica_set.primary()
        if source is not None and source is not self:
            # Copy + go-live in the same instant: no write can land
            # between the consistent copy and this member serving.
            self.database = source.database.clone(new_name=self.member_id)
        self.start()

    # ------------------------------------------------------------------

    def _execute(self, request):
        coll = self.database.collection(request["collection"])
        op = request["op"]
        # Read ops are marked copy-elided: the server's send-boundary
        # copy is the single serialization point (reads never yield
        # between the lookup and the response, so no write can slip in
        # between the two).
        reads_copy = not self.fast_path
        if op == "insert_one":
            return {"inserted_id": coll.insert_one(request["document"])}
        if op == "find_one":
            return {"document": coll.find_one(request.get("query"),
                                              projection=request.get("projection"),
                                              copy=reads_copy)}
        if op == "find":
            return {
                "documents": coll.find(
                    request.get("query"),
                    sort=request.get("sort"),
                    limit=request.get("limit"),
                    skip=request.get("skip", 0),
                    projection=request.get("projection"),
                    copy=reads_copy,
                )
            }
        if op == "update_one":
            matched, modified = coll.update_one(
                request["query"], request["update"], upsert=request.get("upsert", False)
            )
            return {"matched": matched, "modified": modified}
        if op == "update_many":
            matched, modified = coll.update_many(request["query"], request["update"])
            return {"matched": matched, "modified": modified}
        if op == "find_one_and_update":
            return {
                "document": coll.find_one_and_update(
                    request["query"], request["update"],
                    return_new=request.get("return_new", True),
                    copy=reads_copy,
                )
            }
        if op == "delete_one":
            return {"deleted": coll.delete_one(request["query"])}
        if op == "delete_many":
            return {"deleted": coll.delete_many(request["query"])}
        if op == "count":
            return {"count": coll.count_documents(request.get("query"))}
        if op == "aggregate":
            return {"documents": coll.aggregate(request["pipeline"])}
        if op == "create_index":
            coll.create_index(request["field"], unique=request.get("unique", False))
            return {"ok": True}
        raise ValueError(f"unknown docstore op {op!r}")

    _WRITE_OPS = frozenset({
        "insert_one", "update_one", "update_many", "find_one_and_update",
        "delete_one", "delete_many", "create_index",
    })

    def _on_command(self, request):
        if not self.is_primary:
            raise NoPrimary(f"{self.member_id} is not primary")
        if self.disk_stall and request["op"] in self._WRITE_OPS:
            yield self.kernel.sleep(self.disk_stall)
        result = self._execute(request)
        if request["op"] in self._WRITE_OPS:
            yield from self.replica_set.fan_out(self.member_id, request)
        return result

    def _on_replicate(self, request):
        # Secondaries apply the primary's write stream verbatim. (A
        # generator that yields nothing when disk_stall is 0, so the
        # healthy replication timeline is untouched.)
        if self.disk_stall and request["op"] in self._WRITE_OPS:
            yield self.kernel.sleep(self.disk_stall)
        return self._execute(request)


class MongoReplicaSet:
    """A fixed-membership replica set with majority write concern."""

    def __init__(self, kernel, network, size=3, prefix="mongo",
                 service_time=0.0005, events=None, fast_path=True):
        if size < 1:
            raise ValueError("replica set size must be >= 1")
        self.kernel = kernel
        self.network = network
        self.events = events
        self.members = {}
        for i in range(size):
            member_id = f"{prefix}-{i}"
            self.members[member_id] = MongoMember(
                kernel, network, member_id, self, service_time=service_time,
                fast_path=fast_path,
            )

    def start(self):
        for member in self.members.values():
            member.start()
        return self

    @property
    def member_ids(self):
        return list(self.members)

    def member(self, member_id):
        return self.members[member_id]

    def primary_id(self):
        """Lowest-id live member acts as primary (deterministic failover)."""
        live = [m for m in self.members.values() if m.alive]
        if not live:
            return None
        return min(m.member_id for m in live)

    def primary(self):
        primary_id = self.primary_id()
        return self.members[primary_id] if primary_id else None

    def fan_out(self, primary_id, request):
        """Primary-side synchronous replication to live secondaries.

        Requires acks from a majority of the *configured* set (counting
        the primary), the condition under which a write survives any
        single-member loss.
        """
        needed = len(self.members) // 2 + 1
        acks = 1  # the primary itself
        for member_id, member in self.members.items():
            if member_id == primary_id or not member.alive:
                continue
            try:
                yield self.network.call(member_id, "replicate", request,
                                        deadline=0.25, caller=primary_id)
                acks += 1
            except RpcError:
                continue
        if acks < needed:
            raise NoPrimary(
                f"write not durable: {acks}/{needed} acks in replica set"
            )
        return acks


class MongoClient:
    """Client facade; finds the primary and retries across failover.

    All methods are process generators — call with ``yield from``.
    """

    def __init__(self, kernel, network, replica_set, caller="mongo-client",
                 max_attempts=40, retry_delay=0.05, tracer=None):
        self.kernel = kernel
        self.network = network
        self.replica_set = replica_set
        self.caller = caller
        self.max_attempts = max_attempts
        self.retry_delay = retry_delay
        self.tracer = tracer

    def _command(self, request, ctx=None):
        span = None
        if self.tracer is not None and ctx is not None:
            span = self.tracer.start_span(
                f"mongo.{request['op']}", component=self.caller, parent=ctx,
                collection=request.get("collection"))
        last_error = None
        try:
            for attempt in range(self.max_attempts):
                if attempt:
                    yield self.kernel.sleep(self.retry_delay)
                for member_id in self.replica_set.member_ids:
                    try:
                        response = yield self.network.call(
                            member_id, "command", request, deadline=0.5,
                            caller=self.caller
                        )
                        if span is not None:
                            span.end("ok")
                        return response
                    except ServiceError as exc:
                        if isinstance(exc.cause, NoPrimary):
                            last_error = exc.cause
                            continue
                        raise
                    except RpcError as exc:
                        last_error = exc
                        continue
            raise NoPrimary(
                f"no primary after {self.max_attempts} attempts: {last_error!r}")
        except BaseException:
            if span is not None:
                span.end("error")
            raise

    # Convenience wrappers -------------------------------------------------

    def insert_one(self, collection, document, ctx=None):
        response = yield from self._command(
            {"op": "insert_one", "collection": collection, "document": document},
            ctx=ctx,
        )
        return response["inserted_id"]

    def find_one(self, collection, query=None, projection=None, ctx=None):
        response = yield from self._command(
            {"op": "find_one", "collection": collection, "query": query or {},
             "projection": projection},
            ctx=ctx,
        )
        return response["document"]

    def find(self, collection, query=None, sort=None, limit=None, skip=0,
             projection=None, ctx=None):
        response = yield from self._command({
            "op": "find", "collection": collection, "query": query or {},
            "sort": sort, "limit": limit, "skip": skip,
            "projection": projection,
        }, ctx=ctx)
        return response["documents"]

    def update_one(self, collection, query, update, upsert=False, ctx=None):
        response = yield from self._command({
            "op": "update_one", "collection": collection,
            "query": query, "update": update, "upsert": upsert,
        }, ctx=ctx)
        return response["matched"], response["modified"]

    def find_one_and_update(self, collection, query, update, return_new=True,
                            ctx=None):
        response = yield from self._command({
            "op": "find_one_and_update", "collection": collection,
            "query": query, "update": update, "return_new": return_new,
        }, ctx=ctx)
        return response["document"]

    def delete_many(self, collection, query):
        response = yield from self._command(
            {"op": "delete_many", "collection": collection, "query": query}
        )
        return response["deleted"]

    def count(self, collection, query=None):
        response = yield from self._command(
            {"op": "count", "collection": collection, "query": query or {}}
        )
        return response["count"]

    def aggregate(self, collection, pipeline):
        response = yield from self._command(
            {"op": "aggregate", "collection": collection, "pipeline": pipeline}
        )
        return response["documents"]

    def create_index(self, collection, field, unique=False):
        yield from self._command({
            "op": "create_index", "collection": collection,
            "field": field, "unique": unique,
        })
