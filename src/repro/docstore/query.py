"""Mongo-style query filter evaluation.

Supports the operator subset the platform (and its tests) rely on:
``$eq $ne $gt $gte $lt $lte $in $nin $exists $regex $not $and $or $nor``
plus dotted-path field access and implicit equality.
"""

import re

from .errors import InvalidQuery

_MISSING = object()


def get_path(document, path):
    """Resolve a dotted path; returns ``_MISSING`` when absent."""
    current = document
    for part in path.split("."):
        if isinstance(current, dict):
            if part not in current:
                return _MISSING
            current = current[part]
        elif isinstance(current, list):
            try:
                index = int(part)
            except ValueError:
                return _MISSING
            if not 0 <= index < len(current):
                return _MISSING
            current = current[index]
        else:
            return _MISSING
    return current


def _compare(op, actual, expected):
    if op in ("$gt", "$gte", "$lt", "$lte"):
        if actual is _MISSING or actual is None:
            return False
        try:
            if op == "$gt":
                return actual > expected
            if op == "$gte":
                return actual >= expected
            if op == "$lt":
                return actual < expected
            return actual <= expected
        except TypeError:
            return False
    raise InvalidQuery(f"unknown comparison {op!r}")


def _match_operators(actual, operators, path):
    for op, operand in operators.items():
        if op == "$eq":
            if not _values_equal(actual, operand):
                return False
        elif op == "$ne":
            if _values_equal(actual, operand):
                return False
        elif op in ("$gt", "$gte", "$lt", "$lte"):
            if not _compare(op, actual, operand):
                return False
        elif op == "$in":
            if not isinstance(operand, (list, tuple)):
                raise InvalidQuery(f"$in needs a list at {path!r}")
            if not any(_values_equal(actual, candidate) for candidate in operand):
                return False
        elif op == "$nin":
            if not isinstance(operand, (list, tuple)):
                raise InvalidQuery(f"$nin needs a list at {path!r}")
            if any(_values_equal(actual, candidate) for candidate in operand):
                return False
        elif op == "$exists":
            if bool(operand) != (actual is not _MISSING):
                return False
        elif op == "$regex":
            if actual is _MISSING or not isinstance(actual, str):
                return False
            if re.search(operand, actual) is None:
                return False
        elif op == "$not":
            if not isinstance(operand, dict):
                raise InvalidQuery(f"$not needs an operator document at {path!r}")
            if _match_operators(actual, operand, path):
                return False
        else:
            raise InvalidQuery(f"unknown operator {op!r} at {path!r}")
    return True


def _values_equal(actual, expected):
    if actual is _MISSING:
        return expected is None
    if isinstance(actual, list) and not isinstance(expected, list):
        # Mongo array-contains semantics.
        return any(_values_equal(item, expected) for item in actual)
    return actual == expected


def _is_operator_doc(value):
    return isinstance(value, dict) and value and all(k.startswith("$") for k in value)


def matches(document, query):
    """True if ``document`` satisfies the Mongo-style ``query``."""
    if not isinstance(query, dict):
        raise InvalidQuery(f"query must be a dict, got {type(query).__name__}")
    for key, condition in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$nor":
            if any(matches(document, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise InvalidQuery(f"unknown top-level operator {key!r}")
        else:
            actual = get_path(document, key)
            if _is_operator_doc(condition):
                if not _match_operators(actual, condition, key):
                    return False
            else:
                if not _values_equal(actual, condition):
                    return False
    return True
