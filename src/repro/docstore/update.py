"""Mongo-style update application.

Supports ``$set $unset $inc $min $max $push $pull $addToSet $rename``
with dotted paths, and whole-document replacement. Updates mutate a
*copy* — collections own their stored documents.
"""

from .errors import InvalidUpdate

_OPERATORS = frozenset(
    {"$set", "$unset", "$inc", "$min", "$max", "$push", "$pull", "$addToSet", "$rename"}
)


def is_update_document(update):
    """True for operator-style updates, False for replacements."""
    if not isinstance(update, dict):
        raise InvalidUpdate(f"update must be a dict, got {type(update).__name__}")
    has_ops = any(key.startswith("$") for key in update)
    if has_ops and not all(key.startswith("$") for key in update):
        raise InvalidUpdate("cannot mix operators and plain fields in one update")
    return has_ops


def _walk_to_parent(document, path, create=True):
    parts = path.split(".")
    current = document
    for part in parts[:-1]:
        if not isinstance(current, dict):
            raise InvalidUpdate(f"cannot descend into non-document at {part!r} of {path!r}")
        if part not in current:
            if not create:
                return None, parts[-1]
            current[part] = {}
        current = current[part]
    if not isinstance(current, dict):
        raise InvalidUpdate(f"cannot set field on non-document at {path!r}")
    return current, parts[-1]


def apply_update(document, update):
    """Return a new document with ``update`` applied."""
    if not is_update_document(update):
        replacement = dict(update)
        if "_id" in document:
            replacement.setdefault("_id", document["_id"])
            if replacement["_id"] != document["_id"]:
                raise InvalidUpdate("cannot change _id in a replacement")
        return replacement

    result = _deep_copy(document)
    for op, fields in update.items():
        if op not in _OPERATORS:
            raise InvalidUpdate(f"unknown update operator {op!r}")
        if not isinstance(fields, dict):
            raise InvalidUpdate(f"{op} needs a field document")
        for path, operand in fields.items():
            if path == "_id" or path.startswith("_id."):
                raise InvalidUpdate("cannot update _id")
            _apply_field(result, op, path, operand)
    return result


def _apply_field(document, op, path, operand):
    if op == "$unset":
        parent, leaf = _walk_to_parent(document, path, create=False)
        if parent is not None:
            parent.pop(leaf, None)
        return
    if op == "$rename":
        parent, leaf = _walk_to_parent(document, path, create=False)
        if parent is None or leaf not in parent:
            return
        value = parent.pop(leaf)
        new_parent, new_leaf = _walk_to_parent(document, operand, create=True)
        new_parent[new_leaf] = value
        return

    parent, leaf = _walk_to_parent(document, path, create=True)
    current = parent.get(leaf)

    if op == "$set":
        parent[leaf] = _deep_copy(operand)
    elif op == "$inc":
        if current is None:
            parent[leaf] = operand
        elif isinstance(current, (int, float)) and not isinstance(current, bool):
            parent[leaf] = current + operand
        else:
            raise InvalidUpdate(f"$inc on non-numeric field {path!r}")
    elif op == "$min":
        if current is None or operand < current:
            parent[leaf] = operand
    elif op == "$max":
        if current is None or operand > current:
            parent[leaf] = operand
    elif op == "$push":
        if current is None:
            parent[leaf] = [_deep_copy(operand)]
        elif isinstance(current, list):
            current.append(_deep_copy(operand))
        else:
            raise InvalidUpdate(f"$push on non-array field {path!r}")
    elif op == "$pull":
        if current is None:
            return
        if not isinstance(current, list):
            raise InvalidUpdate(f"$pull on non-array field {path!r}")
        parent[leaf] = [item for item in current if item != operand]
    elif op == "$addToSet":
        if current is None:
            parent[leaf] = [_deep_copy(operand)]
        elif isinstance(current, list):
            if operand not in current:
                current.append(_deep_copy(operand))
        else:
            raise InvalidUpdate(f"$addToSet on non-array field {path!r}")


def _deep_copy(value):
    if isinstance(value, dict):
        return {k: _deep_copy(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_deep_copy(v) for v in value]
    return value
