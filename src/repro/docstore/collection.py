"""A document collection: CRUD, queries, sort/limit, unique indexes."""

from .errors import DuplicateKeyError, InvalidQuery
from .objectid import ObjectId
from .query import _MISSING, get_path, matches
from .update import _deep_copy, apply_update


class Collection:
    """An ordered bag of documents keyed by ``_id``.

    Documents are deep-copied at the API boundary in both directions, so
    callers can never mutate stored state behind the store's back — the
    property a real out-of-process database gives you.
    """

    def __init__(self, name):
        self.name = name
        self._documents = {}
        self._insertion_order = []
        self._unique_indexes = {}

    def __len__(self):
        return len(self._documents)

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def create_index(self, field, unique=False):
        """Create an index on ``field``; only unique indexes have teeth.

        (Query planning is linear scan regardless — collections here
        hold thousands of documents, not billions.)
        """
        if not unique:
            return
        seen = {}
        for doc in self._iter_docs():
            value = get_path(doc, field)
            if value is _MISSING:
                continue
            marker = self._index_key(value)
            if marker in seen:
                raise DuplicateKeyError(field, value)
            seen[marker] = doc["_id"]
        self._unique_indexes[field] = seen

    @staticmethod
    def _index_key(value):
        if isinstance(value, list):
            return ("list", tuple(value))
        if isinstance(value, dict):
            return ("dict", tuple(sorted(value.items())))
        return value

    def _check_unique(self, doc, ignore_id=None):
        for field, seen in self._unique_indexes.items():
            value = get_path(doc, field)
            if value is _MISSING:
                continue
            holder = seen.get(self._index_key(value))
            if holder is not None and holder != ignore_id:
                raise DuplicateKeyError(field, value)

    def _index_doc(self, doc):
        for field, seen in self._unique_indexes.items():
            value = get_path(doc, field)
            if value is not _MISSING:
                seen[self._index_key(value)] = doc["_id"]

    def _unindex_doc(self, doc):
        for field, seen in self._unique_indexes.items():
            value = get_path(doc, field)
            if value is not _MISSING:
                seen.pop(self._index_key(value), None)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert_one(self, document):
        doc = _deep_copy(document)
        doc.setdefault("_id", ObjectId())
        if doc["_id"] in self._documents:
            raise DuplicateKeyError("_id", doc["_id"])
        self._check_unique(doc)
        self._documents[doc["_id"]] = doc
        self._insertion_order.append(doc["_id"])
        self._index_doc(doc)
        return doc["_id"]

    def insert_many(self, documents):
        return [self.insert_one(doc) for doc in documents]

    def update_one(self, query, update, upsert=False):
        """Update the first match; returns (matched, modified)."""
        doc = self._find_first(query)
        if doc is None:
            if upsert:
                seed = {k: v for k, v in query.items() if not k.startswith("$")
                        and not isinstance(v, dict)}
                self.insert_one(apply_update(seed, update))
                return (0, 1)
            return (0, 0)
        return (1, self._apply_to(doc, update))

    def update_many(self, query, update):
        docs = [d for d in self._iter_docs() if matches(d, query)]
        modified = sum(self._apply_to(doc, update) for doc in docs)
        return (len(docs), modified)

    def replace_one(self, query, replacement, upsert=False):
        return self.update_one(query, replacement, upsert=upsert)

    def _apply_to(self, doc, update):
        new_doc = apply_update(doc, update)
        if new_doc == doc:
            return 0
        self._check_unique(new_doc, ignore_id=doc["_id"])
        self._unindex_doc(doc)
        self._documents[doc["_id"]] = new_doc
        self._index_doc(new_doc)
        return 1

    def find_one_and_update(self, query, update, return_new=True):
        """Atomic read-modify-write; returns the doc (new or old) or None."""
        doc = self._find_first(query)
        if doc is None:
            return None
        before = _deep_copy(doc)
        self._apply_to(doc, update)
        after = self._documents[doc["_id"]]
        return _deep_copy(after if return_new else before)

    def delete_one(self, query):
        doc = self._find_first(query)
        if doc is None:
            return 0
        self._remove(doc)
        return 1

    def delete_many(self, query):
        docs = [d for d in self._iter_docs() if matches(d, query)]
        for doc in docs:
            self._remove(doc)
        return len(docs)

    def _remove(self, doc):
        del self._documents[doc["_id"]]
        self._insertion_order.remove(doc["_id"])
        self._unindex_doc(doc)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _iter_docs(self):
        for doc_id in self._insertion_order:
            yield self._documents[doc_id]

    def _find_first(self, query):
        for doc in self._iter_docs():
            if matches(doc, query):
                return doc
        return None

    def find_one(self, query=None):
        doc = self._find_first(query or {})
        return _deep_copy(doc) if doc is not None else None

    def find(self, query=None, sort=None, limit=None, skip=0, projection=None):
        """Matching documents as copies, optionally sorted/limited.

        ``sort`` is a list of ``(field, direction)`` with direction 1 or
        -1; ``projection`` is a list of field names to keep (plus _id).
        """
        query = query or {}
        out = [doc for doc in self._iter_docs() if matches(doc, query)]
        if sort:
            for field, direction in reversed(sort):
                if direction not in (1, -1):
                    raise InvalidQuery(f"sort direction must be 1 or -1: {direction}")
                out.sort(
                    key=lambda d: ((v := get_path(d, field)) is _MISSING, v is None, v),
                    reverse=direction == -1,
                )
        if skip:
            out = out[skip:]
        if limit is not None:
            out = out[:limit]
        if projection is not None:
            keep = set(projection) | {"_id"}
            out = [{k: v for k, v in doc.items() if k in keep} for doc in out]
        return [_deep_copy(doc) for doc in out]

    def count_documents(self, query=None):
        query = query or {}
        return sum(1 for doc in self._iter_docs() if matches(doc, query))

    def aggregate(self, pipeline):
        """Run a Mongo-style aggregation pipeline over this collection."""
        from .aggregate import aggregate

        return aggregate(list(self._iter_docs()), pipeline)

    def distinct(self, field, query=None):
        query = query or {}
        seen = []
        for doc in self._iter_docs():
            if matches(doc, query):
                value = get_path(doc, field)
                if value is not _MISSING and value not in seen:
                    seen.append(value)
        return seen
