"""A document collection: CRUD, queries, sort/limit, and indexes.

Indexes come in two flavors. *Unique* indexes enforce a constraint and
double as point-lookup accelerators. *Secondary* (non-unique) indexes,
created with ``create_index(field)``, are equality indexes used by a
small query planner: a top-level ``{field: scalar}`` (or ``{"$eq": v}``)
condition on an indexed field narrows the scan to the index bucket for
that value, in insertion order, and every candidate is re-checked with
``matches()`` so operator semantics (array-contains, missing≡None) stay
exactly those of the full scan — the planner changes *where the
candidates come from*, never *which documents match* or their order.

Mongo quirks the index design must honor:

- a query for ``None`` matches documents where the field is missing, so
  missing fields are indexed under the ``None`` bucket;
- a scalar query value matches documents whose field is a *list
  containing* that value, so documents with unhashable (list/dict)
  values go into a per-index overflow set that is unioned into every
  candidate set.
"""

from .errors import DuplicateKeyError, InvalidQuery
from .objectid import ObjectId
from .query import _MISSING, get_path, matches
from .update import _deep_copy, apply_update


class _FieldIndex:
    """Equality index for one field: value → {doc_id}, plus an overflow
    set of doc ids whose value is unhashable (list/dict)."""

    __slots__ = ("buckets", "overflow")

    def __init__(self):
        self.buckets = {}
        self.overflow = {}

    def add(self, doc_id, value):
        if value is _MISSING:
            value = None  # a query for None matches missing fields
        try:
            bucket = self.buckets.get(value)
            if bucket is None:
                bucket = self.buckets[value] = {}
            bucket[doc_id] = None
        except TypeError:
            self.overflow[doc_id] = None

    def remove(self, doc_id, value):
        if value is _MISSING:
            value = None
        try:
            bucket = self.buckets.get(value)
        except TypeError:
            self.overflow.pop(doc_id, None)
            return
        if bucket is not None:
            bucket.pop(doc_id, None)
            if not bucket:
                del self.buckets[value]


class Collection:
    """An ordered bag of documents keyed by ``_id``.

    By default documents are deep-copied at the API boundary in both
    directions, so callers can never mutate stored state behind the
    store's back — the property a real out-of-process database gives
    you. Read methods accept ``copy=False`` for callers that guarantee
    the copy happens elsewhere (the RPC service layer copies responses
    once at the send boundary instead of once per read *and* per hop).
    """

    def __init__(self, name, use_planner=True):
        self.name = name
        self._documents = {}
        self._unique_indexes = {}
        # Count of list/dict values per unique index: when non-zero the
        # point lookup can miss array-contains matches, so it is skipped.
        self._unique_nonscalar = {}
        self._indexes = {}
        # Monotone per-document sequence, assigned at insert: candidate
        # ids from an index are sorted by it to reproduce scan order.
        self._seqs = {}
        self._seq_counter = 0
        # False replays pre-index behavior (full scans) bit-for-bit for
        # the timeline-equivalence tests.
        self.use_planner = use_planner

    def __len__(self):
        return len(self._documents)

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def create_index(self, field, unique=False):
        """Create an index on ``field``.

        Unique indexes enforce the constraint (and serve point lookups);
        non-unique indexes feed the equality query planner.
        """
        if not unique:
            index = _FieldIndex()
            for doc in self._documents.values():
                index.add(doc["_id"], get_path(doc, field))
            self._indexes[field] = index
            return
        seen = {}
        nonscalar = 0
        for doc in self._documents.values():
            value = get_path(doc, field)
            if value is _MISSING:
                continue
            marker = self._index_key(value)
            if marker in seen:
                raise DuplicateKeyError(field, value)
            seen[marker] = doc["_id"]
            nonscalar += isinstance(value, (list, dict))
        self._unique_indexes[field] = seen
        self._unique_nonscalar[field] = nonscalar

    @staticmethod
    def _index_key(value):
        if isinstance(value, list):
            return ("list", tuple(value))
        if isinstance(value, dict):
            return ("dict", tuple(sorted(value.items())))
        return value

    def _check_unique(self, doc, ignore_id=None):
        for field, seen in self._unique_indexes.items():
            value = get_path(doc, field)
            if value is _MISSING:
                continue
            holder = seen.get(self._index_key(value))
            if holder is not None and holder != ignore_id:
                raise DuplicateKeyError(field, value)

    def _index_doc(self, doc):
        doc_id = doc["_id"]
        for field, seen in self._unique_indexes.items():
            value = get_path(doc, field)
            if value is not _MISSING:
                seen[self._index_key(value)] = doc_id
                if isinstance(value, (list, dict)):
                    self._unique_nonscalar[field] += 1
        for field, index in self._indexes.items():
            index.add(doc_id, get_path(doc, field))

    def _unindex_doc(self, doc):
        doc_id = doc["_id"]
        for field, seen in self._unique_indexes.items():
            value = get_path(doc, field)
            if value is not _MISSING:
                seen.pop(self._index_key(value), None)
                if isinstance(value, (list, dict)):
                    self._unique_nonscalar[field] -= 1
        for field, index in self._indexes.items():
            index.remove(doc_id, get_path(doc, field))

    # ------------------------------------------------------------------
    # Query planning
    # ------------------------------------------------------------------

    def _candidate_ids(self, query):
        """Doc ids a planner-eligible query could match, in insertion
        order — or None when no index applies (full scan).

        Candidates are a superset of the true matches; callers re-filter
        with ``matches()``.
        """
        best = None
        best_size = None
        for field, condition in query.items():
            if field.startswith("$"):
                continue
            if isinstance(condition, dict):
                if len(condition) == 1 and "$eq" in condition:
                    value = condition["$eq"]
                else:
                    continue  # operator doc: not a point lookup
            else:
                value = condition
            nonscalar = isinstance(value, (list, dict))
            if not nonscalar and value is not None:
                seen = self._unique_indexes.get(field)
                if seen is not None and not self._unique_nonscalar.get(field):
                    try:
                        holder = seen.get(value)
                    except TypeError:
                        holder = None
                    return [holder] if holder is not None else []
            index = self._indexes.get(field)
            if index is None:
                continue
            if nonscalar:
                bucket = None  # list/dict values only ever live in overflow
            else:
                try:
                    bucket = index.buckets.get(value)
                except TypeError:
                    continue
            size = (len(bucket) if bucket else 0) + len(index.overflow)
            if best_size is None or size < best_size:
                best_size = size
                best = (bucket, index.overflow)
        if best is None:
            return None
        bucket, overflow = best
        ids = list(bucket) if bucket else []
        if overflow:
            ids.extend(overflow)
            ids = list(dict.fromkeys(ids))
        ids.sort(key=self._seqs.__getitem__)
        return ids

    def _find_docs(self, query):
        """Stored (uncopied) documents matching ``query``, in insertion
        order."""
        if not query:
            return list(self._documents.values())
        if self.use_planner:
            ids = self._candidate_ids(query)
            if ids is not None:
                documents = self._documents
                return [doc for doc_id in ids
                        if matches(doc := documents[doc_id], query)]
        return [doc for doc in self._documents.values() if matches(doc, query)]

    def _find_first(self, query):
        if query and self.use_planner:
            ids = self._candidate_ids(query)
            if ids is not None:
                documents = self._documents
                for doc_id in ids:
                    doc = documents[doc_id]
                    if matches(doc, query):
                        return doc
                return None
        for doc in self._documents.values():
            if matches(doc, query):
                return doc
        return None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert_one(self, document):
        doc = _deep_copy(document)
        doc.setdefault("_id", ObjectId())
        if doc["_id"] in self._documents:
            raise DuplicateKeyError("_id", doc["_id"])
        self._check_unique(doc)
        self._documents[doc["_id"]] = doc
        self._seq_counter += 1
        self._seqs[doc["_id"]] = self._seq_counter
        self._index_doc(doc)
        return doc["_id"]

    def insert_many(self, documents):
        return [self.insert_one(doc) for doc in documents]

    def update_one(self, query, update, upsert=False):
        """Update the first match; returns (matched, modified)."""
        doc = self._find_first(query)
        if doc is None:
            if upsert:
                seed = {k: v for k, v in query.items() if not k.startswith("$")
                        and not isinstance(v, dict)}
                self.insert_one(apply_update(seed, update))
                return (0, 1)
            return (0, 0)
        return (1, self._apply_to(doc, update))

    def update_many(self, query, update):
        docs = self._find_docs(query)
        modified = sum(self._apply_to(doc, update) for doc in docs)
        return (len(docs), modified)

    def replace_one(self, query, replacement, upsert=False):
        return self.update_one(query, replacement, upsert=upsert)

    def _apply_to(self, doc, update):
        new_doc = apply_update(doc, update)
        if new_doc == doc:
            return 0
        self._check_unique(new_doc, ignore_id=doc["_id"])
        self._unindex_doc(doc)
        self._documents[doc["_id"]] = new_doc
        self._index_doc(new_doc)
        return 1

    def find_one_and_update(self, query, update, return_new=True, copy=True):
        """Atomic read-modify-write; returns the doc (new or old) or None."""
        doc = self._find_first(query)
        if doc is None:
            return None
        before = doc
        self._apply_to(doc, update)
        after = self._documents[doc["_id"]]
        result = after if return_new else before
        # `before` needs no defensive copy: updates replace the stored
        # document wholesale, they never mutate it in place.
        return _deep_copy(result) if copy else result

    def delete_one(self, query):
        doc = self._find_first(query)
        if doc is None:
            return 0
        self._remove(doc)
        return 1

    def delete_many(self, query):
        docs = self._find_docs(query)
        for doc in docs:
            self._remove(doc)
        return len(docs)

    def _remove(self, doc):
        del self._documents[doc["_id"]]
        del self._seqs[doc["_id"]]
        self._unindex_doc(doc)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _iter_docs(self):
        # Dict order is insertion order: updates replace values in
        # place, and a delete + reinsert of the same _id re-appends —
        # exactly the order the old explicit insertion-order list kept.
        return iter(self._documents.values())

    def find_one(self, query=None, projection=None, copy=True):
        doc = self._find_first(query or {})
        if doc is None:
            return None
        if projection is not None:
            keep = set(projection)
            keep.add("_id")
            if copy:
                return {k: _deep_copy(v) for k, v in doc.items() if k in keep}
            return {k: v for k, v in doc.items() if k in keep}
        return _deep_copy(doc) if copy else doc

    def find(self, query=None, sort=None, limit=None, skip=0, projection=None,
             copy=True):
        """Matching documents, optionally sorted/limited.

        ``sort`` is a list of ``(field, direction)`` with direction 1 or
        -1; ``projection`` is a list of field names to keep (plus _id).
        Projection is applied first, so only the selected fields are
        ever copied. ``copy=False`` returns the stored documents (or
        uncopied projections); callers must not mutate them.
        """
        out = self._find_docs(query or {})
        if sort:
            for field, direction in reversed(sort):
                if direction not in (1, -1):
                    raise InvalidQuery(f"sort direction must be 1 or -1: {direction}")
                out.sort(
                    key=lambda d: ((v := get_path(d, field)) is _MISSING, v is None, v),
                    reverse=direction == -1,
                )
        if skip:
            out = out[skip:]
        if limit is not None:
            out = out[:limit]
        if projection is not None:
            keep = set(projection)
            keep.add("_id")
            if copy:
                return [{k: _deep_copy(v) for k, v in doc.items() if k in keep}
                        for doc in out]
            return [{k: v for k, v in doc.items() if k in keep} for doc in out]
        if copy:
            return [_deep_copy(doc) for doc in out]
        return out

    def count_documents(self, query=None):
        return len(self._find_docs(query or {}))

    def aggregate(self, pipeline):
        """Run a Mongo-style aggregation pipeline over this collection."""
        from .aggregate import aggregate

        return aggregate(list(self._documents.values()), pipeline)

    def distinct(self, field, query=None):
        seen = []
        for doc in self._find_docs(query or {}):
            value = get_path(doc, field)
            if value is not _MISSING and value not in seen:
                seen.append(value)
        return seen
