"""Deterministic document identifiers.

Real ObjectIds embed wall-clock time and randomness; both would break
simulation determinism, so ids here are a process-wide counter rendered
in a Mongo-ish 24-hex-character shape.
"""

import itertools

_counter = itertools.count(1)


class ObjectId:
    """Opaque, totally ordered document identifier."""

    __slots__ = ("_value",)

    def __init__(self, value=None):
        if value is None:
            value = next(_counter)
        if isinstance(value, ObjectId):
            value = value._value
        if not isinstance(value, int) or value < 0:
            raise TypeError(f"ObjectId value must be a non-negative int: {value!r}")
        self._value = value

    def __eq__(self, other):
        return isinstance(other, ObjectId) and self._value == other._value

    def __lt__(self, other):
        if not isinstance(other, ObjectId):
            return NotImplemented
        return self._value < other._value

    def __hash__(self):
        return hash(("ObjectId", self._value))

    def __str__(self):
        return f"{self._value:024x}"

    def __repr__(self):
        return f"ObjectId({str(self)!r})"
