"""Document store: the simulated MongoDB.

DLaaS keeps every job's metadata (manifest, statuses, timestamps) in
MongoDB, written before the submission is acknowledged (paper §III.c).
This package provides collections with Mongo-style queries and updates,
unique indexes, and a majority-write replica set over the RPC fabric.
"""

from .aggregate import aggregate
from .collection import Collection
from .database import Database
from .errors import DocstoreError, DuplicateKeyError, InvalidQuery, InvalidUpdate, NoPrimary
from .objectid import ObjectId
from .query import matches
from .service import MongoClient, MongoMember, MongoReplicaSet
from .sharding import SHARD_KEYS, MongoShardSet, ShardedMongoClient, shard_index
from .update import apply_update, is_update_document

__all__ = [
    "Collection",
    "Database",
    "DocstoreError",
    "DuplicateKeyError",
    "InvalidQuery",
    "InvalidUpdate",
    "MongoClient",
    "MongoMember",
    "MongoReplicaSet",
    "MongoShardSet",
    "NoPrimary",
    "ObjectId",
    "SHARD_KEYS",
    "ShardedMongoClient",
    "aggregate",
    "apply_update",
    "is_update_document",
    "matches",
    "shard_index",
]
