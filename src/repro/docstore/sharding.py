"""Docstore sharding keyed on ``job_id`` (ISSUE 10 tentpole, part c).

A :class:`MongoShardSet` is N independent replica sets; documents of a
*sharded* collection live on exactly one shard, chosen by the stable
hash of their shard key. :class:`ShardedMongoClient` presents the same
generator API as :class:`~repro.docstore.service.MongoClient` and
routes each operation:

* shard-key point operations (the control plane's hot path — job
  insert, status read, the QUEUED->DEPLOYING claim) go straight to the
  owning shard: one primary round-trip, exactly like today;
* cross-shard queries (tenant listings, status resyncs, admin
  aggregation) scatter to every shard and merge client-side — the only
  queries that pay for the fan-out are the ones that genuinely span
  the job space;
* unsharded collections (``counters``, ``events``, ``metering`` — low
  write volume, no per-job hot path) are pinned to shard 0, so the
  sequence counter stays a single document and the event flusher keeps
  one target.

Shard 0 keeps the classic ``mongo-<i>`` member names so existing
chaos hooks, health probes and flusher wiring stay valid; shard k>0
members are ``mongo-s<k>-<i>``.
"""

from .aggregate import aggregate as run_pipeline
from .errors import InvalidQuery
from .query import _MISSING, get_path
from .service import MongoClient, MongoReplicaSet

# collection -> shard-key field; everything else is pinned to shard 0.
SHARD_KEYS = {
    "jobs": "job_id",
    "models": "model_id",
}


def shard_index(value, shard_count):
    """Deterministic shard for a key value (sha256, not builtin hash)."""
    from ..grpcnet.hashring import stable_hash

    return stable_hash(str(value)) % shard_count


class MongoShardSet:
    """N replica sets, each owning a hash slice of the sharded keys."""

    def __init__(self, kernel, network, shards=2, size=3, prefix="mongo",
                 service_time=0.0005, events=None, fast_path=True):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1: {shards}")
        self.kernel = kernel
        self.network = network
        self.shard_count = shards
        self.shards = []
        for k in range(shards):
            shard_prefix = prefix if k == 0 else f"{prefix}-s{k}"
            self.shards.append(MongoReplicaSet(
                kernel, network, size=size, prefix=shard_prefix,
                service_time=service_time, events=events,
                fast_path=fast_path))

    def start(self):
        for shard in self.shards:
            shard.start()
        return self

    def replica_set(self, index):
        return self.shards[index]

    def all_members(self):
        """Every member of every shard (health probes, index setup)."""
        for shard in self.shards:
            yield from shard.members.values()

    def shard_for(self, collection, key_value):
        if SHARD_KEYS.get(collection) is None:
            return self.shards[0]
        return self.shards[shard_index(key_value, self.shard_count)]


def _merge_sort(documents, sort):
    """Client-side replay of Collection.find's sort semantics."""
    out = list(documents)
    for field, direction in reversed(sort):
        if direction not in (1, -1):
            raise InvalidQuery(f"sort direction must be 1 or -1: {direction}")
        out.sort(
            key=lambda d: ((v := get_path(d, field)) is _MISSING, v is None, v),
            reverse=direction == -1,
        )
    return out


def _merge_groups(spec, partials):
    """Combine per-shard ``$group`` partials into global groups.

    ``$count``/``$sum`` add, ``$push`` concatenates, ``$min``/``$max``
    re-reduce. ``$avg`` is not mergeable from per-shard averages (the
    counts are gone) — callers that need it must target one shard.
    """
    merged = {}
    order = []
    for doc in partials:
        marker = repr(doc["_id"])
        if marker not in merged:
            merged[marker] = dict(doc)
            order.append(marker)
            continue
        into = merged[marker]
        for name, accumulator in spec.items():
            if name == "_id":
                continue
            op = next(iter(accumulator))
            value = doc.get(name)
            if op in ("$count", "$sum"):
                into[name] = into[name] + value
            elif op == "$push":
                into[name] = into[name] + value
            elif op == "$min":
                values = [v for v in (into[name], value) if v is not None]
                into[name] = min(values) if values else None
            elif op == "$max":
                values = [v for v in (into[name], value) if v is not None]
                into[name] = max(values) if values else None
            else:
                raise InvalidQuery(
                    f"accumulator {op!r} cannot be merged across shards")
    return [merged[marker] for marker in order]


class ShardedMongoClient:
    """MongoClient-compatible facade over a :class:`MongoShardSet`.

    All methods are process generators — call with ``yield from``.
    Scatter operations visit shards in index order (deterministic
    timeline) and merge results client-side.
    """

    def __init__(self, kernel, network, shard_set, caller="mongo-client",
                 max_attempts=40, retry_delay=0.05, tracer=None):
        self.shard_set = shard_set
        self.caller = caller
        self._clients = [
            MongoClient(kernel, network, shard, caller=caller,
                        max_attempts=max_attempts, retry_delay=retry_delay,
                        tracer=tracer)
            for shard in shard_set.shards
        ]

    # Routing ----------------------------------------------------------

    def _routed(self, collection, query):
        """The single owning client, or None when the op must scatter."""
        key_field = SHARD_KEYS.get(collection)
        if key_field is None:
            return self._clients[0]
        if query:
            value = query.get(key_field)
            if isinstance(value, (str, int)):
                return self._clients[
                    shard_index(value, self.shard_set.shard_count)]
        return None

    # MongoClient API --------------------------------------------------

    def insert_one(self, collection, document, ctx=None):
        key_field = SHARD_KEYS.get(collection)
        if key_field is None or key_field not in document:
            client = self._clients[0]
        else:
            client = self._clients[
                shard_index(document[key_field], self.shard_set.shard_count)]
        result = yield from client.insert_one(collection, document, ctx=ctx)
        return result

    def find_one(self, collection, query=None, projection=None, ctx=None):
        client = self._routed(collection, query)
        if client is not None:
            doc = yield from client.find_one(collection, query,
                                             projection=projection, ctx=ctx)
            return doc
        for client in self._clients:
            doc = yield from client.find_one(collection, query,
                                             projection=projection, ctx=ctx)
            if doc is not None:
                return doc
        return None

    def find(self, collection, query=None, sort=None, limit=None, skip=0,
             projection=None, ctx=None):
        client = self._routed(collection, query)
        if client is not None:
            docs = yield from client.find(
                collection, query, sort=sort, limit=limit, skip=skip,
                projection=projection, ctx=ctx)
            return docs
        # Scatter-gather: fetch each shard's full matching set, then
        # re-apply sort/skip/limit over the merged list so pagination
        # is global, not per-shard.
        gathered = []
        for client in self._clients:
            docs = yield from client.find(collection, query, sort=sort,
                                          projection=projection, ctx=ctx)
            gathered.extend(docs)
        if sort:
            gathered = _merge_sort(gathered, sort)
        if skip:
            gathered = gathered[skip:]
        if limit is not None:
            gathered = gathered[:limit]
        return gathered

    def update_one(self, collection, query, update, upsert=False, ctx=None):
        client = self._routed(collection, query)
        if client is not None:
            result = yield from client.update_one(collection, query, update,
                                                  upsert=upsert, ctx=ctx)
            return result
        if upsert:
            raise InvalidQuery(
                f"cross-shard upsert on {collection!r} needs the shard key "
                f"{SHARD_KEYS.get(collection)!r} in the query")
        for client in self._clients:
            matched, modified = yield from client.update_one(
                collection, query, update, ctx=ctx)
            if matched:
                return matched, modified
        return 0, 0

    def find_one_and_update(self, collection, query, update, return_new=True,
                            ctx=None):
        client = self._routed(collection, query)
        if client is not None:
            doc = yield from client.find_one_and_update(
                collection, query, update, return_new=return_new, ctx=ctx)
            return doc
        for client in self._clients:
            doc = yield from client.find_one_and_update(
                collection, query, update, return_new=return_new, ctx=ctx)
            if doc is not None:
                return doc
        return None

    def delete_many(self, collection, query):
        client = self._routed(collection, query)
        if client is not None:
            deleted = yield from client.delete_many(collection, query)
            return deleted
        total = 0
        for client in self._clients:
            deleted = yield from client.delete_many(collection, query)
            total += deleted
        return total

    def count(self, collection, query=None):
        client = self._routed(collection, query)
        if client is not None:
            n = yield from client.count(collection, query)
            return n
        total = 0
        for client in self._clients:
            n = yield from client.count(collection, query)
            total += n
        return total

    def aggregate(self, collection, pipeline):
        if SHARD_KEYS.get(collection) is None:
            docs = yield from self._clients[0].aggregate(collection, pipeline)
            return docs
        # Split the pipeline at the stage that needs global state: each
        # shard runs the prefix, the suffix replays client-side on the
        # merged partials.
        split = len(pipeline)
        group_spec = None
        for i, stage in enumerate(pipeline):
            op = next(iter(stage)) if isinstance(stage, dict) and stage else None
            if op == "$group":
                split, group_spec = i + 1, stage["$group"]
                break
            if op in ("$sort", "$skip", "$limit"):
                split = i
                break
        prefix, suffix = list(pipeline[:split]), list(pipeline[split:])
        partials = []
        for client in self._clients:
            docs = yield from client.aggregate(collection, prefix)
            partials.extend(docs)
        merged = (_merge_groups(group_spec, partials)
                  if group_spec is not None else partials)
        return run_pipeline(merged, suffix) if suffix else merged

    def create_index(self, collection, field, unique=False):
        for client in self._clients:
            yield from client.create_index(collection, field, unique=unique)
