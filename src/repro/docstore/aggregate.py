"""A small Mongo-style aggregation pipeline.

Supports the stages platform reporting needs: ``$match``, ``$group``
(with ``$sum``/``$avg``/``$min``/``$max``/``$count`` accumulators and
``"$field"`` references), ``$sort``, ``$project``, ``$limit`` and
``$skip``. Enough to roll up metering by tenant or jobs by status
without hauling documents into application code.
"""

from .errors import InvalidQuery
from .query import _MISSING, get_path, matches
from .update import _deep_copy


def aggregate(documents, pipeline):
    """Run ``pipeline`` over ``documents``; returns result documents."""
    if not isinstance(pipeline, (list, tuple)):
        raise InvalidQuery("pipeline must be a list of stages")
    current = [_deep_copy(doc) for doc in documents]
    for stage in pipeline:
        if not isinstance(stage, dict) or len(stage) != 1:
            raise InvalidQuery(f"each stage must be a single-key dict: {stage!r}")
        op, spec = next(iter(stage.items()))
        handler = _STAGES.get(op)
        if handler is None:
            raise InvalidQuery(f"unknown pipeline stage {op!r}")
        current = handler(current, spec)
    return current


def _resolve(doc, ref):
    """Evaluate a value spec: "$field" reference or literal."""
    if isinstance(ref, str) and ref.startswith("$"):
        value = get_path(doc, ref[1:])
        return None if value is _MISSING else value
    return ref


def _stage_match(docs, spec):
    return [doc for doc in docs if matches(doc, spec)]


def _stage_limit(docs, spec):
    if not isinstance(spec, int) or spec < 0:
        raise InvalidQuery("$limit needs a non-negative int")
    return docs[:spec]


def _stage_skip(docs, spec):
    if not isinstance(spec, int) or spec < 0:
        raise InvalidQuery("$skip needs a non-negative int")
    return docs[spec:]


def _stage_sort(docs, spec):
    out = list(docs)
    for field, direction in reversed(list(spec.items())):
        if direction not in (1, -1):
            raise InvalidQuery("sort direction must be 1 or -1")
        out.sort(
            key=lambda d: ((v := get_path(d, field)) is _MISSING, v is None, v),
            reverse=direction == -1,
        )
    return out


def _stage_project(docs, spec):
    out = []
    for doc in docs:
        projected = {}
        for name, rule in spec.items():
            if rule in (1, True):
                value = get_path(doc, name)
                if value is not _MISSING:
                    projected[name] = value
            elif rule in (0, False):
                continue
            else:
                projected[name] = _resolve(doc, rule)
        if "_id" in doc and "_id" not in spec:
            projected["_id"] = doc["_id"]
        out.append(projected)
    return out


def _stage_group(docs, spec):
    if "_id" not in spec:
        raise InvalidQuery("$group needs an _id expression")
    groups = {}
    order = []
    for doc in docs:
        key = _resolve(doc, spec["_id"])
        marker = repr(key)
        if marker not in groups:
            groups[marker] = {"_id": key, "_docs": []}
            order.append(marker)
        groups[marker]["_docs"].append(doc)

    out = []
    for marker in order:
        bucket = groups[marker]
        result = {"_id": bucket["_id"]}
        for name, accumulator in spec.items():
            if name == "_id":
                continue
            if not isinstance(accumulator, dict) or len(accumulator) != 1:
                raise InvalidQuery(f"bad accumulator for {name!r}")
            op, ref = next(iter(accumulator.items()))
            values = [
                v for v in (_resolve(doc, ref) for doc in bucket["_docs"])
                if v is not None
            ]
            if op == "$count":
                result[name] = len(bucket["_docs"])
            elif op == "$sum":
                result[name] = sum(values) if values else 0
            elif op == "$avg":
                result[name] = sum(values) / len(values) if values else None
            elif op == "$min":
                result[name] = min(values) if values else None
            elif op == "$max":
                result[name] = max(values) if values else None
            elif op == "$push":
                result[name] = values
            else:
                raise InvalidQuery(f"unknown accumulator {op!r}")
        out.append(result)
    return out


_STAGES = {
    "$match": _stage_match,
    "$group": _stage_group,
    "$sort": _stage_sort,
    "$project": _stage_project,
    "$limit": _stage_limit,
    "$skip": _stage_skip,
}
