"""The Raft replicated log.

Entries are 1-indexed, as in the Raft paper; index 0 is the sentinel
"empty log" position with term 0.
"""

from .rpc import LogEntry


class Compacted(IndexError):
    """The requested index was discarded by log compaction."""


class RaftLog:
    """In-memory (simulated-durable) Raft log with prefix compaction.

    ``offset`` is the index of the last entry folded into a snapshot;
    live entries cover ``offset+1 .. last_index``. A fresh log has
    offset 0 with sentinel term 0.
    """

    def __init__(self):
        self._entries = []
        self.offset = 0
        self.offset_term = 0

    def __len__(self):
        return len(self._entries)

    @property
    def first_index(self):
        return self.offset + 1

    @property
    def last_index(self):
        return self.offset + len(self._entries)

    @property
    def last_term(self):
        return self._entries[-1].term if self._entries else self.offset_term

    def term_at(self, index):
        """Term of the entry at ``index`` (sentinel/snapshot boundary OK)."""
        if index == self.offset:
            return self.offset_term
        if index < self.offset:
            raise Compacted(f"index {index} compacted away (offset {self.offset})")
        if index > self.last_index:
            raise IndexError(f"no log entry at index {index}")
        return self._entries[index - self.offset - 1].term

    def entry_at(self, index):
        if index <= self.offset:
            raise Compacted(f"index {index} compacted away (offset {self.offset})")
        if index > self.last_index:
            raise IndexError(f"no log entry at index {index}")
        return self._entries[index - self.offset - 1]

    def has_entry(self, index):
        return self.offset < index <= self.last_index

    def append(self, term, command):
        """Append a new entry (leader side); returns its index."""
        self._entries.append(LogEntry(term=term, command=command))
        return self.last_index

    def entries_from(self, start, limit=None):
        """Entries at indices >= ``start``, up to ``limit`` of them."""
        if start < 1:
            raise IndexError(f"log indices start at 1, got {start}")
        if start <= self.offset:
            raise Compacted(f"start {start} compacted away (offset {self.offset})")
        chunk = self._entries[start - self.offset - 1 :]
        if limit is not None:
            chunk = chunk[:limit]
        return tuple(chunk)

    def matches(self, index, term):
        """True if the log covers ``index`` with ``term``."""
        if index == 0:
            return True
        if index == self.offset:
            return term == self.offset_term
        return self.has_entry(index) and self.term_at(index) == term

    def splice(self, prev_index, entries):
        """Follower-side append: install ``entries`` after ``prev_index``.

        Deletes conflicting suffixes (same index, different term) per
        the Raft paper's AppendEntries receiver rule 3, but never
        truncates on a mere duplicate — that would roll back entries a
        stale, reordered RPC doesn't know about. Entries at or below the
        compaction offset are already captured by the snapshot and are
        skipped.
        """
        index = prev_index
        for entry in entries:
            index += 1
            if index <= self.offset:
                continue  # covered by the snapshot
            if self.has_entry(index):
                if self.term_at(index) == entry.term:
                    continue  # duplicate of what we already have
                del self._entries[index - self.offset - 1 :]
            self._entries.append(entry)
        return index

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self, upto_index):
        """Discard entries up to ``upto_index`` (now held in a snapshot)."""
        if upto_index <= self.offset:
            return
        if upto_index > self.last_index:
            raise IndexError(f"cannot compact beyond last index ({upto_index})")
        boundary_term = self.term_at(upto_index)
        del self._entries[: upto_index - self.offset]
        self.offset = upto_index
        self.offset_term = boundary_term

    def install_snapshot_boundary(self, index, term):
        """Reset the log to start after an installed snapshot."""
        self._entries = []
        self.offset = index
        self.offset_term = term

    def is_up_to_date(self, other_last_index, other_last_term):
        """Raft §5.4.1 election restriction: is the *other* log current?"""
        if other_last_term != self.last_term:
            return other_last_term > self.last_term
        return other_last_index >= self.last_index
