"""Prefix watches over the replicated store.

A watch is registered against one node and delivers
:class:`~repro.raftkv.statemachine.KvEvent` objects into a channel as
that node applies committed entries. If the node crashes, the channel
closes and the watcher must re-register (as with a dropped etcd watch
stream) — the DLaaS Guardian handles exactly this re-watch.
"""

from ..sim.channels import Channel


class Watch:
    """One registered watch; iterate by yielding ``watch.channel.get()``."""

    def __init__(self, hub, prefix, channel):
        self._hub = hub
        self.prefix = prefix
        self.channel = channel

    @property
    def closed(self):
        return self.channel.closed

    def cancel(self):
        self._hub.remove(self)


class WatchHub:
    """Per-node registry of active watches."""

    def __init__(self, kernel):
        self._kernel = kernel
        self._watches = []

    def add(self, prefix):
        watch = Watch(self, prefix, Channel(self._kernel, name=f"watch:{prefix}"))
        self._watches.append(watch)
        return watch

    def remove(self, watch):
        try:
            self._watches.remove(watch)
        except ValueError:
            pass
        if not watch.channel.closed:
            watch.channel.close()

    def __len__(self):
        return len(self._watches)

    def dispatch(self, event):
        stale = None
        for watch in list(self._watches):
            if watch.channel.closed:
                # Watcher died without cancelling; drop the registration
                # so dead streams don't accumulate across job lifetimes.
                stale = stale or []
                stale.append(watch)
                continue
            if event.key.startswith(watch.prefix):
                watch.channel.put(event)
        for watch in stale or ():
            self.remove(watch)

    def close_all(self):
        """Node crash: drop every watch stream."""
        watches, self._watches = self._watches, []
        for watch in watches:
            if not watch.channel.closed:
                watch.channel.close()
