"""Raft RPC message types (Figure 2 of the Raft paper)."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LogEntry:
    """One replicated log entry: the term it was created in + command."""

    term: int
    command: dict


@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate_id: str
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class RequestVoteReply:
    term: int
    vote_granted: bool
    voter_id: str


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader_id: str
    prev_log_index: int
    prev_log_term: int
    entries: tuple = field(default_factory=tuple)
    leader_commit: int = 0


@dataclass(frozen=True)
class InstallSnapshot:
    term: int
    leader_id: str
    last_included_index: int
    last_included_term: int
    # Serialized state-machine image (a deep copy of the KV state).
    data: dict = field(default_factory=dict)


@dataclass(frozen=True)
class InstallSnapshotReply:
    term: int
    follower_id: str
    last_included_index: int


@dataclass(frozen=True)
class AppendEntriesReply:
    term: int
    success: bool
    follower_id: str
    # On success: index of the last entry known replicated on the
    # follower. On failure: a hint for nextIndex back-off (the
    # follower's log length + 1), which converges much faster than
    # decrementing by one.
    match_index: int = 0
    next_index_hint: int = 1
