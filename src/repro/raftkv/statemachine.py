"""Deterministic KV state machine applied to committed Raft entries.

Every node replays the same command stream and therefore reaches the
same state — including session bookkeeping (for exactly-once client
retries) and lease bookkeeping (time is carried *inside* commands, so
replay stays deterministic).
"""

from bisect import bisect_left, insort

from .errors import RaftError


class KvEvent:
    """A change notification delivered to watchers."""

    __slots__ = ("type", "key", "value", "revision")

    def __init__(self, type, key, value, revision):
        self.type = type
        self.key = key
        self.value = value
        self.revision = revision

    def __repr__(self):
        return f"<KvEvent {self.type} {self.key!r}@{self.revision}>"


class KvStateMachine:
    """The replicated store: versioned keys, sessions, leases."""

    def __init__(self, watch_hub=None):
        self.data = {}
        # Keys kept in sorted order (bisect-maintained), so range()
        # serves prefix scans from a window instead of re-sorting the
        # whole keyspace on every read.
        self._sorted_keys = []
        self.revision = 0
        self.key_revisions = {}
        # client_id -> (seq, cached result): exactly-once under retries.
        self.sessions = {}
        # Commands the session table swallowed: a retried client op that
        # reached the log twice. Volatile (not snapshotted) — it counts
        # this replica's dedup work, not replicated state.
        self.duplicate_applies = 0
        # lease_id -> {"ttl": float, "expires_at": float, "keys": set}
        self.leases = {}
        self.watch_hub = watch_hub

    # ------------------------------------------------------------------

    def apply(self, command):
        """Apply one committed command; returns its (cached-able) result."""
        client_id = command.get("client_id")
        seq = command.get("seq")
        if client_id is not None and seq is not None:
            cached = self.sessions.get(client_id)
            if cached is not None and cached[0] >= seq:
                self.duplicate_applies += 1
                return cached[1]
        result = self._dispatch(command)
        if client_id is not None and seq is not None:
            self.sessions[client_id] = (seq, result)
        return result

    def _dispatch(self, command):
        op = command["op"]
        handler = getattr(self, f"_apply_{op}", None)
        if handler is None:
            raise RaftError(f"unknown command op: {op!r}")
        return handler(command)

    # ------------------------------------------------------------------
    # Command handlers
    # ------------------------------------------------------------------

    def _apply_noop(self, _command):
        return {"ok": True}

    def _apply_put(self, command):
        key, value = command["key"], command["value"]
        lease_id = command.get("lease")
        if lease_id is not None:
            lease = self.leases.get(lease_id)
            if lease is None:
                return {"ok": False, "error": "lease not found"}
            lease["keys"].add(key)
        self.revision += 1
        if key not in self.data:
            insort(self._sorted_keys, key)
        self.data[key] = value
        self.key_revisions[key] = self.revision
        self._notify("put", key, value)
        return {"ok": True, "revision": self.revision}

    def _apply_delete(self, command):
        key = command["key"]
        if key not in self.data:
            return {"ok": True, "deleted": 0, "revision": self.revision}
        self.revision += 1
        self._remove_key(key)
        self.key_revisions.pop(key, None)
        self._notify("delete", key, None)
        return {"ok": True, "deleted": 1, "revision": self.revision}

    def _apply_delete_prefix(self, command):
        prefix = command["prefix"]
        victims = [key for key, _value in self.range(prefix)]
        for key in victims:
            self.revision += 1
            self._remove_key(key)
            self.key_revisions.pop(key, None)
            self._notify("delete", key, None)
        return {"ok": True, "deleted": len(victims), "revision": self.revision}

    def _apply_cas(self, command):
        key = command["key"]
        actual = self.data.get(key)
        if actual != command["expected"]:
            return {"ok": False, "actual": actual, "revision": self.revision}
        # A cas may attach the key to a lease (slice-ownership claims):
        # winning the swap and binding the lease is one atomic command.
        return self._apply_put({"key": key, "value": command["value"],
                                "lease": command.get("lease")})

    def _apply_lease_grant(self, command):
        lease_id, ttl, now = command["lease_id"], command["ttl"], command["now"]
        self.leases[lease_id] = {"ttl": ttl, "expires_at": now + ttl, "keys": set()}
        return {"ok": True, "lease_id": lease_id}

    def _apply_lease_keepalive(self, command):
        lease = self.leases.get(command["lease_id"])
        if lease is None:
            return {"ok": False, "error": "lease not found"}
        lease["expires_at"] = command["now"] + lease["ttl"]
        return {"ok": True}

    def _apply_lease_revoke(self, command):
        return self._revoke(command["lease_id"])

    def _apply_lease_expire(self, command):
        # Proposed by the leader's lease sweeper; replay-safe because
        # the decision to expire was made once, at proposal time.
        lease = self.leases.get(command["lease_id"])
        if lease is None:
            return {"ok": True, "deleted": 0}
        if lease["expires_at"] > command["now"]:
            return {"ok": False, "error": "lease refreshed since proposal"}
        return self._revoke(command["lease_id"])

    def _remove_key(self, key):
        del self.data[key]
        del self._sorted_keys[bisect_left(self._sorted_keys, key)]

    def _revoke(self, lease_id):
        lease = self.leases.pop(lease_id, None)
        if lease is None:
            return {"ok": True, "deleted": 0}
        deleted = 0
        for key in sorted(lease["keys"]):
            if key in self.data:
                self.revision += 1
                self._remove_key(key)
                self.key_revisions.pop(key, None)
                self._notify("delete", key, None)
                deleted += 1
        return {"ok": True, "deleted": deleted}

    # ------------------------------------------------------------------
    # Reads (leader-local; not part of the replicated command stream)
    # ------------------------------------------------------------------

    def get(self, key):
        return self.data.get(key)

    def get_with_revision(self, key):
        if key not in self.data:
            return None, 0
        return self.data[key], self.key_revisions[key]

    def range(self, prefix):
        """All (key, value) pairs under ``prefix``, sorted by key."""
        keys = self._sorted_keys
        data = self.data
        out = []
        i = bisect_left(keys, prefix)
        n = len(keys)
        while i < n:
            key = keys[i]
            if not key.startswith(prefix):
                break
            out.append((key, data[key]))
            i += 1
        return out

    # ------------------------------------------------------------------
    # Snapshots (Raft log compaction)
    # ------------------------------------------------------------------

    def to_snapshot(self):
        """A deep, self-contained image of the replicated state."""
        from ..grpcnet.payload import deep_copy_payload

        return {
            "data": deep_copy_payload(self.data),
            "revision": self.revision,
            "key_revisions": dict(self.key_revisions),
            "sessions": deep_copy_payload(self.sessions),
            "leases": {
                lease_id: {"ttl": lease["ttl"], "expires_at": lease["expires_at"],
                           "keys": set(lease["keys"])}
                for lease_id, lease in self.leases.items()
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot, watch_hub=None):
        from ..grpcnet.payload import deep_copy_payload

        sm = cls(watch_hub=watch_hub)
        sm.data = deep_copy_payload(snapshot["data"])
        sm._sorted_keys = sorted(sm.data)
        sm.revision = snapshot["revision"]
        sm.key_revisions = dict(snapshot["key_revisions"])
        sm.sessions = deep_copy_payload(snapshot["sessions"])
        sm.leases = {
            lease_id: {"ttl": lease["ttl"], "expires_at": lease["expires_at"],
                       "keys": set(lease["keys"])}
            for lease_id, lease in snapshot["leases"].items()
        }
        return sm

    # ------------------------------------------------------------------

    def _notify(self, type, key, value):
        if self.watch_hub is not None:
            self.watch_hub.dispatch(KvEvent(type, key, value, self.revision))
