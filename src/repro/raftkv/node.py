"""A Raft consensus node.

Implements the core Raft protocol from Ongaro & Ousterhout: randomized
election timeouts, leader election with the log-up-to-date restriction,
log replication with the fast next-index back-off, the current-term
commit rule, and a no-op barrier entry at the start of each leadership
term. Committed entries are applied to a deterministic KV state machine
(:mod:`repro.raftkv.statemachine`).

Each node is an RPC server on the simulated network. Crashing a node
stops its server, kills its processes, and discards volatile state;
persistent state (term, vote, log) survives restart, as if fsynced.
"""

from ..grpcnet import Server
from ..grpcnet.errors import RpcError
from ..sim.errors import ProcessKilled
from .errors import NotLeader
from .log import RaftLog
from .rpc import (
    AppendEntries,
    AppendEntriesReply,
    InstallSnapshot,
    InstallSnapshotReply,
    RequestVote,
    RequestVoteReply,
)
from .statemachine import KvStateMachine
from .watch import WatchHub

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


class RaftTimings:
    """Protocol timing constants (simulated seconds)."""

    def __init__(self, election_min=0.15, election_max=0.30,
                 heartbeat=0.05, rpc_timeout=0.06, lease_sweep=0.5):
        if not 0 < election_min < election_max:
            raise ValueError("need 0 < election_min < election_max")
        if heartbeat >= election_min:
            raise ValueError("heartbeat must be well below the election timeout")
        self.election_min = election_min
        self.election_max = election_max
        self.heartbeat = heartbeat
        self.rpc_timeout = rpc_timeout
        self.lease_sweep = lease_sweep


class RaftNode:
    """One member of the replicated store."""

    MAX_BATCH = 64

    def __init__(self, kernel, network, node_id, peer_ids, timings=None,
                 tracer=None, snapshot_threshold=500, metrics=None,
                 events=None):
        self.kernel = kernel
        self.network = network
        self.node_id = node_id
        self.peer_ids = [p for p in peer_ids if p != node_id]
        self.timings = timings or RaftTimings()
        self.tracer = tracer
        self.events = events
        if metrics is not None:
            # Children bound once: node_id is fixed for the node's life.
            self._m_elections = metrics.counter(
                "raft_leader_elections_total", ("node",),
                help="Times this node won a leader election"
            ).labels(node=node_id)
            self._m_commit_dur = metrics.histogram(
                "raft_commit_duration_seconds", ("node",),
                help="Leader-side propose-to-commit latency"
            ).labels(node=node_id)
            self._m_applied = metrics.counter(
                "raft_applied_entries_total", ("node",),
                help="Log entries applied to the state machine"
            ).labels(node=node_id)
            self._m_dup_applies = metrics.counter(
                "raft_duplicate_applies_total", ("node",),
                help="Committed commands deduplicated by the session "
                     "table: a retried client op that reached the log "
                     "twice"
            ).labels(node=node_id)
        else:
            self._m_elections = self._m_commit_dur = self._m_applied = None
            self._m_dup_applies = None
        # Compact the log once this many entries have been applied
        # beyond the last snapshot; 0 disables compaction.
        self.snapshot_threshold = snapshot_threshold
        self._rng = kernel.rng(f"raft:{node_id}")

        # Persistent state (survives crash/restart).
        self.current_term = 0
        self.voted_for = None
        self.log = RaftLog()
        self.snapshot = None  # {"index", "term", "state"} once compacted

        # Volatile state.
        self.role = FOLLOWER
        self.leader_id = None
        self.commit_index = 0
        self.last_applied = 0
        self.watch_hub = WatchHub(kernel)
        self.state_machine = KvStateMachine(watch_hub=self.watch_hub)
        self.alive = False
        self._next_index = {}
        self._match_index = {}
        self._waiters = {}  # log index -> (term, event)
        self._pokes = {}  # peer -> event, to wake the replicator early
        self._last_heartbeat = 0.0
        # Check-quorum lease: when each peer last acknowledged this
        # node's leadership (send time of the acked RPC, which is the
        # conservative anchor). Reads are served only while a majority
        # acked within election_min — a deposed leader cut off from its
        # peers steps out of the read path before any replacement can
        # be elected, closing the stale-read window.
        self._peer_acks = {}
        # Test-only seeded bug: serve leader-local reads without the
        # check-quorum lease (the pre-audit behaviour). A partitioned
        # deposed leader then answers from stale state — exists so the
        # linearizability checker has a real violation to catch; never
        # set by production code paths.
        self.stale_reads = False
        self._procs = set()
        # Gray fault: seconds every log-carrying append hangs in the
        # simulated disk before being applied. Pure heartbeats (no
        # entries) skip the stall, so elections don't trip — the node
        # stays a healthy-looking follower that replicates slowly.
        self.disk_stall = 0.0

        self.server = Server(kernel, network, node_id)
        self.server.add_method("request_vote", self._on_request_vote)
        self.server.add_method("append_entries", self._on_append_entries)
        self.server.add_method("install_snapshot", self._on_install_snapshot)
        self.server.add_method("propose", self._on_propose)
        self.server.add_method("read", self._on_read)
        self.server.add_method("range", self._on_range)
        self.server.add_method("status", self._on_status)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        if self.alive:
            return self
        self.alive = True
        self.role = FOLLOWER
        self.leader_id = None
        if self.snapshot is not None:
            # Disk recovery: restore the snapshot image, then re-apply
            # the surviving log suffix as commits advance.
            self.state_machine = KvStateMachine.from_snapshot(
                self.snapshot["state"], watch_hub=self.watch_hub
            )
            self.commit_index = self.snapshot["index"]
            self.last_applied = self.snapshot["index"]
        else:
            self.state_machine = KvStateMachine(watch_hub=self.watch_hub)
            self.commit_index = 0
            self.last_applied = 0
        self._last_heartbeat = self.kernel.now
        self.server.start()
        self._spawn(self._election_timer(), "election-timer")
        self._trace("start", term=self.current_term)
        return self

    def crash(self):
        """Kill the node: volatile state is lost, disk survives."""
        if not self.alive:
            return self
        self.alive = False
        self._trace("crash", term=self.current_term, role=self.role)
        self.role = FOLLOWER
        self.leader_id = None
        self.server.stop()
        self.watch_hub.close_all()
        self._waiters.clear()
        self._pokes.clear()
        procs, self._procs = self._procs, set()
        for proc in procs:
            proc.kill(f"{self.node_id} crashed")
        return self

    restart = start

    def _spawn(self, generator, label):
        process = self.kernel.spawn(generator, name=f"{self.node_id}:{label}")
        self._procs.add(process)
        process.add_callback(lambda _ev: self._procs.discard(process))
        return process

    def _trace(self, kind, **fields):
        if self.tracer is not None:
            self.tracer.emit(self.node_id, f"raft-{kind}", **fields)

    # ------------------------------------------------------------------
    # Role transitions
    # ------------------------------------------------------------------

    @property
    def is_leader(self):
        return self.alive and self.role == LEADER

    def _become_follower(self, term, leader_id=None):
        stepping_down = self.role != FOLLOWER
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
        self.role = FOLLOWER
        if leader_id is not None:
            self.leader_id = leader_id
        if stepping_down:
            self._trace("step-down", term=self.current_term)
            self._fail_waiters()

    def _become_leader(self):
        self.role = LEADER
        self.leader_id = self.node_id
        self._next_index = {p: self.log.last_index + 1 for p in self.peer_ids}
        self._match_index = {p: 0 for p in self.peer_ids}
        # Seed the lease from the vote grants that just elected us: each
        # voter reset its election timer when granting, so "heard from a
        # majority within election_min" holds at this instant — the
        # lease never lapses on a healthy cluster and the read path is
        # timeline-identical to the pre-lease behaviour.
        self._peer_acks = {p: self.kernel.now for p in self.peer_ids}
        self._trace("elected", term=self.current_term)
        if self._m_elections is not None:
            self._m_elections.inc()
        if self.events is not None:
            self.events.emit_event(
                "Normal", "LeaderElected", "EtcdNode", self.node_id,
                message=f"won election for term {self.current_term}")
        # Barrier no-op: lets this term commit entries from prior terms
        # (Raft §5.4.2) without waiting for a client write.
        self.log.append(self.current_term, {"op": "noop"})
        for peer in self.peer_ids:
            self._pokes[peer] = self.kernel.event()
            self._spawn(self._replicate(peer, self.current_term), f"repl:{peer}")
        self._spawn(self._lease_sweeper(self.current_term), "lease-sweeper")
        self._advance_commit()

    def _fail_waiters(self):
        waiters, self._waiters = self._waiters, {}
        for _index, (term, event) in waiters.items():
            if not event.triggered:
                event.fail(NotLeader(self.node_id, self.leader_id))

    # ------------------------------------------------------------------
    # Election timer and elections
    # ------------------------------------------------------------------

    def _election_deadline(self):
        spread = self.timings.election_max - self.timings.election_min
        return self._last_heartbeat + self.timings.election_min + self._rng.random() * spread

    def _election_timer(self):
        while self.alive:
            deadline = self._election_deadline()
            if self.kernel.now < deadline:
                yield self.kernel.sleep(deadline - self.kernel.now)
                continue
            if self.role != LEADER:
                self._start_election()
            self._last_heartbeat = self.kernel.now

    def _start_election(self):
        self.role = CANDIDATE
        self.current_term += 1
        self.voted_for = self.node_id
        self.leader_id = None
        term = self.current_term
        self._trace("election-start", term=term)
        votes = {self.node_id}
        majority = (len(self.peer_ids) + 1) // 2 + 1
        if len(votes) >= majority:
            self._become_leader()
            return
        request = RequestVote(
            term=term,
            candidate_id=self.node_id,
            last_log_index=self.log.last_index,
            last_log_term=self.log.last_term,
        )
        for peer in self.peer_ids:
            self._spawn(self._solicit_vote(peer, request, votes, majority), f"vote:{peer}")

    def _solicit_vote(self, peer, request, votes, majority):
        try:
            reply = yield self.network.call(
                peer, "request_vote", request,
                deadline=self.timings.rpc_timeout, caller=self.node_id,
            )
        except (RpcError, ProcessKilled):
            return
        reply = self._unwrap(reply)
        if not self.alive or self.role != CANDIDATE or self.current_term != request.term:
            return
        if reply.term > self.current_term:
            self._become_follower(reply.term)
            return
        if reply.vote_granted:
            votes.add(reply.voter_id)
            if len(votes) >= majority:
                self._become_leader()

    @staticmethod
    def _unwrap(reply):
        return reply

    # ------------------------------------------------------------------
    # RPC handlers (run on the server, possibly concurrently)
    # ------------------------------------------------------------------

    def _on_request_vote(self, request):
        if request.term > self.current_term:
            self._become_follower(request.term)
        granted = False
        if request.term == self.current_term:
            can_vote = self.voted_for in (None, request.candidate_id)
            log_ok = self.log.is_up_to_date(request.last_log_index, request.last_log_term)
            if can_vote and log_ok and self.role == FOLLOWER:
                granted = True
                self.voted_for = request.candidate_id
                self._last_heartbeat = self.kernel.now
        return RequestVoteReply(term=self.current_term, vote_granted=granted,
                                voter_id=self.node_id)

    def _on_append_entries(self, request):
        # A generator that yields nothing while disk_stall is 0, so the
        # healthy replication timeline is untouched.
        if self.disk_stall and request.entries:
            yield self.kernel.sleep(self.disk_stall)
        if request.term < self.current_term:
            return AppendEntriesReply(
                term=self.current_term, success=False, follower_id=self.node_id,
                next_index_hint=self.log.last_index + 1,
            )
        self._become_follower(request.term, leader_id=request.leader_id)
        self._last_heartbeat = self.kernel.now
        if not self.log.matches(request.prev_log_index, request.prev_log_term):
            hint = min(self.log.last_index + 1, max(1, request.prev_log_index))
            return AppendEntriesReply(
                term=self.current_term, success=False, follower_id=self.node_id,
                next_index_hint=hint,
            )
        last_new = self.log.splice(request.prev_log_index, request.entries)
        if request.leader_commit > self.commit_index:
            self.commit_index = min(request.leader_commit, self.log.last_index)
            self._apply_committed()
        return AppendEntriesReply(
            term=self.current_term, success=True, follower_id=self.node_id,
            match_index=last_new,
        )

    def _on_propose(self, command):
        if not self.is_leader:
            raise NotLeader(self.node_id, self.leader_id)
        proposed = self.kernel.now
        index = self.log.append(self.current_term, command)
        waiter = self.kernel.event(name=f"commit@{index}")
        self._waiters[index] = (self.current_term, waiter)
        self._poke_replicators()
        self._advance_commit()  # single-node clusters commit immediately
        result = yield waiter
        if self._m_commit_dur is not None:
            self._m_commit_dur.observe(
                self.kernel.now - proposed)
        return result

    def _read_lease_valid(self):
        """Check-quorum leader lease.

        True when a majority of the cluster (this node plus peers that
        acked an RPC *sent* within the last election_min) still
        accepted this node's leadership recently enough that no
        replacement can have been elected: a peer that acked at time t
        reset its election timer no earlier than t, so it cannot grant
        a vote before t + election_min. The simulation has one global
        clock, so unlike real deployments the lease argument here is
        exact, not an assumption about bounded clock drift.
        """
        if not self.peer_ids:
            return True
        horizon = self.kernel.now - self.timings.election_min
        fresh = 1 + sum(1 for t in self._peer_acks.values() if t > horizon)
        return fresh >= (len(self.peer_ids) + 1) // 2 + 1

    def _on_read(self, request):
        """Leader-local linearizable read.

        Served from the leader's applied state, guarded by the
        check-quorum lease above; a leader that cannot prove recent
        majority contact redirects the client (no hint — it genuinely
        does not know who leads now) rather than risk a stale read.
        """
        if not self.is_leader:
            raise NotLeader(self.node_id, self.leader_id)
        if not (self.stale_reads or self._read_lease_valid()):
            raise NotLeader(self.node_id, None)
        key = request["key"]
        value, revision = self.state_machine.get_with_revision(key)
        return {"value": value, "revision": revision, "found": revision != 0}

    def _on_range(self, request):
        if not self.is_leader:
            raise NotLeader(self.node_id, self.leader_id)
        if not (self.stale_reads or self._read_lease_valid()):
            raise NotLeader(self.node_id, None)
        return {"kvs": self.state_machine.range(request["prefix"])}

    def _on_status(self, _request):
        return {
            "node": self.node_id,
            "role": self.role,
            "term": self.current_term,
            "leader": self.leader_id,
            "commit_index": self.commit_index,
            "log_length": self.log.last_index,
        }

    # ------------------------------------------------------------------
    # Leader: replication, commit, leases
    # ------------------------------------------------------------------

    def _poke_replicators(self):
        for peer, event in list(self._pokes.items()):
            if not event.triggered:
                event.succeed()

    def _replicate(self, peer, term):
        while self.alive and self.role == LEADER and self.current_term == term:
            next_index = self._next_index[peer]
            if next_index <= self.log.offset:
                # The follower needs entries we compacted away: ship the
                # whole snapshot instead (Raft §7, InstallSnapshot).
                done = yield from self._send_snapshot(peer, term)
                if not done:
                    return
                continue
            prev_index = next_index - 1
            entries = self.log.entries_from(next_index, limit=self.MAX_BATCH)
            request = AppendEntries(
                term=term,
                leader_id=self.node_id,
                prev_log_index=prev_index,
                prev_log_term=self.log.term_at(prev_index),
                entries=entries,
                leader_commit=self.commit_index,
            )
            sent = self.kernel.now
            try:
                reply = yield self.network.call(
                    peer, "append_entries", request,
                    deadline=self.timings.rpc_timeout, caller=self.node_id,
                )
            except RpcError:
                yield self.kernel.sleep(self.timings.heartbeat)
                continue
            if not self.alive or self.role != LEADER or self.current_term != term:
                return
            if reply.term > self.current_term:
                self._become_follower(reply.term)
                return
            self._peer_acks[peer] = sent  # lease: majority-contact proof
            if reply.success:
                if reply.match_index > self._match_index[peer]:
                    self._match_index[peer] = reply.match_index
                    self._advance_commit()
                self._next_index[peer] = max(self._next_index[peer], reply.match_index + 1)
                if self._next_index[peer] <= self.log.last_index:
                    continue  # more entries pending; keep streaming
            else:
                self._next_index[peer] = max(1, min(reply.next_index_hint, next_index - 1))
                continue
            # Caught up: idle until new entries or the heartbeat interval.
            poke = self.kernel.event()
            self._pokes[peer] = poke
            timer = self.kernel.sleep(self.timings.heartbeat)
            yield self.kernel.any_of([poke, timer])
            timer.cancel()

    def _send_snapshot(self, peer, term):
        """Ship the current snapshot to a lagging peer.

        Returns False when this replicator should exit (lost leadership
        or saw a higher term); True to continue the loop.
        """
        request = InstallSnapshot(
            term=term,
            leader_id=self.node_id,
            last_included_index=self.snapshot["index"],
            last_included_term=self.snapshot["term"],
            data=self.snapshot["state"],
        )
        sent = self.kernel.now
        try:
            reply = yield self.network.call(
                peer, "install_snapshot", request,
                deadline=self.timings.rpc_timeout * 4,  # big payload
                caller=self.node_id,
            )
        except RpcError:
            yield self.kernel.sleep(self.timings.heartbeat)
            return self.alive and self.role == LEADER and self.current_term == term
        if not self.alive or self.role != LEADER or self.current_term != term:
            return False
        if reply.term > self.current_term:
            self._become_follower(reply.term)
            return False
        self._peer_acks[peer] = sent  # lease: majority-contact proof
        self._match_index[peer] = max(self._match_index[peer],
                                      reply.last_included_index)
        self._next_index[peer] = reply.last_included_index + 1
        self._advance_commit()
        self._trace("snapshot-sent", peer=peer, index=reply.last_included_index)
        return True

    def _advance_commit(self):
        if self.role != LEADER:
            return
        matches = sorted([self.log.last_index] + list(self._match_index.values()))
        majority_index = matches[len(matches) // 2]
        # len(matches) is cluster size; index len//2 is the highest index
        # replicated on a majority (self counts via log.last_index).
        if majority_index > self.commit_index and \
                self.log.term_at(majority_index) == self.current_term:
            self.commit_index = majority_index
            self._apply_committed()

    def _apply_committed(self):
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.entry_at(self.last_applied)
            duplicates_before = self.state_machine.duplicate_applies
            result = self.state_machine.apply(entry.command)
            if self._m_applied is not None:
                self._m_applied.inc()
                if self.state_machine.duplicate_applies != duplicates_before:
                    self._m_dup_applies.inc()
            waiter = self._waiters.pop(self.last_applied, None)
            if waiter is not None:
                term, event = waiter
                if event.triggered:
                    continue
                if entry.term == term:
                    event.succeed(result)
                else:
                    event.fail(NotLeader(self.node_id, self.leader_id))
        self._maybe_snapshot()

    def _maybe_snapshot(self):
        """Fold the applied prefix into a snapshot and compact the log."""
        if self.snapshot_threshold <= 0:
            return
        if self.last_applied - self.log.offset < self.snapshot_threshold:
            return
        self.snapshot = {
            "index": self.last_applied,
            "term": self.log.term_at(self.last_applied),
            "state": self.state_machine.to_snapshot(),
        }
        self.log.compact(self.last_applied)
        self._trace("snapshot", index=self.last_applied,
                    log_entries=len(self.log))

    # ------------------------------------------------------------------
    # InstallSnapshot receiver (Raft §7)
    # ------------------------------------------------------------------

    def _on_install_snapshot(self, request):
        if request.term < self.current_term:
            return InstallSnapshotReply(term=self.current_term,
                                        follower_id=self.node_id,
                                        last_included_index=self.log.offset)
        self._become_follower(request.term, leader_id=request.leader_id)
        self._last_heartbeat = self.kernel.now
        if request.last_included_index <= self.commit_index:
            # Stale snapshot; we already have everything it contains.
            return InstallSnapshotReply(term=self.current_term,
                                        follower_id=self.node_id,
                                        last_included_index=self.commit_index)
        self.snapshot = {
            "index": request.last_included_index,
            "term": request.last_included_term,
            "state": request.data,
        }
        self.state_machine = KvStateMachine.from_snapshot(
            request.data, watch_hub=self.watch_hub
        )
        self.log.install_snapshot_boundary(request.last_included_index,
                                           request.last_included_term)
        self.commit_index = request.last_included_index
        self.last_applied = request.last_included_index
        self._trace("snapshot-installed", index=request.last_included_index)
        return InstallSnapshotReply(term=self.current_term,
                                    follower_id=self.node_id,
                                    last_included_index=request.last_included_index)

    def _lease_sweeper(self, term):
        while self.alive and self.role == LEADER and self.current_term == term:
            yield self.kernel.sleep(self.timings.lease_sweep)
            if not (self.alive and self.role == LEADER and self.current_term == term):
                return
            now = self.kernel.now
            expired = [
                lease_id
                for lease_id, lease in self.state_machine.leases.items()
                if lease["expires_at"] <= now
            ]
            for lease_id in expired:
                index = self.log.append(
                    self.current_term,
                    {"op": "lease_expire", "lease_id": lease_id, "now": now},
                )
                self._waiters[index] = (self.current_term, self.kernel.event())
            if expired:
                self._poke_replicators()
                self._advance_commit()

    # ------------------------------------------------------------------
    # Local (non-RPC) watch registration
    # ------------------------------------------------------------------

    def watch(self, prefix):
        """Register a watch on this node; see :mod:`repro.raftkv.watch`."""
        if not self.alive:
            raise NotLeader(self.node_id, self.leader_id)
        return self.watch_hub.add(prefix)
