"""Client facade over the replicated KV store.

Finds the leader (following redirect hints), retries across elections
and crashes, and tags every operation with a ``(client_id, op_id)``
pair — mutations carry it as the ``seq`` the state machine's session
table dedupes on (making retried writes exactly-once), reads carry it
for attribution — so a retried write that reached two logs is one
attributable operation, not two anonymous invocations. This is what
DLaaS components (controller, Guardian) use for status coordination.

When constructed with a ``history``
(:class:`repro.audit.history.HistoryRecorder`), every KV operation is
recorded Jepsen-style: ``ok`` on success, ``fail`` when it definitely
did not apply, ``info`` when a mutation's outcome is unknown (an
attempt reached the wire but the client saw no response — timeout,
retry exhaustion, or the client process dying mid-call). Recording is
direct method calls on the recorder; it adds no RPCs, sleeps, or RNG
draws, so the simulated timeline is bit-identical with it on or off.
"""

import itertools

from ..grpcnet.errors import RpcError, ServiceError
from .errors import NoLeader, NotLeader

_client_counter = itertools.count()


class EtcdClient:
    """Leader-following, retrying KV client."""

    def __init__(self, kernel, network, cluster, client_id=None,
                 max_attempts=60, retry_delay=0.1, rpc_deadline=0.5,
                 history=None):
        self.kernel = kernel
        self.network = network
        self.cluster = cluster
        self.client_id = client_id or f"etcd-client-{next(_client_counter)}"
        self.max_attempts = max_attempts
        self.retry_delay = retry_delay
        self.rpc_deadline = rpc_deadline
        self.history = history
        self._seq = 0
        self._leader_hint = None

    # ------------------------------------------------------------------
    # Public API (all are process generators: use ``yield from``)
    # ------------------------------------------------------------------

    def put(self, key, value, lease=None):
        command = {"op": "put", "key": key, "value": value}
        if lease is not None:
            command["lease"] = lease
            if self.history is not None:
                # Lease expiry deletes the key outside any client op;
                # the register model cannot audit it.
                self.history.mark_leased(key)
        return self._propose(command, record=("put", key, value))

    def delete(self, key):
        return self._propose({"op": "delete", "key": key},
                             record=("delete", key, None))

    def delete_prefix(self, prefix):
        if self.history is not None:
            # One op mutating many keys is outside the per-key model.
            self.history.mark_prefix(prefix)
        return self._propose({"op": "delete_prefix", "prefix": prefix})

    def cas(self, key, expected, value, lease=None):
        """Compare-and-swap; returns the state-machine result dict.

        With ``lease`` the winning swap atomically attaches the key to
        that lease, so a claimed key disappears when its claimant's
        lease expires — the slice-ownership primitive."""
        command = {"op": "cas", "key": key, "expected": expected,
                   "value": value}
        if lease is not None:
            command["lease"] = lease
            if self.history is not None:
                self.history.mark_leased(key)
        return self._propose(command, record=("cas", key, (expected, value)))

    def lease_grant(self, lease_id, ttl):
        return self._propose({"op": "lease_grant", "lease_id": lease_id,
                              "ttl": ttl, "now": self.kernel.now})

    def lease_keepalive(self, lease_id):
        return self._propose({"op": "lease_keepalive", "lease_id": lease_id,
                              "now": self.kernel.now})

    def lease_revoke(self, lease_id):
        return self._propose({"op": "lease_revoke", "lease_id": lease_id})

    def get(self, key):
        """Linearizable read via the leader; returns value or None."""
        op_id = self._next_seq()
        response = yield from self._call_leader(
            "read", {"key": key, "op_id": op_id},
            record=("get", key, None), op_id=op_id)
        return response["value"]

    def get_range(self, prefix):
        """All (key, value) pairs under ``prefix`` via the leader."""
        response = yield from self._call_leader("range", {"prefix": prefix})
        return response["kvs"]

    def watch(self, prefix, node_id=None):
        """Register a watch on a live node (default: any live node).

        Watches are served from a single node's apply stream; if that
        node crashes the watch channel closes and the caller should
        re-register, mirroring a dropped etcd watch stream.
        """
        candidates = [node_id] if node_id else self.cluster.node_ids
        for candidate in candidates:
            node = self.cluster.node(candidate)
            if node.alive:
                return node.watch(prefix)
        raise NoLeader("no live node to serve the watch")

    # ------------------------------------------------------------------

    def _next_seq(self):
        self._seq += 1
        return self._seq

    def _candidates(self):
        ids = list(self.cluster.node_ids)
        if self._leader_hint in ids:
            ids.remove(self._leader_hint)
            ids.insert(0, self._leader_hint)
        return ids

    def _propose(self, command, record=None):
        command = dict(command)
        command["client_id"] = self.client_id
        op_id = self._next_seq()
        command["seq"] = op_id
        return self._call_leader("propose", command, record=record,
                                 op_id=op_id)

    def _call_leader(self, method, payload, record=None, op_id=None):
        rec = None
        if self.history is not None and record is not None:
            op, key, args = record
            rec = self.history.invoke(self.client_id, op, key, args,
                                      op_id=op_id)
        mutation = method == "propose"
        ambiguous = False   # some attempt reached the wire unresolved
        in_flight = False   # an RPC is on the wire right now
        try:
            last_error = None
            for attempt in range(self.max_attempts):
                if attempt:
                    yield self.kernel.sleep(self.retry_delay)
                for node_id in self._candidates():
                    if rec is not None:
                        rec.attempts += 1
                    try:
                        in_flight = True
                        response = yield self.network.call(
                            node_id, method, payload,
                            deadline=self.rpc_deadline,
                            caller=self.client_id,
                        )
                        in_flight = False
                        self._leader_hint = node_id
                        if rec is not None:
                            # The session table makes retried mutations
                            # exactly-once, so earlier ambiguous attempts
                            # collapse into this single ok outcome.
                            self._record_ok(rec, response)
                        return response
                    except ServiceError as exc:
                        if isinstance(exc.cause, NotLeader):
                            in_flight = False  # rejected: did not apply
                            last_error = exc.cause
                            if exc.cause.leader_hint:
                                self._leader_hint = exc.cause.leader_hint
                            continue
                        raise
                    except NotLeader as exc:
                        in_flight = False  # rejected: did not apply
                        last_error = exc
                        if exc.leader_hint:
                            self._leader_hint = exc.leader_hint
                        continue
                    except RpcError as exc:
                        in_flight = False
                        if mutation:
                            # Timed out / lost after send: the command
                            # may sit in a log and commit later.
                            ambiguous = True
                        last_error = exc
                        continue
            raise NoLeader(f"{method} failed after {self.max_attempts} attempts: {last_error!r}")
        except BaseException as exc:
            # Covers retry exhaustion (NoLeader), app errors, and the
            # client process being killed mid-call (GeneratorExit).
            if rec is not None and rec.pending:
                if mutation and (ambiguous or in_flight):
                    self.history.info(rec, exc)
                else:
                    self.history.fail(rec, exc)
            raise

    def _record_ok(self, rec, response):
        if rec.op == "get":
            self.history.complete(rec, response.get("value"))
        else:
            self.history.complete(rec, dict(response))
