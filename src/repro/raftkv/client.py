"""Client facade over the replicated KV store.

Finds the leader (following redirect hints), retries across elections
and crashes, and tags every mutation with a ``(client_id, seq)`` pair so
the state machine's session table makes retried writes exactly-once.
This is what DLaaS components (controller, Guardian) use for status
coordination.
"""

import itertools

from ..grpcnet.errors import RpcError, ServiceError
from .errors import NoLeader, NotLeader

_client_counter = itertools.count()


class EtcdClient:
    """Leader-following, retrying KV client."""

    def __init__(self, kernel, network, cluster, client_id=None,
                 max_attempts=60, retry_delay=0.1, rpc_deadline=0.5):
        self.kernel = kernel
        self.network = network
        self.cluster = cluster
        self.client_id = client_id or f"etcd-client-{next(_client_counter)}"
        self.max_attempts = max_attempts
        self.retry_delay = retry_delay
        self.rpc_deadline = rpc_deadline
        self._seq = 0
        self._leader_hint = None

    # ------------------------------------------------------------------
    # Public API (all are process generators: use ``yield from``)
    # ------------------------------------------------------------------

    def put(self, key, value, lease=None):
        command = {"op": "put", "key": key, "value": value}
        if lease is not None:
            command["lease"] = lease
        return self._propose(command)

    def delete(self, key):
        return self._propose({"op": "delete", "key": key})

    def delete_prefix(self, prefix):
        return self._propose({"op": "delete_prefix", "prefix": prefix})

    def cas(self, key, expected, value):
        """Compare-and-swap; returns the state-machine result dict."""
        return self._propose({"op": "cas", "key": key, "expected": expected,
                              "value": value})

    def lease_grant(self, lease_id, ttl):
        return self._propose({"op": "lease_grant", "lease_id": lease_id,
                              "ttl": ttl, "now": self.kernel.now})

    def lease_keepalive(self, lease_id):
        return self._propose({"op": "lease_keepalive", "lease_id": lease_id,
                              "now": self.kernel.now})

    def lease_revoke(self, lease_id):
        return self._propose({"op": "lease_revoke", "lease_id": lease_id})

    def get(self, key):
        """Linearizable read via the leader; returns value or None."""
        response = yield from self._call_leader("read", {"key": key})
        return response["value"]

    def get_range(self, prefix):
        """All (key, value) pairs under ``prefix`` via the leader."""
        response = yield from self._call_leader("range", {"prefix": prefix})
        return response["kvs"]

    def watch(self, prefix, node_id=None):
        """Register a watch on a live node (default: any live node).

        Watches are served from a single node's apply stream; if that
        node crashes the watch channel closes and the caller should
        re-register, mirroring a dropped etcd watch stream.
        """
        candidates = [node_id] if node_id else self.cluster.node_ids
        for candidate in candidates:
            node = self.cluster.node(candidate)
            if node.alive:
                return node.watch(prefix)
        raise NoLeader("no live node to serve the watch")

    # ------------------------------------------------------------------

    def _next_seq(self):
        self._seq += 1
        return self._seq

    def _candidates(self):
        ids = list(self.cluster.node_ids)
        if self._leader_hint in ids:
            ids.remove(self._leader_hint)
            ids.insert(0, self._leader_hint)
        return ids

    def _propose(self, command):
        command = dict(command)
        command["client_id"] = self.client_id
        command["seq"] = self._next_seq()
        return self._call_leader("propose", command)

    def _call_leader(self, method, payload):
        last_error = None
        for attempt in range(self.max_attempts):
            if attempt:
                yield self.kernel.sleep(self.retry_delay)
            for node_id in self._candidates():
                try:
                    response = yield self.network.call(
                        node_id, method, payload,
                        deadline=self.rpc_deadline, caller=self.client_id,
                    )
                    self._leader_hint = node_id
                    return response
                except ServiceError as exc:
                    if isinstance(exc.cause, NotLeader):
                        last_error = exc.cause
                        if exc.cause.leader_hint:
                            self._leader_hint = exc.cause.leader_hint
                        continue
                    raise
                except NotLeader as exc:
                    last_error = exc
                    if exc.leader_hint:
                        self._leader_hint = exc.leader_hint
                    continue
                except RpcError as exc:
                    last_error = exc
                    continue
        raise NoLeader(f"{method} failed after {self.max_attempts} attempts: {last_error!r}")
