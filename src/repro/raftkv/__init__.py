"""Replicated key-value store: a from-scratch Raft implementation.

The simulated ETCD of the reproduction (paper §III.f): a 3-way
replicated KV store using Raft for consistency, with watches, leases,
compare-and-swap, and exactly-once client sessions. DLaaS status
updates flow controller → ETCD → Guardian → MongoDB through this
package.
"""

from .client import EtcdClient
from .cluster import EtcdCluster
from .errors import CompareFailed, LeaseNotFound, NoLeader, NotLeader, RaftError
from .log import RaftLog
from .node import CANDIDATE, FOLLOWER, LEADER, RaftNode, RaftTimings
from .rpc import AppendEntries, AppendEntriesReply, LogEntry, RequestVote, RequestVoteReply
from .statemachine import KvEvent, KvStateMachine
from .watch import Watch, WatchHub

__all__ = [
    "AppendEntries",
    "AppendEntriesReply",
    "CANDIDATE",
    "CompareFailed",
    "EtcdClient",
    "EtcdCluster",
    "FOLLOWER",
    "KvEvent",
    "KvStateMachine",
    "LEADER",
    "LeaseNotFound",
    "LogEntry",
    "NoLeader",
    "NotLeader",
    "RaftError",
    "RaftLog",
    "RaftNode",
    "RaftTimings",
    "RequestVote",
    "RequestVoteReply",
    "Watch",
    "WatchHub",
]
