"""Errors for the replicated key-value store."""


class RaftError(Exception):
    """Base class for Raft/KV errors."""


class NotLeader(RaftError):
    """The contacted node is not the leader; carries a leader hint."""

    def __init__(self, node_id, leader_hint=None):
        super().__init__(f"{node_id} is not the leader (hint: {leader_hint})")
        self.node_id = node_id
        self.leader_hint = leader_hint


class NoLeader(RaftError):
    """No leader could be found within the client's retry budget."""


class CompareFailed(RaftError):
    """A compare-and-swap found an unexpected current value."""

    def __init__(self, key, expected, actual):
        super().__init__(f"cas on {key!r}: expected {expected!r}, found {actual!r}")
        self.key = key
        self.expected = expected
        self.actual = actual


class LeaseNotFound(RaftError):
    """Operation referenced an unknown or expired lease."""
