"""Assembly of an N-node replicated KV cluster (the simulated ETCD).

DLaaS runs a 3-way replicated ETCD (paper §III.f); :class:`EtcdCluster`
builds that: N Raft nodes on the shared network, with helpers to find
the leader, crash/restart members, and await stability — the operations
the dependability experiments need.
"""

from .node import RaftNode, RaftTimings


class EtcdCluster:
    """N Raft nodes plus test/experiment conveniences."""

    def __init__(self, kernel, network, size=3, prefix="etcd", timings=None,
                 tracer=None, snapshot_threshold=500, metrics=None,
                 events=None):
        if size < 1:
            raise ValueError("cluster size must be >= 1")
        self.kernel = kernel
        self.network = network
        self.timings = timings or RaftTimings()
        node_ids = [f"{prefix}-{i}" for i in range(size)]
        self.nodes = {
            node_id: RaftNode(kernel, network, node_id, node_ids,
                              timings=self.timings, tracer=tracer,
                              snapshot_threshold=snapshot_threshold,
                              metrics=metrics, events=events)
            for node_id in node_ids
        }

    def start(self):
        for node in self.nodes.values():
            node.start()
        return self

    @property
    def node_ids(self):
        return list(self.nodes)

    def node(self, node_id):
        return self.nodes[node_id]

    def leader(self):
        """The current leader node, or None if there is none."""
        leaders = [n for n in self.nodes.values() if n.is_leader]
        if not leaders:
            return None
        # With a partition two nodes can both *claim* leadership; the
        # one with the highest term is the real one.
        return max(leaders, key=lambda n: n.current_term)

    def wait_for_leader(self, timeout=10.0):
        """Process generator: yields until a leader exists; returns it."""
        deadline = self.kernel.now + timeout
        while self.kernel.now < deadline:
            leader = self.leader()
            if leader is not None:
                return leader
            yield self.kernel.sleep(self.timings.heartbeat)
        raise TimeoutError(f"no leader within {timeout}s")

    def crash(self, node_id):
        self.nodes[node_id].crash()

    def restart(self, node_id):
        self.nodes[node_id].restart()

    def crash_leader(self):
        leader = self.leader()
        if leader is not None:
            leader.crash()
        return leader

    def alive_count(self):
        return sum(1 for n in self.nodes.values() if n.alive)

    def logs_consistent(self):
        """Check the Log Matching property across live nodes.

        Returns True when every pair of live nodes agrees on every index
        up to the shorter log's length *at matching terms*; used by
        property tests as the safety invariant.
        """
        live = [n for n in self.nodes.values() if n.alive]
        for i, a in enumerate(live):
            for b in live[i + 1 :]:
                upto = min(a.log.last_index, b.log.last_index,
                           a.commit_index, b.commit_index)
                start = max(a.log.offset, b.log.offset) + 1
                for index in range(start, upto + 1):
                    ea, eb = a.log.entry_at(index), b.log.entry_at(index)
                    if ea.term != eb.term or ea.command != eb.command:
                        return False
        return True

    def applied_states_agree(self):
        """All live nodes agree on data for keys applied everywhere."""
        live = [n for n in self.nodes.values() if n.alive]
        if len(live) < 2:
            return True
        floor = min(n.last_applied for n in live)
        # Replay-prefix equality: compare only what everyone applied.
        # Cheap approximation: compare full maps of the two most-applied
        # nodes when they applied the same amount.
        tops = sorted(live, key=lambda n: n.last_applied)[-2:]
        if tops[0].last_applied == tops[1].last_applied:
            return tops[0].state_machine.data == tops[1].state_machine.data
        return floor >= 0
