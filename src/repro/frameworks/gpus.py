"""GPU and interconnect specifications.

The paper's evaluation hardware: PCIe K80 and P100 boards on IBM Cloud
(Figs. 2–3), and the NVidia DGX-1 with SXM2 P100s, NVLink and HBM
(Fig. 3).

Calibration note: the model separates *compute* (``sustained_tflops``
times the model's ``compute_efficiency``) from a *memory-bandwidth
shortfall* (``hbm_shortfall``) that penalizes bandwidth-sensitive
models on PCIe parts. On a single GPU the DGX-1 advantage is purely
``model.memory_bw_sensitivity * gpu.hbm_shortfall`` — which reproduces
Fig. 3's 1-GPU column (InceptionV3 ≈3%, ResNet-50 ≈7%, VGG-16 ≈8%);
the 2-GPU column additionally pays PCIe-vs-NVLink allreduce cost.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class InterconnectSpec:
    """GPU-to-GPU fabric inside one machine (or between machines)."""

    name: str
    # Effective per-GPU bandwidth usable by collective ops, GB/s.
    allreduce_gb_s: float
    # Per-synchronization latency floor, seconds.
    latency_s: float


PCIE3 = InterconnectSpec(name="pcie3-x16", allreduce_gb_s=10.0, latency_s=0.0006)
NVLINK = InterconnectSpec(name="nvlink", allreduce_gb_s=46.0, latency_s=0.0002)
ETH_1G = InterconnectSpec(name="1gbe", allreduce_gb_s=0.117, latency_s=0.0015)
ETH_10G = InterconnectSpec(name="10gbe", allreduce_gb_s=1.15, latency_s=0.0008)
INFINIBAND = InterconnectSpec(name="infiniband-edr", allreduce_gb_s=11.0, latency_s=0.0003)

INTERCONNECTS = {i.name: i for i in (PCIE3, NVLINK, ETH_1G, ETH_10G, INFINIBAND)}


@dataclass(frozen=True)
class GpuSpec:
    """One GPU device type."""

    name: str
    # Dense-convolution throughput a tuned framework sustains, TFLOPS.
    sustained_tflops: float
    memory_gb: float
    # Fractional throughput loss a *fully* bandwidth-bound model sees
    # relative to the HBM/SXM2 reference part (0 for SXM2 modules).
    hbm_shortfall: float


# One K80 board exposes two GK210 dies; the paper counts "PCIe GPUs",
# which operationally means one CUDA device = one die.
K80 = GpuSpec(name="k80", sustained_tflops=2.0, memory_gb=12.0, hbm_shortfall=0.0)

P100_PCIE = GpuSpec(name="p100-pcie", sustained_tflops=8.0, memory_gb=16.0,
                    hbm_shortfall=0.09)

P100_SXM2 = GpuSpec(name="p100-sxm2", sustained_tflops=8.0, memory_gb=16.0,
                    hbm_shortfall=0.0)

V100_SXM2 = GpuSpec(name="v100-sxm2", sustained_tflops=13.0, memory_gb=16.0,
                    hbm_shortfall=0.0)

GPU_CATALOGUE = {g.name: g for g in (K80, P100_PCIE, P100_SXM2, V100_SXM2)}


def get_gpu(name):
    try:
        return GPU_CATALOGUE[name.lower()]
    except KeyError:
        raise KeyError(f"unknown GPU {name!r}; have {sorted(GPU_CATALOGUE)}") from None


def achieved_tflops(gpu, model):
    """Effective TFLOPS of ``gpu`` running ``model``."""
    bandwidth_factor = 1.0 - model.memory_bw_sensitivity * gpu.hbm_shortfall
    return gpu.sustained_tflops * model.compute_efficiency * bandwidth_factor
