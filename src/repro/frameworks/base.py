"""DL framework adapters: Caffe, TensorFlow, PyTorch, Horovod.

DLaaS is framework-agnostic: it keeps a Docker image per framework and
treats the learner as a black box (paper §III.a). What the platform
*does* need to know — and what these adapters capture — is the image to
pull, how long the runtime takes to initialize (framework startup
dominates learner recovery time in Fig. 4), how gradient synchronization
is organized, and how well communication overlaps with compute.
"""

from dataclasses import dataclass

PARAMETER_SERVER = "parameter-server"
ALLREDUCE = "allreduce"


@dataclass(frozen=True)
class FrameworkSpec:
    """One supported DL framework."""

    name: str
    version: str
    image: str
    image_size_mb: float
    # Seconds from container start to first training step (CUDA init,
    # graph construction, data pipeline warmup).
    startup_time: float
    # Fraction of communication hidden under backward compute.
    overlap_fraction: float
    # Fixed per-step coordination cost with >1 GPU, seconds per extra
    # GPU, when running over PCIe/Ethernet (session-run and variable
    # scatter costs). NCCL/NVLink builds avoid most of it.
    sync_overhead_per_gpu: float
    distribution_mode: str
    supports_multi_node: bool

    def sync_overhead(self, total_gpus, interconnect):
        if total_gpus <= 1:
            return 0.0
        if interconnect.name == "nvlink":
            return 0.1 * self.sync_overhead_per_gpu * (total_gpus - 1)
        return self.sync_overhead_per_gpu * (total_gpus - 1)


CAFFE = FrameworkSpec(
    name="caffe",
    version="1.0",
    image="dlaas/caffe:1.0-gpu",
    image_size_mb=2600.0,
    startup_time=6.0,
    overlap_fraction=0.35,
    sync_overhead_per_gpu=0.004,
    distribution_mode=ALLREDUCE,  # single-node tree reduction
    supports_multi_node=False,
)

TENSORFLOW = FrameworkSpec(
    name="tensorflow",
    version="1.5",
    image="dlaas/tensorflow:1.5-gpu",
    image_size_mb=3400.0,
    startup_time=9.0,
    overlap_fraction=0.65,
    sync_overhead_per_gpu=0.008,
    distribution_mode=PARAMETER_SERVER,
    supports_multi_node=True,
)

PYTORCH = FrameworkSpec(
    name="pytorch",
    version="0.4",
    image="dlaas/pytorch:0.4-gpu",
    image_size_mb=2900.0,
    startup_time=7.0,
    overlap_fraction=0.55,
    sync_overhead_per_gpu=0.003,
    distribution_mode=ALLREDUCE,
    supports_multi_node=True,
)

HOROVOD = FrameworkSpec(
    name="horovod",
    version="0.13",
    image="dlaas/horovod-tensorflow:0.13",
    image_size_mb=3600.0,
    startup_time=11.0,  # MPI wire-up on top of TF init
    overlap_fraction=0.65,
    sync_overhead_per_gpu=0.002,
    distribution_mode=ALLREDUCE,
    supports_multi_node=True,
)

FRAMEWORKS = {f.name: f for f in (CAFFE, TENSORFLOW, PYTORCH, HOROVOD)}


def get_framework(name):
    try:
        return FRAMEWORKS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown framework {name!r}; have {sorted(FRAMEWORKS)}") from None
