"""Model zoo: the CNN benchmarks of the paper's evaluation.

Sizes and FLOP counts follow the standard references the paper cites
(Simonyan & Zisserman 2014; He et al. 2015; Szegedy et al. 2015;
jcjohnson/cnn-benchmarks). ``memory_bw_sensitivity`` captures how much
a model's achieved throughput depends on memory bandwidth rather than
raw FLOPS — large dense layers (VGG) are bandwidth-hungry, while
Inception's small factored convolutions are compute-dense. This is the
lever that separates HBM-equipped DGX-1 GPUs from PCIe cards at equal
nominal FLOPS (Fig. 3).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """One trainable CNN architecture."""

    name: str
    params_millions: float
    # Forward+backward GFLOPs per image at the standard input size.
    gflops_per_image: float
    # Typical serialized input size per training image (JPEG), KB.
    image_kb: float
    # 0..1: fraction of a GPU's sustained dense throughput this model's
    # operator mix achieves (large GEMMs ~0.7; many small convolutions
    # much less).
    compute_efficiency: float
    # 0..1: how bandwidth-bound the model is; scales the HBM-vs-PCIe
    # throughput gap. See repro.frameworks.gpus.
    memory_bw_sensitivity: float
    default_batch_per_gpu: int
    # Stored activations per training image (forward tensors kept for
    # the backward pass), MB. Drives the GPU-memory fit check.
    activation_mb_per_image: float = 50.0

    @property
    def gradient_mb(self):
        """Gradient (= parameter) payload exchanged per step, MB (fp32)."""
        return self.params_millions * 4.0

    @property
    def checkpoint_mb(self):
        """Weights + optimizer state written per checkpoint, MB."""
        return self.params_millions * 4.0 * 2.0


VGG16 = ModelSpec(
    name="vgg16",
    params_millions=138.0,
    gflops_per_image=46.4,  # 15.5 fwd x ~3 for fwd+bwd
    image_kb=110.0,
    compute_efficiency=0.7,
    memory_bw_sensitivity=0.72,
    default_batch_per_gpu=32,
    activation_mb_per_image=220.0,
)

RESNET50 = ModelSpec(
    name="resnet50",
    params_millions=25.6,
    gflops_per_image=11.8,
    image_kb=110.0,
    compute_efficiency=0.35,
    memory_bw_sensitivity=0.62,
    default_batch_per_gpu=64,
    activation_mb_per_image=103.0,
)

INCEPTIONV3 = ModelSpec(
    name="inceptionv3",
    params_millions=23.9,
    gflops_per_image=17.1,
    image_kb=110.0,
    compute_efficiency=0.3,
    memory_bw_sensitivity=0.30,
    default_batch_per_gpu=64,
    activation_mb_per_image=90.0,
)

ALEXNET = ModelSpec(
    name="alexnet",
    params_millions=61.0,
    gflops_per_image=2.1,
    image_kb=110.0,
    compute_efficiency=0.6,
    memory_bw_sensitivity=0.80,
    default_batch_per_gpu=128,
    activation_mb_per_image=12.0,
)

GOOGLENET = ModelSpec(
    name="googlenet",
    params_millions=6.8,
    gflops_per_image=4.5,
    image_kb=110.0,
    compute_efficiency=0.3,
    memory_bw_sensitivity=0.35,
    default_batch_per_gpu=96,
    activation_mb_per_image=40.0,
)

MODEL_ZOO = {m.name: m for m in (VGG16, RESNET50, INCEPTIONV3, ALEXNET, GOOGLENET)}


def training_memory_mb(model, batch_per_gpu):
    """GPU memory a training process needs, MB.

    Weights + gradients + optimizer state (3x parameters, fp32) plus
    per-image stored activations times the batch — the standard quick
    estimate users apply when picking a batch size for a given card.
    """
    batch = batch_per_gpu or model.default_batch_per_gpu
    weights_mb = model.params_millions * 4.0 * 3.0
    return weights_mb + batch * model.activation_mb_per_image


def fits_on_gpu(model, batch_per_gpu, gpu):
    """True if the training process fits in ``gpu``'s memory."""
    return training_memory_mb(model, batch_per_gpu) <= gpu.memory_gb * 1024.0


def get_model(name):
    try:
        return MODEL_ZOO[name.lower()]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; have {sorted(MODEL_ZOO)}") from None
