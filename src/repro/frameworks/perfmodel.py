"""Analytic throughput model: step time = compute ∥ input + visible comm.

This is the measurement substrate for the paper's evaluation figures.
Per training step:

* compute — batch FLOPs over the GPU's achieved FLOPS for the model;
* communication — ring-allreduce gradient exchange over the node's GPU
  fabric (and Ethernet across learners), partially hidden under
  backward compute per the framework's overlap fraction, plus a fixed
  per-GPU coordination cost;
* input pipeline — streamed training data (from the object store over
  1GbE in the paper's setup) can bound the step if slower than compute;
* platform taxes — containerization/network-overlay overheads per
  platform, plus a small deterministic run-to-run jitter term (the
  paper's Fig. 2 numbers bounce between 0.3% and 5.9% without
  structure; the jitter reproduces that texture deterministically).
"""

import hashlib
from dataclasses import dataclass

from .gpus import ETH_1G, achieved_tflops


@dataclass(frozen=True)
class PlatformProfile:
    """Execution environment taxes."""

    name: str
    # Fractional CPU steal on the compute path (docker daemon, kubelet,
    # helper containers sharing the host).
    compute_tax: float
    # Fractional slowdown of the streamed-input path (overlay network,
    # FUSE/COS connector in a container).
    input_tax: float
    # Run-to-run variance amplitude (uniform slowdown in [0, jitter)).
    jitter: float


BARE_METAL = PlatformProfile(name="bare-metal", compute_tax=0.0, input_tax=0.0,
                             jitter=0.004)
DLAAS = PlatformProfile(name="dlaas", compute_tax=0.012, input_tax=0.06,
                        jitter=0.042)
DGX1 = PlatformProfile(name="dgx-1", compute_tax=0.0, input_tax=0.0,
                       jitter=0.004)


@dataclass(frozen=True)
class WorkloadConfig:
    """One benchmark point: model x framework x hardware layout."""

    model: object  # ModelSpec
    framework: object  # FrameworkSpec
    gpu: object  # GpuSpec
    gpus_per_learner: int = 1
    learners: int = 1
    batch_per_gpu: int = 0  # 0 -> model default
    intra_node: object = None  # InterconnectSpec; required if gpus > 1
    inter_node: object = ETH_1G
    # Bytes/s available for streaming training data into each learner.
    input_bandwidth: float = 117_000_000.0  # ~1GbE payload rate

    @property
    def batch(self):
        return self.batch_per_gpu or self.model.default_batch_per_gpu

    @property
    def total_gpus(self):
        return self.gpus_per_learner * self.learners


def _jitter_factor(platform, config):
    """Deterministic pseudo-random jitter for one (platform, config)."""
    key = "|".join([
        platform.name, config.model.name, config.framework.name, config.gpu.name,
        str(config.gpus_per_learner), str(config.learners), str(config.batch),
    ])
    digest = hashlib.sha256(key.encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
    return 1.0 + platform.jitter * unit


def compute_time(config):
    """Pure GPU compute seconds per step (one learner's batch slice)."""
    tflops = achieved_tflops(config.gpu, config.model)
    return config.batch * config.model.gflops_per_image / (tflops * 1000.0)


def communication_time(config):
    """Visible (non-overlapped) gradient-sync seconds per step."""
    gradient_gb = config.model.gradient_mb / 1000.0
    total = 0.0
    if config.gpus_per_learner > 1:
        fabric = config.intra_node
        if fabric is None:
            raise ValueError("multi-GPU config needs an intra_node interconnect")
        g = config.gpus_per_learner
        total += 2.0 * (g - 1) / g * gradient_gb / fabric.allreduce_gb_s
        total += fabric.latency_s * 2 * (g - 1)
    if config.learners > 1:
        n = config.learners
        # Both synchronization topologies move 2(n-1)/n of the gradient
        # per worker; they differ in latency rounds: a (sharded,
        # co-located) parameter server needs one push + one pull, a ring
        # allreduce needs 2(n-1) neighbor exchanges.
        total += 2.0 * (n - 1) / n * gradient_gb / config.inter_node.allreduce_gb_s
        if config.framework.distribution_mode == "parameter-server":
            total += config.inter_node.latency_s * 2
        else:
            total += config.inter_node.latency_s * 2 * (n - 1)
    visible = total * (1.0 - config.framework.overlap_fraction)
    reference = config.intra_node or config.inter_node
    visible += config.framework.sync_overhead(config.total_gpus, reference)
    return visible


def input_time(config, platform):
    """Seconds to stream one step's training data into a learner."""
    step_bytes = config.batch * config.gpus_per_learner * config.model.image_kb * 1024.0
    return step_bytes * (1.0 + platform.input_tax) / config.input_bandwidth


def step_time(config, platform):
    """Seconds per training step on ``platform``."""
    compute = compute_time(config) * (1.0 + platform.compute_tax)
    comm = communication_time(config)
    stream = input_time(config, platform)
    # Input pipelines prefetch: streaming hides under compute unless it
    # is the bottleneck.
    return max(compute + comm, stream) * _jitter_factor(platform, config)


def images_per_sec(config, platform):
    """Aggregate training throughput (the paper's metric)."""
    return config.batch * config.total_gpus / step_time(config, platform)


def overhead_percent(config, platform, baseline_platform, baseline_config=None):
    """Fig. 2/3 metric: % throughput lost vs a baseline platform."""
    base = images_per_sec(baseline_config or config, baseline_platform)
    ours = images_per_sec(config, platform)
    return (base - ours) / base * 100.0
