"""The simulated training loop a learner container executes.

Models exactly what the platform observes of real user training code:
framework startup, a stream of steps whose duration comes from the
performance model, periodic progress lines, user-configured periodic
checkpoints to the object store, and resume-from-latest-checkpoint
after a crash (paper §III.g–h).
"""

import math

from .perfmodel import step_time


def synthetic_loss(learning_rate, step, initial=2.5, floor=0.08,
                   optimal_lr=0.05):
    """Deterministic training-loss curve for a given learning rate.

    Captures the qualitative behaviour hyper-parameter sweeps explore:
    the effective convergence rate peaks at ``optimal_lr`` and falls off
    on both sides, and a grossly oversized learning rate diverges. Not a
    model of any real optimizer — just a reproducible, comparable
    quality signal for jobs in the simulation.
    """
    if learning_rate <= 0:
        return initial
    if learning_rate > 8 * optimal_lr:
        # Divergence: loss grows with steps.
        return initial * (1.0 + (learning_rate / optimal_lr) * step / 2000.0)
    ratio = learning_rate / optimal_lr
    rate = ratio * math.exp(1.0 - ratio)  # peaks at 1.0 when lr == optimal
    return floor + (initial - floor) * math.exp(-rate * step / 400.0)


class CheckpointPolicy:
    """User-configured checkpointing (paper §III.g).

    ``interval`` is simulated seconds between checkpoints; 0 disables
    checkpointing, which makes every crash lose the whole run so far —
    the tradeoff the checkpoint ablation bench sweeps.
    """

    def __init__(self, interval=300.0):
        if interval < 0:
            raise ValueError("checkpoint interval must be >= 0")
        self.interval = interval

    @property
    def enabled(self):
        return self.interval > 0


class CheckpointStore:
    """Learner-side view of checkpoints in the object store."""

    def __init__(self, object_store, bucket, prefix, credentials):
        self.object_store = object_store
        self.bucket = bucket
        self.prefix = prefix
        self.credentials = credentials

    def save(self, step, model):
        """Process generator: upload one checkpoint; returns its key."""
        key = f"{self.prefix}/ckpt-{step:010d}"
        size = int(model.checkpoint_mb * 1_000_000)
        yield from self.object_store.upload(self.bucket, key, self.credentials,
                                            size=size, payload={"step": step})
        return key

    def latest_step(self):
        """Step number of the newest checkpoint, or 0 if none exists."""
        keys = self.object_store.list_objects(self.bucket, self.credentials,
                                              prefix=self.prefix + "/ckpt-")
        if not keys:
            return 0
        newest = max(keys)
        return int(newest.rsplit("-", 1)[1])

    def restore(self, model):
        """Process generator: download the newest checkpoint; returns step."""
        step = self.latest_step()
        if step == 0:
            return 0
        key = f"{self.prefix}/ckpt-{step:010d}"
        yield from self.object_store.download(self.bucket, key, self.credentials)
        return step


class TrainingRun:
    """One learner's training loop over the simulated clock.

    Restartable: constructing a new TrainingRun against the same
    checkpoint store resumes from the latest checkpoint, repeating any
    steps after it — the "work lost is bounded by the checkpoint
    interval" behaviour of §III.h.
    """

    def __init__(self, kernel, config, platform, target_steps,
                 checkpoint_policy=None, checkpoint_store=None,
                 progress_callback=None, progress_every=50, on_started=None):
        if target_steps <= 0:
            raise ValueError("target_steps must be positive")
        self.kernel = kernel
        self.config = config
        self.platform = platform
        self.target_steps = target_steps
        self.checkpoint_policy = checkpoint_policy or CheckpointPolicy(interval=0)
        self.checkpoint_store = checkpoint_store
        self.progress_callback = progress_callback
        self.progress_every = progress_every
        self.on_started = on_started
        self.step = 0
        self.steps_executed = 0
        self.checkpoints_written = 0

    @property
    def step_seconds(self):
        return step_time(self.config, self.platform)

    def run(self, stop_event=None):
        """Process generator: startup, resume, then step until done.

        ``stop_event`` (a triggered-when-stopping kernel event) makes
        the loop exit cleanly at the next step boundary with exit code
        143, the graceful-termination path.
        """
        yield self.kernel.sleep(self.config.framework.startup_time)
        if self.checkpoint_store is not None and self.checkpoint_policy.enabled:
            self.step = yield from self.checkpoint_store.restore(self.config.model)
        else:
            self.step = 0
        if self.on_started is not None:
            # Framework initialized and checkpoint restored: training is
            # now actively stepping (the "recovered" instant of Fig. 4).
            self.on_started(self.step, self.kernel.now)
        last_checkpoint_time = self.kernel.now
        last_reported = -1
        seconds = self.step_seconds
        while self.step < self.target_steps:
            if stop_event is not None and stop_event.triggered:
                return 143
            yield self.kernel.sleep(seconds)
            self.step += 1
            self.steps_executed += 1
            if self.progress_callback is not None and \
                    self.step % self.progress_every == 0:
                self.progress_callback(self.step, self.kernel.now)
                last_reported = self.step
            due = (
                self.checkpoint_policy.enabled
                and self.checkpoint_store is not None
                and self.kernel.now - last_checkpoint_time
                >= self.checkpoint_policy.interval
            )
            if due:
                yield from self.checkpoint_store.save(self.step, self.config.model)
                self.checkpoints_written += 1
                last_checkpoint_time = self.kernel.now
        if self.progress_callback is not None and self.step != last_reported:
            self.progress_callback(self.step, self.kernel.now)
        return 0
