"""Simulated RPC server: named methods dispatched as processes."""

import inspect

from ..sim.errors import ProcessKilled
from .errors import MethodNotFound, ServiceError
from .payload import deep_copy_payload


class Server:
    """An addressable RPC endpoint hosting named method handlers.

    Handlers may be plain callables (instantaneous in simulated time) or
    generator functions (which may sleep, call other services, etc.).
    Either way each request runs as its own kernel process, so a slow
    handler never blocks the server.

    Stopping the server models a process crash: in-flight handlers are
    killed (callers see ``Unavailable``) and new calls are refused until
    :meth:`start` is called again.
    """

    def __init__(self, kernel, network, address, service_time=0.0,
                 copy_responses=False):
        self.kernel = kernel
        self.network = network
        self.address = address
        self.service_time = service_time
        # Single-serialization boundary: when True, every response is
        # deep-copied once here, and handlers may return references to
        # internal state (e.g. the docstore's copy-elided reads).
        self.copy_responses = copy_responses
        self.running = False
        self._methods = {}
        self._inflight = set()
        self.requests_served = 0

    def add_method(self, name, handler):
        self._methods[name] = handler
        return self

    def add_service(self, obj, prefix=""):
        """Register every public method of ``obj`` ending in ``_rpc``.

        The RPC method name is the Python name minus the ``_rpc``
        suffix, optionally prefixed (``prefix="Trainer."``).
        """
        for attr in dir(obj):
            if attr.startswith("_") or not attr.endswith("_rpc"):
                continue
            self.add_method(prefix + attr[: -len("_rpc")], getattr(obj, attr))
        return self

    def start(self):
        if self.running:
            return self
        self.running = True
        if self.network.lookup(self.address) is not self:
            self.network.register(self.address, self)
        return self

    def stop(self):
        """Crash/stop: kill in-flight handlers, refuse new calls."""
        if not self.running:
            return self
        self.running = False
        self.network.unregister(self.address)
        inflight, self._inflight = self._inflight, set()
        for process in inflight:
            process.kill(f"server {self.address} stopped")
        return self

    def dispatch(self, method, request):
        """Run ``method`` for one request; returns the handler process."""
        # Server-side delivery count: a duplicated message shows up here
        # twice while the caller's request counter moves once — the flow
        # anomaly the differential detector keys on.
        self.network.observe_dispatch(self.address)
        handler = self._methods.get(method)
        process = self.kernel.spawn(
            self._serve(handler, method, request),
            name=f"{self.address}/{method}" if self.kernel.debug else "serve",
        )
        self._inflight.add(process)
        # The completion callback receives the process itself, so the
        # bound discard needs no per-call closure.
        process.add_callback(self._inflight.discard)
        return process

    def _serve(self, handler, method, request):
        if handler is None:
            raise MethodNotFound(f"{self.address} has no method {method!r}")
        if self.service_time:
            yield self.kernel.sleep(self.service_time)
        try:
            if inspect.isgeneratorfunction(handler):
                response = yield from handler(request)
            else:
                response = handler(request)
                if inspect.isgenerator(response):
                    response = yield from response
        except ProcessKilled:
            # Server crash mid-handler; the caller must see Unavailable,
            # not a remote application error.
            raise
        except Exception as exc:
            raise ServiceError(method, exc) from exc
        self.requests_served += 1
        if self.copy_responses:
            response = deep_copy_payload(response)
        return response
