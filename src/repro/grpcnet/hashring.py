"""Consistent-hash ring for per-key endpoint routing (FfDL-style).

The sharded API tier routes every tenant's requests to one replica so
per-tenant state (admission buckets, fair queues, quota reservations)
lives on a single instance instead of being sliced across the pool.
The ring is the standard construction: each node is hashed onto the
unit circle at ``vnodes`` points, a key is owned by the first node
clockwise of its hash, and adding or removing one node moves only the
keys in the arcs it gains or loses — about ``K/n`` of them, never a
full reshuffle.

Determinism matters more here than in a production ring: routing
decisions land in the simulated timeline, so two processes building
the same ring must route identically. All positions come from
``hashlib.sha256`` (never the salted builtin ``hash``), ties break on
the node name, and iteration orders derive from the sorted position
array — no dict-order dependence anywhere.
"""

import bisect
import hashlib


def stable_hash(text):
    """A process-stable 64-bit hash of ``text`` (sha256 prefix)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Hash ring over named nodes with virtual-node smoothing."""

    def __init__(self, nodes=(), vnodes=64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.vnodes = vnodes
        self._positions = []  # sorted list of (point, node)
        self._nodes = set()
        for node in nodes:
            self.add(node)

    def __len__(self):
        return len(self._nodes)

    def __contains__(self, node):
        return node in self._nodes

    @property
    def nodes(self):
        return sorted(self._nodes)

    def _points(self, node):
        return [stable_hash(f"{node}#{i}") for i in range(self.vnodes)]

    def add(self, node):
        """Insert ``node`` at its ``vnodes`` ring positions (idempotent)."""
        if node in self._nodes:
            return self
        self._nodes.add(node)
        for point in self._points(node):
            # Tie-break on the node name so two nodes hashing onto the
            # same point order identically in every process.
            bisect.insort(self._positions, (point, node))
        return self

    def remove(self, node):
        """Remove ``node``; keys it owned move to their next successor."""
        if node not in self._nodes:
            return self
        self._nodes.discard(node)
        self._positions = [(p, n) for p, n in self._positions if n != node]
        return self

    def owner(self, key):
        """The node owning ``key``, or None on an empty ring."""
        if not self._positions:
            return None
        index = bisect.bisect_right(self._positions,
                                    (stable_hash(str(key)), ""))
        if index == len(self._positions):
            index = 0
        return self._positions[index][1]

    def ordered(self, key):
        """Every node, in ring order from ``key``'s position.

        The first entry is the owner; the rest are its successors —
        the natural fail-over order when the owner is down (a key's
        requests spill to the same successor every time, keeping the
        spilled state together too).
        """
        if not self._positions:
            return []
        start = bisect.bisect_right(self._positions,
                                    (stable_hash(str(key)), ""))
        seen = set()
        out = []
        for offset in range(len(self._positions)):
            _point, node = self._positions[(start + offset)
                                           % len(self._positions)]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) == len(self._nodes):
                    break
        return out

    def assignments(self, keys):
        """Map ``keys`` to owners — handy for movement accounting."""
        return {key: self.owner(key) for key in keys}
