"""The simulated message fabric connecting microservices.

Models what DLaaS gets from GRPC over the datacenter network: named
endpoints, per-message latency with jitter, optional message loss, and
network partitions for dependability experiments. Services register a
:class:`~repro.grpcnet.server.Server` under an address; clients invoke
``network.call(address, method, request)``.
"""

from ..sim.errors import ProcessKilled, SimError
from ..sim.events import PENDING, Event
from .errors import DeadlineExceeded, MethodNotFound, RpcError, Unavailable
from .payload import deep_copy_payload


class LatencyModel:
    """Per-hop latency: base plus uniform jitter, seconds."""

    def __init__(self, base=0.0005, jitter=0.0005):
        if base < 0 or jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base = base
        self.jitter = jitter

    def sample(self, rng):
        return self.base + rng.random() * self.jitter


class EndpointImpairment:
    """Gray-fault knobs for a single endpoint (a degraded link/NIC).

    All-zero means healthy; the fabric only consults an instance for
    endpoints present in ``Network._impaired``, so healthy traffic
    never pays for the feature (no extra RNG draws, no extra sleeps —
    the simulated timeline is bit-identical with nothing degraded).
    """

    __slots__ = ("extra_latency", "loss", "duplicate")

    def __init__(self, extra_latency=0.0, loss=0.0, duplicate=0.0):
        if extra_latency < 0:
            raise ValueError(f"extra_latency must be >= 0: {extra_latency}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {loss}")
        if not 0.0 <= duplicate <= 1.0:
            raise ValueError(f"duplicate must be in [0, 1]: {duplicate}")
        self.extra_latency = extra_latency
        self.loss = loss
        self.duplicate = duplicate


class _DeadlineCall(Event):
    """The call-vs-deadline race, wired as a plain event.

    Replaces the per-call wrapper process: the caller yields this event,
    which succeeds/fails with the underlying call or fails with
    :class:`DeadlineExceeded` when the timer wins (killing the in-flight
    call). One event instead of a Process + AnyOf per deadline'd RPC.
    """

    __slots__ = ("_process", "_timer", "_address", "_method", "_deadline")

    def __init__(self, network, process, deadline, address, method):
        Event.__init__(self, network.kernel)
        self._process = process
        self._address = address
        self._method = method
        self._deadline = deadline
        self._timer = network.kernel.sleep(deadline)
        process.add_callback(self._on_process)
        self._timer.add_callback(self._on_timer)

    def _on_process(self, process):
        if self.state is not PENDING:
            return
        self._timer.cancel()  # lazy heap deletion; no-op on the slow path
        if process.state == "failed":
            self.fail(process.exception)
        else:
            self.succeed(process.value)

    def _on_timer(self, _timer):
        if self.state is not PENDING:
            return  # the call finished first (slow path: timer still fires)
        self._process.kill("deadline exceeded")
        self.fail(DeadlineExceeded(
            f"{self._address}/{self._method} after {self._deadline}s"))


class _RemoteCall(Event):
    """An RPC whose server lives on another shard.

    The request leaves as an ``rpc-req`` boundary message (payload
    serialized once at the port); this event settles when the matching
    ``rpc-res`` arrives at a later window — or when the local deadline
    timer wins, in which case a late response is dropped and counted.
    """

    __slots__ = ("_network", "_corr", "_address", "_method", "_deadline",
                 "_timer", "_started")

    def __init__(self, network, corr, address, method, deadline):
        Event.__init__(self, network.kernel)
        self._network = network
        self._corr = corr
        self._address = address
        self._method = method
        self._deadline = deadline
        self._started = network.kernel.now
        if deadline is not None:
            self._timer = network.kernel.sleep(deadline)
            self._timer.add_callback(self._on_timer)
        else:
            self._timer = None

    def _on_timer(self, _timer):
        if self.state is not PENDING:
            return
        self._network._abandon_remote(self._corr)
        self._settle_metrics("DeadlineExceeded")
        self.fail(DeadlineExceeded(
            f"{self._address}/{self._method} after {self._deadline}s "
            "(cross-shard)"))

    def complete(self, ok, value, error):
        if self.state is not PENDING:
            return
        if self._timer is not None:
            self._timer.cancel()
        if ok:
            self._settle_metrics("ok")
            self.succeed(value)
        else:
            exc = _decode_error(error, self._method)
            self._network.calls_failed += 1
            self._settle_metrics(type(exc).__name__)
            self.fail(exc)

    def _settle_metrics(self, code):
        self._network._observe_call(self._method, code, self._started,
                                    self._address)


def _encode_error(exc):
    """Picklable form of a server-side failure: (class name, message)."""
    return (type(exc).__name__, str(exc))


def _decode_error(spec, method):
    name, message = spec
    for cls in (Unavailable, DeadlineExceeded, MethodNotFound):
        if cls.__name__ == name:
            return cls(message)
    # Handler application errors arrive as the ServiceError the server
    # wrapped them in; anything unrecognized degrades to the base class
    # with its origin preserved in the message.
    return RpcError(f"{method} failed on remote shard: {name}: {message}")


class Network:
    """Registry of endpoints plus the latency/partition/loss model."""

    def __init__(self, kernel, latency=None, loss_rate=0.0, tracer=None,
                 metrics=None, debug_freeze=False):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        self.kernel = kernel
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self.tracer = tracer
        # Debug mode for the single-serialization fast path: payloads
        # travel by reference, which is only sound if no handler mutates
        # a request in place. When enabled, every request is snapshotted
        # at send time and verified unchanged after the handler ran.
        self.debug_freeze = debug_freeze
        self._servers = {}
        self._partitions = set()
        # Gray faults: (src, dst) directions blocked one-way (a count
        # per direction so overlapping injections stack and revert
        # independently), and per-endpoint impairments (added latency /
        # loss / duplication). Impairments are kept as a *stack* of
        # layers per endpoint; ``_impaired`` holds the composed hot-path
        # view consulted on every call. The impairment RNG is a
        # dedicated stream created lazily on the first degrade() so
        # healthy runs draw nothing from it.
        self._oneway = {}
        self._impairment_layers = {}
        self._impaired = {}
        self._gray_rng = None
        self._rng = kernel.rng("network")
        self.calls_total = 0
        self.calls_failed = 0
        # Cross-shard routing (repro.sim.shard): addresses owned by
        # other shards, and the in-flight correlation table of calls
        # awaiting an rpc-res boundary message.
        self._port = None
        self._remotes = {}
        self._pending_remote = {}
        self._remote_corr = 0
        self.remote_calls_total = 0
        self.remote_late_responses = 0
        if metrics is not None:
            self._m_calls = metrics.counter(
                "rpc_client_calls_total", ("method", "code"),
                help="RPC invocations by method and outcome code")
            self._m_duration = metrics.histogram(
                "rpc_client_duration_seconds", ("method",),
                help="RPC wall time from initiation to response")
            # Per-endpoint families feeding the differential detector
            # (repro.monitoring.differential): plain counters — a
            # windowed mean needs only a count and a duration sum, at a
            # fraction of a histogram's scrape cost per endpoint.
            self._m_endpoint_calls = metrics.counter(
                "rpc_endpoint_requests_total", ("endpoint", "method", "code"),
                help="RPC invocations by target endpoint and outcome")
            self._m_endpoint_latency = metrics.counter(
                "rpc_endpoint_latency_seconds_total", ("endpoint", "method"),
                help="Summed RPC wall time by target endpoint")
            self._m_handled = metrics.counter(
                "rpc_server_handled_total", ("endpoint",),
                help="Handler dispatches at each endpoint (counts "
                     "duplicate deliveries the caller never sees)")
        else:
            self._m_calls = self._m_duration = None
            self._m_endpoint_calls = self._m_endpoint_latency = None
            self._m_handled = None
        # labels() resolved once per (method, code) / method — the
        # children are stable, and the per-RPC lookup cost is measurable.
        self._call_children = {}
        self._duration_children = {}
        self._endpoint_children = {}
        self._endpoint_latency_children = {}
        self._handled_children = {}

    # ------------------------------------------------------------------
    # Endpoint registry
    # ------------------------------------------------------------------

    def register(self, address, server):
        if address in self._servers:
            raise ValueError(f"address already registered: {address}")
        if address in self._remotes:
            raise ValueError(f"address is owned by shard "
                             f"{self._remotes[address]}: {address}")
        self._servers[address] = server

    def unregister(self, address):
        """Drop the endpoint and prune its per-endpoint metric
        children, bounding label cardinality: without pruning a
        long-running platform churning pods accumulates one child per
        address forever, every one walked by every scrape. A restarted
        endpoint re-registers and its children recreate at zero — a
        counter reset, which the windowed consumers
        (:func:`repro.sim.timeseries.counter_increase`) tolerate."""
        self._servers.pop(address, None)
        if self._m_endpoint_calls is None:
            return
        for key in [k for k in self._endpoint_children if k[0] == address]:
            del self._endpoint_children[key]
            self._m_endpoint_calls.remove(endpoint=key[0], method=key[1],
                                          code=key[2])
        for key in [k for k in self._endpoint_latency_children
                    if k[0] == address]:
            del self._endpoint_latency_children[key]
            self._m_endpoint_latency.remove(endpoint=key[0], method=key[1])
        if self._handled_children.pop(address, None) is not None:
            self._m_handled.remove(endpoint=address)

    def lookup(self, address):
        return self._servers.get(address)

    def addresses(self):
        return sorted(self._servers)

    # ------------------------------------------------------------------
    # Cross-shard boundary (repro.sim.shard)
    # ------------------------------------------------------------------

    def bind_shard(self, port):
        """Attach this fabric to a shard boundary port.

        Cross-shard sends become ``rpc-req`` boundary messages (payload
        serialized exactly once, at the port); this network serves the
        requests of other shards and routes their responses back.
        """
        if self._port is not None:
            raise SimError("network already bound to a shard port")
        self._port = port
        port.on("rpc-req", self._on_remote_request)
        port.on("rpc-res", self._on_remote_response)
        return self

    def add_remote(self, address, shard_id):
        """Declare ``address`` as served by another shard."""
        if self._port is None:
            raise SimError("bind_shard() before add_remote()")
        if address in self._servers:
            raise ValueError(f"address already registered locally: {address}")
        if shard_id == self._port.shard_id:
            raise ValueError(f"remote address {address} maps to own shard")
        self._remotes[address] = shard_id

    def is_remote(self, address):
        return address in self._remotes

    def _remote_call(self, address, method, request, deadline, caller):
        self.calls_total += 1
        self.remote_calls_total += 1
        self._remote_corr += 1
        corr = self._remote_corr
        event = _RemoteCall(self, corr, address, method, deadline)
        self._pending_remote[corr] = event
        self._port.send(self._remotes[address], "rpc-req",
                        (corr, address, method, request, caller))
        return event

    def _abandon_remote(self, corr):
        self._pending_remote.pop(corr, None)

    def _on_remote_request(self, src, payload):
        corr, address, method, request, caller = payload
        self.kernel.spawn(
            self._serve_remote(src, corr, address, method, request, caller),
            name=f"shard-rpc:{address}/{method}" if self.kernel.debug
            else "shard-rpc",
        )

    def _serve_remote(self, src, corr, address, method, request, caller):
        try:
            server = self._servers.get(address)
            if server is None or not server.running:
                raise Unavailable(f"no live endpoint at {address} "
                                  f"(shard {self._port.shard_id})")
            if self._blocked(caller, address):
                raise Unavailable(f"{caller} partitioned from {address}")
            try:
                response = yield server.dispatch(method, request)
            except ProcessKilled:
                raise Unavailable(
                    f"{address} crashed while serving {method}") from None
            self._port.send(src, "rpc-res", (corr, True, response, None))
        except Exception as exc:  # noqa: BLE001 — every failure must travel back
            self._port.send(src, "rpc-res",
                            (corr, False, None, _encode_error(exc)))
        if self.tracer is not None:
            self.tracer.emit("network", "shard-rpc", src=src, address=address,
                             method=method)

    def _on_remote_response(self, _src, payload):
        corr, ok, value, error = payload
        event = self._pending_remote.pop(corr, None)
        if event is None:
            # The caller's deadline already won the race; the protocol
            # still delivered the bytes, so count the waste.
            self.remote_late_responses += 1
            return
        event.complete(ok, value, error)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    def partition(self, a, b):
        """Symmetrically block traffic between hosts ``a`` and ``b``."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a, b):
        self._partitions.discard(frozenset((a, b)))

    def heal_all(self):
        self._partitions.clear()
        self._oneway.clear()

    def is_partitioned(self, a, b):
        return frozenset((a, b)) in self._partitions

    def partition_oneway(self, src, dst):
        """Block messages from ``src`` to ``dst`` only (asymmetric
        partition): ``src``'s requests to ``dst`` vanish, and so do
        ``dst``'s *responses* back to ``src`` — but ``dst`` can still
        initiate calls to ``src``. The classic gray failure: both ends
        look alive to a symmetric health check.

        Calls stack: two overlapping injections of the same direction
        need two ``heal_oneway`` calls (or one ``heal_all``) before
        traffic flows again."""
        self._oneway[(src, dst)] = self._oneway.get((src, dst), 0) + 1

    def heal_oneway(self, src, dst):
        count = self._oneway.get((src, dst))
        if count is None:
            return
        if count <= 1:
            del self._oneway[(src, dst)]
        else:
            self._oneway[(src, dst)] = count - 1

    def _blocked(self, src, dst):
        """Is the ``src -> dst`` direction unreachable?"""
        return (frozenset((src, dst)) in self._partitions
                or ((src, dst) in self._oneway if self._oneway else False))

    # ------------------------------------------------------------------
    # Endpoint impairments (gray faults)
    # ------------------------------------------------------------------

    def degrade(self, address, extra_latency=0.0, loss=0.0, duplicate=0.0):
        """Impair the endpoint at ``address``: every message to it pays
        ``extra_latency`` seconds (a slow node/NIC), is lost with
        probability ``loss``, and is delivered twice with probability
        ``duplicate`` (the server runs the handler again; the second
        response is discarded in flight). The server itself stays
        registered and serving — health probes keep passing.

        Each call pushes one impairment *layer*; overlapping
        injections compose (latencies add, loss/duplication combine as
        independent events) and revert independently. Returns the
        layer — pass it to :meth:`restore` to remove exactly it."""
        layer = EndpointImpairment(extra_latency, loss, duplicate)
        if (loss or duplicate) and self._gray_rng is None:
            self._gray_rng = self.kernel.rng("grayfaults")
        self._impairment_layers.setdefault(address, []).append(layer)
        self._recompose(address)
        return layer

    def restore(self, address, layer=None):
        """Remove one impairment ``layer`` from ``address`` (or every
        layer when ``layer`` is None). Tolerant of a layer already
        removed, so revert paths can run in any order."""
        layers = self._impairment_layers.get(address)
        if layers is None:
            return
        if layer is None:
            layers.clear()
        elif layer in layers:
            layers.remove(layer)
        self._recompose(address)

    def _recompose(self, address):
        """Rebuild the composed hot-path impairment from the stack."""
        layers = self._impairment_layers.get(address)
        if not layers:
            self._impairment_layers.pop(address, None)
            self._impaired.pop(address, None)
            return
        keep = 1.0
        arrive_once = 1.0
        extra = 0.0
        for layer in layers:
            extra += layer.extra_latency
            keep *= 1.0 - layer.loss
            arrive_once *= 1.0 - layer.duplicate
        self._impaired[address] = EndpointImpairment(
            extra, 1.0 - keep, 1.0 - arrive_once)

    def impairment(self, address):
        return self._impaired.get(address)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def call(self, address, method, request, deadline=None, caller="client"):
        """Invoke ``method`` on the server at ``address``.

        Returns a :class:`~repro.sim.process.Process`; yield it to get
        the response (or the failure). ``deadline`` is in simulated
        seconds, measured from call initiation. Addresses owned by
        another shard route over the boundary port instead (the caller
        yields the same way; only the latency floor differs).
        """
        if self._remotes and address in self._remotes:
            return self._remote_call(address, method, request, deadline,
                                     caller)
        debug = self.kernel.debug
        process = self.kernel.spawn(
            self._call(address, method, request, caller),
            name=f"rpc:{caller}->{address}/{method}" if debug else "rpc",
        )
        if deadline is None:
            return process
        return _DeadlineCall(self, process, deadline, address, method)

    def _call(self, address, method, request, caller):
        self.calls_total += 1
        started = self.kernel.now
        code = "ok"
        try:
            yield self.kernel.sleep(self.latency.sample(self._rng))
            if self.loss_rate and self._rng.random() < self.loss_rate:
                raise Unavailable(f"message to {address} lost")
            # Gray impairments: only calls to a degraded endpoint enter
            # this block, so healthy traffic costs no extra RNG draws
            # or sleeps and the no-fault timeline stays bit-identical.
            impair = self._impaired.get(address) if self._impaired else None
            if impair is not None:
                if impair.extra_latency:
                    yield self.kernel.sleep(impair.extra_latency)
                if impair.loss and self._gray_rng.random() < impair.loss:
                    raise Unavailable(
                        f"message to {address} lost (degraded link)")
            server = self._servers.get(address)
            if server is None or not server.running:
                raise Unavailable(f"no live endpoint at {address}")
            if self._blocked(caller, address):
                raise Unavailable(f"{caller} partitioned from {address}")
            snapshot = deep_copy_payload(request) if self.debug_freeze else None
            if (impair is not None and impair.duplicate
                    and self._gray_rng.random() < impair.duplicate):
                # Duplicate delivery: the server handles the message a
                # second time; the extra response is discarded in
                # flight. Only the server-side dispatch counter sees it.
                server.dispatch(method, request)
            handler_process = server.dispatch(method, request)
            try:
                response = yield handler_process
            except ProcessKilled:
                raise Unavailable(f"{address} crashed while serving {method}") from None
            if snapshot is not None and request != snapshot:
                raise AssertionError(
                    f"handler {address}/{method} mutated its request in place "
                    "(violates the single-serialization contract)")
            yield self.kernel.sleep(self.latency.sample(self._rng))
            if self._blocked(address, caller):
                raise Unavailable(f"response from {address} dropped by partition")
            return response
        except Exception as exc:
            self.calls_failed += 1
            code = type(exc).__name__
            raise
        finally:
            self._observe_call(method, code, started, address)
            if self.tracer is not None:
                self.tracer.emit("network", "rpc", caller=caller, address=address, method=method)

    def _observe_call(self, method, code, started, address=None):
        """Record one finished call (local or cross-shard) into the
        cached per-(method, code) and per-endpoint metric children."""
        if self._m_calls is None:
            return
        counter = self._call_children.get((method, code))
        if counter is None:
            counter = self._call_children[(method, code)] = \
                self._m_calls.labels(method=method, code=code)
        counter.inc()
        histogram = self._duration_children.get(method)
        if histogram is None:
            histogram = self._duration_children[method] = \
                self._m_duration.labels(method=method)
        histogram.observe(self.kernel.now - started)
        if address is None:
            return
        key = (address, method, code)
        endpoint_counter = self._endpoint_children.get(key)
        if endpoint_counter is None:
            endpoint_counter = self._endpoint_children[key] = \
                self._m_endpoint_calls.labels(endpoint=address, method=method,
                                              code=code)
        endpoint_counter.inc()
        latency_counter = self._endpoint_latency_children.get(key[:2])
        if latency_counter is None:
            latency_counter = self._endpoint_latency_children[key[:2]] = \
                self._m_endpoint_latency.labels(endpoint=address,
                                                method=method)
        latency_counter.inc(self.kernel.now - started)

    def observe_dispatch(self, address):
        """Server-side tally of one handler dispatch at ``address``."""
        if self._m_handled is None:
            return
        counter = self._handled_children.get(address)
        if counter is None:
            counter = self._handled_children[address] = \
                self._m_handled.labels(endpoint=address)
        counter.inc()
