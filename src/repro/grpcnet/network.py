"""The simulated message fabric connecting microservices.

Models what DLaaS gets from GRPC over the datacenter network: named
endpoints, per-message latency with jitter, optional message loss, and
network partitions for dependability experiments. Services register a
:class:`~repro.grpcnet.server.Server` under an address; clients invoke
``network.call(address, method, request)``.
"""

from ..sim.errors import ProcessKilled
from ..sim.events import PENDING, Event
from .errors import DeadlineExceeded, Unavailable
from .payload import deep_copy_payload


class LatencyModel:
    """Per-hop latency: base plus uniform jitter, seconds."""

    def __init__(self, base=0.0005, jitter=0.0005):
        if base < 0 or jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base = base
        self.jitter = jitter

    def sample(self, rng):
        return self.base + rng.random() * self.jitter


class _DeadlineCall(Event):
    """The call-vs-deadline race, wired as a plain event.

    Replaces the per-call wrapper process: the caller yields this event,
    which succeeds/fails with the underlying call or fails with
    :class:`DeadlineExceeded` when the timer wins (killing the in-flight
    call). One event instead of a Process + AnyOf per deadline'd RPC.
    """

    __slots__ = ("_process", "_timer", "_address", "_method", "_deadline")

    def __init__(self, network, process, deadline, address, method):
        Event.__init__(self, network.kernel)
        self._process = process
        self._address = address
        self._method = method
        self._deadline = deadline
        self._timer = network.kernel.sleep(deadline)
        process.add_callback(self._on_process)
        self._timer.add_callback(self._on_timer)

    def _on_process(self, process):
        if self.state is not PENDING:
            return
        self._timer.cancel()  # lazy heap deletion; no-op on the slow path
        if process.state == "failed":
            self.fail(process.exception)
        else:
            self.succeed(process.value)

    def _on_timer(self, _timer):
        if self.state is not PENDING:
            return  # the call finished first (slow path: timer still fires)
        self._process.kill("deadline exceeded")
        self.fail(DeadlineExceeded(
            f"{self._address}/{self._method} after {self._deadline}s"))


class Network:
    """Registry of endpoints plus the latency/partition/loss model."""

    def __init__(self, kernel, latency=None, loss_rate=0.0, tracer=None,
                 metrics=None, debug_freeze=False):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        self.kernel = kernel
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self.tracer = tracer
        # Debug mode for the single-serialization fast path: payloads
        # travel by reference, which is only sound if no handler mutates
        # a request in place. When enabled, every request is snapshotted
        # at send time and verified unchanged after the handler ran.
        self.debug_freeze = debug_freeze
        self._servers = {}
        self._partitions = set()
        self._rng = kernel.rng("network")
        self.calls_total = 0
        self.calls_failed = 0
        if metrics is not None:
            self._m_calls = metrics.counter(
                "rpc_client_calls_total", ("method", "code"),
                help="RPC invocations by method and outcome code")
            self._m_duration = metrics.histogram(
                "rpc_client_duration_seconds", ("method",),
                help="RPC wall time from initiation to response")
        else:
            self._m_calls = self._m_duration = None
        # labels() resolved once per (method, code) / method — the
        # children are stable, and the per-RPC lookup cost is measurable.
        self._call_children = {}
        self._duration_children = {}

    # ------------------------------------------------------------------
    # Endpoint registry
    # ------------------------------------------------------------------

    def register(self, address, server):
        if address in self._servers:
            raise ValueError(f"address already registered: {address}")
        self._servers[address] = server

    def unregister(self, address):
        self._servers.pop(address, None)

    def lookup(self, address):
        return self._servers.get(address)

    def addresses(self):
        return sorted(self._servers)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    def partition(self, a, b):
        """Symmetrically block traffic between hosts ``a`` and ``b``."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a, b):
        self._partitions.discard(frozenset((a, b)))

    def heal_all(self):
        self._partitions.clear()

    def is_partitioned(self, a, b):
        return frozenset((a, b)) in self._partitions

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def call(self, address, method, request, deadline=None, caller="client"):
        """Invoke ``method`` on the server at ``address``.

        Returns a :class:`~repro.sim.process.Process`; yield it to get
        the response (or the failure). ``deadline`` is in simulated
        seconds, measured from call initiation.
        """
        debug = self.kernel.debug
        process = self.kernel.spawn(
            self._call(address, method, request, caller),
            name=f"rpc:{caller}->{address}/{method}" if debug else "rpc",
        )
        if deadline is None:
            return process
        return _DeadlineCall(self, process, deadline, address, method)

    def _call(self, address, method, request, caller):
        self.calls_total += 1
        started = self.kernel.now
        code = "ok"
        try:
            yield self.kernel.sleep(self.latency.sample(self._rng))
            if self.loss_rate and self._rng.random() < self.loss_rate:
                raise Unavailable(f"message to {address} lost")
            server = self._servers.get(address)
            if server is None or not server.running:
                raise Unavailable(f"no live endpoint at {address}")
            if self.is_partitioned(caller, address):
                raise Unavailable(f"{caller} partitioned from {address}")
            snapshot = deep_copy_payload(request) if self.debug_freeze else None
            handler_process = server.dispatch(method, request)
            try:
                response = yield handler_process
            except ProcessKilled:
                raise Unavailable(f"{address} crashed while serving {method}") from None
            if snapshot is not None and request != snapshot:
                raise AssertionError(
                    f"handler {address}/{method} mutated its request in place "
                    "(violates the single-serialization contract)")
            yield self.kernel.sleep(self.latency.sample(self._rng))
            if self.is_partitioned(caller, address):
                raise Unavailable(f"response from {address} dropped by partition")
            return response
        except Exception as exc:
            self.calls_failed += 1
            code = type(exc).__name__
            raise
        finally:
            if self._m_calls is not None:
                counter = self._call_children.get((method, code))
                if counter is None:
                    counter = self._call_children[(method, code)] = \
                        self._m_calls.labels(method=method, code=code)
                counter.inc()
                histogram = self._duration_children.get(method)
                if histogram is None:
                    histogram = self._duration_children[method] = \
                        self._m_duration.labels(method=method)
                histogram.observe(self.kernel.now - started)
            if self.tracer is not None:
                self.tracer.emit("network", "rpc", caller=caller, address=address, method=method)
