"""Payload copying for the RPC send boundary.

The simulated fabric passes request/response objects by reference — the
in-process stand-in for serialization. Instead of copying payloads at
every hop (client, balancer, server, replica fan-out), a payload is
deep-copied exactly once, at the boundary of the server that owns the
data (``Server(copy_responses=True)``); everywhere else the reference
travels untouched. ``Network(debug_freeze=True)`` verifies the
contract that makes this safe: handlers must never mutate a request
in place.

Payloads are JSON-shaped: dicts, lists and tuples are copied
structurally, everything else (scalars, ObjectIds, frozen value
objects) passes through by reference.

Cross-shard payloads (see ``repro.sim.shard``) extend the same
discipline to real process boundaries: :func:`encode_payload` pickles
exactly once at the sending shard's boundary, :func:`decode_payload`
unpickles exactly once at the receiver — one serialization per hop,
and structural isolation even when both shards share a process.
"""

import pickle


def encode_payload(value):
    """Serialize a boundary payload once, at the sending shard."""
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def decode_payload(blob):
    """Materialize a boundary payload once, at the receiving shard."""
    return pickle.loads(blob)


def deep_copy_payload(value):
    """Structural copy of a JSON-shaped payload (dict/list recursion)."""
    if isinstance(value, dict):
        return {key: deep_copy_payload(item) for key, item in value.items()}
    if isinstance(value, list):
        return [deep_copy_payload(item) for item in value]
    if isinstance(value, tuple):
        return tuple(deep_copy_payload(item) for item in value)
    return value
