"""Errors for the simulated RPC fabric."""


class RpcError(Exception):
    """Base class for RPC failures."""


class Unavailable(RpcError):
    """No live endpoint could serve the call (connection refused)."""


class DeadlineExceeded(RpcError):
    """The call did not complete within its deadline."""


class MethodNotFound(RpcError):
    """The target service does not implement the requested method."""


class ServiceError(RpcError):
    """The remote handler raised; carries the remote exception."""

    def __init__(self, method, cause):
        super().__init__(f"{method} failed remotely: {cause!r}")
        self.method = method
        self.cause = cause
