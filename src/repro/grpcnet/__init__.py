"""Simulated GRPC-style RPC fabric.

Stands in for the GRPC links between DLaaS microservices: named
endpoints on a latency-modeled network, per-request handler processes,
client stubs with retries/deadlines, and round-robin load balancing
with fail-over (what the Kubernetes service registry provides in the
real system).
"""

from .client import Client, LoadBalancer
from .errors import DeadlineExceeded, MethodNotFound, RpcError, ServiceError, Unavailable
from .hashring import ConsistentHashRing, stable_hash
from .network import LatencyModel, Network
from .server import Server

__all__ = [
    "Client",
    "ConsistentHashRing",
    "DeadlineExceeded",
    "LatencyModel",
    "LoadBalancer",
    "MethodNotFound",
    "Network",
    "RpcError",
    "Server",
    "ServiceError",
    "Unavailable",
    "stable_hash",
]
