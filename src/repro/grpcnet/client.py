"""Client stubs with retries and deadlines, plus a load balancer.

The DLaaS API instances register into a Kubernetes service; clients of
the service see one virtual name with round-robin load balancing and
fail-over (paper §III.c). :class:`LoadBalancer` models that; a
:class:`Client` resolves its target through one (or calls a fixed
address directly).
"""

from ..sim.tracing import inject_context
from .errors import DeadlineExceeded, Unavailable


class LoadBalancer:
    """Round-robin resolver over a mutable endpoint set."""

    def __init__(self, name, endpoints=()):
        self.name = name
        self._endpoints = list(endpoints)
        self._cursor = 0

    def add(self, address):
        if address not in self._endpoints:
            self._endpoints.append(address)

    def remove(self, address):
        try:
            self._endpoints.remove(address)
        except ValueError:
            pass

    @property
    def endpoints(self):
        return tuple(self._endpoints)

    def pick_order(self):
        """Endpoints to try for one call, round-robin rotated.

        Returning the full rotation (not a single endpoint) lets the
        client fail over to the next instance when one is down.
        """
        if not self._endpoints:
            return []
        start = self._cursor % len(self._endpoints)
        self._cursor += 1
        return self._endpoints[start:] + self._endpoints[:start]


class Client:
    """Call helper with retry/backoff/fail-over policy.

    ``target`` is either an address string or a :class:`LoadBalancer`.
    ``call`` is a generator — use ``response = yield from client.call(...)``
    inside a simulation process.
    """

    def __init__(self, kernel, network, target, caller="client",
                 retries=3, retry_backoff=0.05, deadline=None):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.kernel = kernel
        self.network = network
        self.target = target
        self.caller = caller
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.deadline = deadline

    def _candidates(self):
        if isinstance(self.target, LoadBalancer):
            return self.target.pick_order()
        return [self.target]

    def call(self, method, request=None, deadline=None, ctx=None):
        """Invoke ``method``, retrying transient failures with backoff.

        Retries cover ``Unavailable`` and ``DeadlineExceeded`` — the
        failure modes a crash or fail-over produces. Remote application
        errors (``ServiceError``) are not retried: the platform treats
        those as genuine responses.

        ``ctx`` is an optional :class:`~repro.sim.tracing.SpanContext`;
        it rides in the request metadata (dict requests only) so the
        remote handler can parent its span on the caller's.
        """
        deadline = self.deadline if deadline is None else deadline
        request = inject_context(request, ctx)
        last_error = None
        for attempt in range(self.retries + 1):
            if attempt:
                yield self.kernel.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            for address in self._candidates():
                try:
                    response = yield self.network.call(
                        address, method, request, deadline=deadline, caller=self.caller
                    )
                    return response
                except (Unavailable, DeadlineExceeded) as exc:
                    last_error = exc
            if not self._candidates():
                last_error = Unavailable(f"{self.target!r} has no endpoints")
        raise last_error
