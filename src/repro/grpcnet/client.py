"""Client stubs with retries and deadlines, plus a load balancer.

The DLaaS API instances register into a Kubernetes service; clients of
the service see one virtual name with round-robin load balancing and
fail-over (paper §III.c). :class:`LoadBalancer` models that; a
:class:`Client` resolves its target through one (or calls a fixed
address directly).
"""

from ..sim.tracing import inject_context
from .errors import DeadlineExceeded, Unavailable
from .hashring import ConsistentHashRing


class LoadBalancer:
    """Round-robin resolver over a mutable endpoint set.

    With ``ring=True`` the balancer also maintains a
    :class:`~repro.grpcnet.hashring.ConsistentHashRing` over its
    endpoints; keyed picks (``pick_order(key=...)``) then return the
    ring order for the key — owner first, successors after, so a
    down owner fails over to a *stable* successor instead of a
    rotating one. Un-keyed picks stay round-robin either way, which
    keeps every existing call path bit-identical.
    """

    def __init__(self, name, endpoints=(), ring=False, vnodes=64):
        self.name = name
        self._endpoints = list(endpoints)
        self._cursor = 0
        self._ring = ConsistentHashRing(self._endpoints,
                                        vnodes=vnodes) if ring else None

    def add(self, address):
        if address not in self._endpoints:
            self._endpoints.append(address)
            if self._ring is not None:
                self._ring.add(address)

    def remove(self, address):
        try:
            self._endpoints.remove(address)
        except ValueError:
            pass
        if self._ring is not None:
            self._ring.remove(address)

    @property
    def endpoints(self):
        return tuple(self._endpoints)

    @property
    def ring(self):
        return self._ring

    def pick_order(self, key=None):
        """Endpoints to try for one call.

        Returning the full candidate list (not a single endpoint) lets
        the client fail over to the next instance when one is down.
        Without a key (or without a ring) the list is the round-robin
        rotation; with both, it is the consistent-hash ring order so
        the same key always lands on the same live replica.
        """
        if not self._endpoints:
            return []
        if key is not None and self._ring is not None and len(self._ring):
            return self._ring.ordered(key)
        start = self._cursor % len(self._endpoints)
        self._cursor += 1
        return self._endpoints[start:] + self._endpoints[:start]


class Client:
    """Call helper with retry/backoff/fail-over policy.

    ``target`` is either an address string or a :class:`LoadBalancer`.
    ``call`` is a generator — use ``response = yield from client.call(...)``
    inside a simulation process.
    """

    def __init__(self, kernel, network, target, caller="client",
                 retries=3, retry_backoff=0.05, deadline=None,
                 route_key=None):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.kernel = kernel
        self.network = network
        self.target = target
        self.caller = caller
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.deadline = deadline
        # Affinity key for ring-mode balancers (e.g. the tenant name):
        # all of this client's calls stick to the key's ring owner.
        self.route_key = route_key

    def _candidates(self):
        if isinstance(self.target, LoadBalancer):
            return self.target.pick_order(key=self.route_key)
        return [self.target]

    def call(self, method, request=None, deadline=None, ctx=None):
        """Invoke ``method``, retrying transient failures with backoff.

        Retries cover ``Unavailable`` and ``DeadlineExceeded`` — the
        failure modes a crash or fail-over produces. Remote application
        errors (``ServiceError``) are not retried: the platform treats
        those as genuine responses.

        ``ctx`` is an optional :class:`~repro.sim.tracing.SpanContext`;
        it rides in the request metadata (dict requests only) so the
        remote handler can parent its span on the caller's.
        """
        deadline = self.deadline if deadline is None else deadline
        request = inject_context(request, ctx)
        last_error = None
        for attempt in range(self.retries + 1):
            if attempt:
                yield self.kernel.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            for address in self._candidates():
                try:
                    response = yield self.network.call(
                        address, method, request, deadline=deadline, caller=self.caller
                    )
                    return response
                except (Unavailable, DeadlineExceeded) as exc:
                    last_error = exc
            if not self._candidates():
                last_error = Unavailable(f"{self.target!r} has no endpoints")
        raise last_error
