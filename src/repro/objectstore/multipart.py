"""Multipart uploads, for large checkpoints and result archives."""

import itertools

from .errors import UploadNotFound

_upload_ids = itertools.count(1)


class MultipartUpload:
    """An in-progress multipart upload."""

    def __init__(self, store, bucket_name, key, credentials):
        self.store = store
        self.bucket_name = bucket_name
        self.key = key
        self.credentials = credentials
        self.upload_id = f"upload-{next(_upload_ids)}"
        self.parts = {}
        self.completed = False
        self.aborted = False

    def _check_open(self):
        if self.completed or self.aborted:
            raise UploadNotFound(self.upload_id)

    def upload_part(self, part_number, size, bandwidth=None):
        """Process generator: uploads one part."""
        self._check_open()
        yield self.store.kernel.sleep(self.store.transfer_time(size, bandwidth))
        self._check_open()
        self.parts[part_number] = size
        self.store.bytes_uploaded += size

    def complete(self):
        """Assemble parts (in part-number order) into the final object."""
        self._check_open()
        total = sum(size for _number, size in sorted(self.parts.items()))
        obj = self.store.put_object(
            self.bucket_name, self.key, self.credentials, total,
            payload={"parts": len(self.parts)},
        )
        self.completed = True
        return obj

    def abort(self):
        self._check_open()
        self.aborted = True
        self.parts.clear()


def create_multipart_upload(store, bucket_name, key, credentials):
    """Start a multipart upload (validates bucket + credentials)."""
    bucket = store._bucket(bucket_name)
    bucket.authorize(credentials)
    return MultipartUpload(store, bucket_name, key, credentials)
