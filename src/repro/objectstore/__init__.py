"""Cloud object store: training data in, checkpoints and results out."""

from .errors import (
    AccessDenied,
    BucketExists,
    NoSuchBucket,
    NoSuchKey,
    ObjectStoreError,
    UploadNotFound,
)
from .multipart import MultipartUpload, create_multipart_upload
from .store import GBIT, Bucket, ObjectStore, StoredObject

__all__ = [
    "AccessDenied",
    "Bucket",
    "BucketExists",
    "GBIT",
    "MultipartUpload",
    "NoSuchBucket",
    "NoSuchKey",
    "ObjectStore",
    "ObjectStoreError",
    "StoredObject",
    "UploadNotFound",
    "create_multipart_upload",
]
