"""Errors for the cloud object store."""


class ObjectStoreError(Exception):
    """Base class for object-store errors."""


class NoSuchBucket(ObjectStoreError):
    """Bucket does not exist."""


class NoSuchKey(ObjectStoreError):
    """Object does not exist."""


class BucketExists(ObjectStoreError):
    """Bucket creation collided with an existing name."""


class AccessDenied(ObjectStoreError):
    """Credentials do not grant access to the bucket."""


class UploadNotFound(ObjectStoreError):
    """Multipart upload id is unknown or already completed/aborted."""
