"""The simulated cloud object store (IBM Cloud Object Store stand-in).

Training data streams from here into learners on every epoch, and
checkpoints/trained models are written back (paper §II, §III.g). The
store models credentialed buckets, object metadata + payloads, and
transfer times over a bounded link — the 1GbE interconnect the paper's
evaluation uses.
"""

from .errors import AccessDenied, BucketExists, NoSuchBucket, NoSuchKey

GBIT = 125_000_000  # bytes/second for 1 Gbit/s


class StoredObject:
    """Object metadata plus (optionally) an inline payload."""

    __slots__ = ("key", "size", "payload", "etag", "created")

    def __init__(self, key, size, payload, etag, created):
        self.key = key
        self.size = size
        self.payload = payload
        self.etag = etag
        self.created = created


class Bucket:
    """A credentialed namespace of objects."""

    def __init__(self, name, credentials):
        self.name = name
        self.credentials = credentials
        self.objects = {}

    def authorize(self, credentials):
        if credentials != self.credentials:
            raise AccessDenied(f"bad credentials for bucket {self.name!r}")


class ObjectStore:
    """Buckets + objects + a transfer-time model."""

    def __init__(self, kernel, link_bandwidth=GBIT, request_latency=0.02,
                 metrics=None):
        self.kernel = kernel
        self.link_bandwidth = link_bandwidth
        self.request_latency = request_latency
        self._buckets = {}
        self._etag_counter = 0
        self.bytes_uploaded = 0
        self.bytes_downloaded = 0
        if metrics is not None:
            self._m_transfer = metrics.histogram(
                "objectstore_transfer_duration_seconds", ("op",),
                help="Object upload/download wall time incl. request latency")
            self._m_bytes = metrics.counter(
                "objectstore_transferred_bytes_total", ("op",),
                help="Payload bytes moved over the store link")
        else:
            self._m_transfer = self._m_bytes = None

    # ------------------------------------------------------------------
    # Buckets
    # ------------------------------------------------------------------

    def create_bucket(self, name, credentials):
        if name in self._buckets:
            raise BucketExists(name)
        bucket = Bucket(name, credentials)
        self._buckets[name] = bucket
        return bucket

    def delete_bucket(self, name, credentials):
        bucket = self._bucket(name)
        bucket.authorize(credentials)
        del self._buckets[name]

    def bucket_names(self):
        return sorted(self._buckets)

    def _bucket(self, name):
        bucket = self._buckets.get(name)
        if bucket is None:
            raise NoSuchBucket(name)
        return bucket

    # ------------------------------------------------------------------
    # Metadata operations (instant apart from request latency, which the
    # generator variants below account for)
    # ------------------------------------------------------------------

    def put_object(self, bucket_name, key, credentials, size, payload=None):
        bucket = self._bucket(bucket_name)
        bucket.authorize(credentials)
        self._etag_counter += 1
        obj = StoredObject(key, size, payload, f"etag-{self._etag_counter}",
                           self.kernel.now)
        bucket.objects[key] = obj
        return obj

    def head_object(self, bucket_name, key, credentials):
        bucket = self._bucket(bucket_name)
        bucket.authorize(credentials)
        obj = bucket.objects.get(key)
        if obj is None:
            raise NoSuchKey(f"{bucket_name}/{key}")
        return obj

    def delete_object(self, bucket_name, key, credentials):
        bucket = self._bucket(bucket_name)
        bucket.authorize(credentials)
        if key not in bucket.objects:
            raise NoSuchKey(f"{bucket_name}/{key}")
        del bucket.objects[key]

    def list_objects(self, bucket_name, credentials, prefix=""):
        bucket = self._bucket(bucket_name)
        bucket.authorize(credentials)
        return sorted(k for k in bucket.objects if k.startswith(prefix))

    # ------------------------------------------------------------------
    # Transfers (process generators: they take simulated time)
    # ------------------------------------------------------------------

    def transfer_time(self, size, bandwidth=None):
        return self.request_latency + size / (bandwidth or self.link_bandwidth)

    def upload(self, bucket_name, key, credentials, size, payload=None, bandwidth=None):
        """Upload an object of ``size`` bytes; returns the StoredObject."""
        started = self.kernel.now
        yield self.kernel.sleep(self.transfer_time(size, bandwidth))
        obj = self.put_object(bucket_name, key, credentials, size, payload)
        self.bytes_uploaded += size
        self._record("upload", started, size)
        return obj

    def download(self, bucket_name, key, credentials, bandwidth=None):
        """Download an object; returns the StoredObject after the wait."""
        started = self.kernel.now
        obj = self.head_object(bucket_name, key, credentials)
        yield self.kernel.sleep(self.transfer_time(obj.size, bandwidth))
        self.bytes_downloaded += obj.size
        self._record("download", started, obj.size)
        return obj

    def _record(self, op, started, size):
        if self._m_transfer is not None:
            self._m_transfer.labels(op=op).observe(self.kernel.now - started)
            self._m_bytes.labels(op=op).inc(size)
