"""Structured trace of simulation activity.

Components append typed records; tests and benchmarks query them. The
trace is the simulated analogue of the platform's log pipeline, and is
what lets Fig. 4 measure crash-to-recovery intervals precisely.
"""


class TraceRecord:
    """One trace entry: time, component, event kind, free-form fields."""

    __slots__ = ("time", "component", "kind", "fields")

    def __init__(self, time, component, kind, fields):
        self.time = time
        self.component = component
        self.kind = kind
        self.fields = fields

    def __repr__(self):
        return f"<{self.time:.3f} {self.component} {self.kind} {self.fields}>"


class Tracer:
    """Append-only trace with simple query helpers."""

    def __init__(self, kernel):
        self._kernel = kernel
        self.records = []

    def emit(self, component, kind, **fields):
        record = TraceRecord(self._kernel.now, component, kind, fields)
        self.records.append(record)
        return record

    def query(self, component=None, kind=None, since=None, **field_filters):
        """Records matching all given criteria, in time order."""
        out = []
        for record in self.records:
            if component is not None and record.component != component:
                continue
            if kind is not None and record.kind != kind:
                continue
            if since is not None and record.time < since:
                continue
            if any(record.fields.get(k) != v for k, v in field_filters.items()):
                continue
            out.append(record)
        return out

    def first(self, **kwargs):
        matches = self.query(**kwargs)
        return matches[0] if matches else None

    def last(self, **kwargs):
        matches = self.query(**kwargs)
        return matches[-1] if matches else None

    def intervals(self, start_kind, end_kind, component=None, key=None):
        """Pair up start/end records and return their durations.

        ``key`` extracts a correlation id from a record's fields (e.g.
        ``lambda r: r.fields["pod"]``); without it, records pair up in
        order of appearance.
        """
        starts = {}
        ordered = []
        durations = []
        for record in self.query(component=component):
            if record.kind == start_kind:
                ident = key(record) if key else len(ordered)
                starts[ident] = record.time
                ordered.append(ident)
            elif record.kind == end_kind:
                if key:
                    ident = key(record)
                else:
                    ident = ordered[len(durations)] if len(durations) < len(ordered) else None
                if ident in starts:
                    durations.append(record.time - starts.pop(ident))
        return durations
