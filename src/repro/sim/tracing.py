"""Structured trace of simulation activity: records and causal spans.

Components append typed records; tests and benchmarks query them. The
trace is the simulated analogue of the platform's log pipeline, and is
what lets Fig. 4 measure crash-to-recovery intervals precisely.

Beyond the flat record stream, the tracer supports *causal spans*
(OpenTelemetry-shaped): a :class:`Span` has a trace id, a span id, a
parent link, a status and attributes. Context propagates two ways:

* **in-band** — RPC clients inject a :class:`SpanContext` into call
  metadata (``__trace_ctx__``) and the far handler extracts it with
  :func:`extract_context`;
* **out-of-band** — components that communicate through databases
  rather than RPCs (the API hands a job to the LCM via MongoDB) stash
  their context in the tracer's correlation registry under a key such
  as ``("job", job_id)`` and the downstream component looks it up with
  :meth:`Tracer.context_of`.

One submitted job therefore yields a single span tree rooted at the API
request, and :meth:`Tracer.critical_path` attributes end-to-end latency
to its stages.
"""

import itertools
from sys import intern as _intern

# Wire key under which RPC clients carry the span context inside a
# dict-shaped request (the simulated analogue of GRPC call metadata).
TRACE_CONTEXT_KEY = "__trace_ctx__"


class TraceRecord:
    """One trace entry: time, component, event kind, free-form fields."""

    __slots__ = ("time", "component", "kind", "fields")

    def __init__(self, time, component, kind, fields):
        self.time = time
        self.component = component
        self.kind = kind
        self.fields = fields

    def __repr__(self):
        return f"<{self.time:.3f} {self.component} {self.kind} {self.fields}>"


class SpanContext:
    """The propagatable identity of a span: (trace id, span id)."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id, span_id):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_wire(self):
        """Serializable form for RPC metadata."""
        return (self.trace_id, self.span_id)

    @classmethod
    def from_wire(cls, value):
        if value is None:
            return None
        if isinstance(value, SpanContext):
            return value
        trace_id, span_id = value
        return cls(trace_id, span_id)

    def __eq__(self, other):
        return (isinstance(other, SpanContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id)

    def __hash__(self):
        return hash((self.trace_id, self.span_id))

    def __repr__(self):
        return f"<ctx trace={self.trace_id} span={self.span_id}>"


def extract_context(request):
    """The :class:`SpanContext` carried in a dict request, or None."""
    if isinstance(request, dict):
        return SpanContext.from_wire(request.get(TRACE_CONTEXT_KEY))
    return None


def inject_context(request, ctx):
    """Copy of ``request`` carrying ``ctx``; non-dict requests pass through."""
    if ctx is None or not isinstance(request, dict):
        return request
    carried = dict(request)
    carried[TRACE_CONTEXT_KEY] = ctx.to_wire()
    return carried


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "component", "trace_id", "span_id", "parent_id",
                 "start", "end_time", "status", "attributes", "_clock")

    def __init__(self, name, component, trace_id, span_id, parent_id,
                 start, clock, attributes=None):
        self.name = name
        self.component = component
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end_time = None
        self.status = "open"
        self.attributes = attributes or {}
        self._clock = clock

    @property
    def context(self):
        return SpanContext(self.trace_id, self.span_id)

    @property
    def ended(self):
        return self.end_time is not None

    def duration(self, at=None):
        """Span length; open spans are measured up to ``at`` (or now)."""
        end = self.end_time
        if end is None:
            end = self._clock() if at is None else at
        return max(0.0, end - self.start)

    def set_attribute(self, key, value):
        self.attributes[key] = value
        return self

    def end(self, status="ok"):
        """Close the span (idempotent: the first end wins)."""
        if self.end_time is None:
            self.end_time = self._clock()
            self.status = status
        return self

    # Context-manager use for synchronous sections: ends with status
    # "ok", or "error" if the block raised.
    def __enter__(self):
        return self

    def __exit__(self, exc_type, _exc, _tb):
        self.end("error" if exc_type is not None else "ok")
        return False

    def __repr__(self):
        end = f"{self.end_time:.3f}" if self.ended else "…"
        return (f"<span {self.name} [{self.component}] "
                f"t{self.trace_id}/s{self.span_id} "
                f"{self.start:.3f}->{end} {self.status}>")


class _NullSpan:
    """No-op span handed out while span tracing is disabled."""

    __slots__ = ()
    context = None
    ended = True
    status = "ok"

    @property
    def attributes(self):
        # A fresh dict per read: the shared NULL_SPAN must never carry
        # mutable class-level state a caller could scribble on (the
        # shared-state lint bans the class-attr-dict it replaced).
        return {}

    def duration(self, at=None):
        return 0.0

    def set_attribute(self, key, value):
        return self

    def end(self, status="ok"):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, _exc, _tb):
        return False

    def __bool__(self):
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Append-only trace with spans and simple query helpers."""

    def __init__(self, kernel, span_tracing=True):
        self._kernel = kernel
        self.records = []
        self.spans = []
        self.span_tracing = span_tracing
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._bindings = {}

    # ------------------------------------------------------------------
    # Flat records
    # ------------------------------------------------------------------

    def emit(self, component, kind, **fields):
        # component/kind values repeat millions of times across a run
        # (f-built names like "learner-0" included); interning collapses
        # them to one object each, so the equality filters in query()
        # and the digest hashing are pointer comparisons.
        record = TraceRecord(self._kernel.now, _intern(component),
                             _intern(kind), fields)
        self.records.append(record)
        return record

    def query(self, component=None, kind=None, since=None, **field_filters):
        """Records matching all given criteria, in time order."""
        out = []
        for record in self.records:
            if component is not None and record.component != component:
                continue
            if kind is not None and record.kind != kind:
                continue
            if since is not None and record.time < since:
                continue
            if any(record.fields.get(k) != v for k, v in field_filters.items()):
                continue
            out.append(record)
        return out

    def first(self, **kwargs):
        matches = self.query(**kwargs)
        return matches[0] if matches else None

    def last(self, **kwargs):
        matches = self.query(**kwargs)
        return matches[-1] if matches else None

    def intervals(self, start_kind, end_kind, component=None, key=None):
        """Pair up start/end records and return their durations.

        ``key`` extracts a correlation id from a record's fields (e.g.
        ``lambda r: r.fields["pod"]``); without it, each end record
        pairs with the *earliest still-unmatched* start (FIFO), so
        interleaved unkeyed start/end sequences pair correctly instead
        of silently dropping ends.
        """
        if key is not None:
            starts = {}
            durations = []
            for record in self.query(component=component):
                if record.kind == start_kind:
                    starts[key(record)] = record.time
                elif record.kind == end_kind:
                    ident = key(record)
                    if ident in starts:
                        durations.append(record.time - starts.pop(ident))
            return durations
        pending = []
        durations = []
        for record in self.query(component=component):
            if record.kind == start_kind:
                pending.append(record.time)
            elif record.kind == end_kind and pending:
                durations.append(record.time - pending.pop(0))
        return durations

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def start_span(self, name, component=None, parent=None, **attributes):
        """Open a span; ``parent`` is a Span, SpanContext, or None.

        With no parent the span roots a fresh trace. Returns
        :data:`NULL_SPAN` while span tracing is disabled, so
        instrumented code needs no conditionals.
        """
        if not self.span_tracing:
            return NULL_SPAN
        if isinstance(parent, (Span, _NullSpan)):
            parent = parent.context
        if parent is None:
            trace_id, parent_id = next(self._trace_ids), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(name, component or name, trace_id, next(self._span_ids),
                    parent_id, self._kernel.now, lambda: self._kernel.now,
                    attributes=attributes)
        self.spans.append(span)
        return span

    # Correlation registry: out-of-band context propagation for hops
    # that ride on shared state (MongoDB documents, etcd keys, pod
    # creation) rather than on an RPC.

    def bind(self, binding_key, context):
        if context is not None:
            self._bindings[binding_key] = context

    def context_of(self, binding_key):
        return self._bindings.get(binding_key)

    def unbind(self, binding_key):
        self._bindings.pop(binding_key, None)

    # ------------------------------------------------------------------
    # Span analysis
    # ------------------------------------------------------------------

    def trace_of(self, trace_id):
        """All spans in one trace, ordered by (start, span id)."""
        spans = [s for s in self.spans if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start, s.span_id))
        return spans

    def trace_ids(self):
        return sorted({s.trace_id for s in self.spans})

    def find_spans(self, name=None, component=None, trace_id=None, **attrs):
        out = []
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            if component is not None and span.component != component:
                continue
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if any(span.attributes.get(k) != v for k, v in attrs.items()):
                continue
            out.append(span)
        return out

    def span_tree(self, trace_id):
        """(roots, children) for one trace.

        ``children`` maps span id -> child spans sorted by start time.
        Spans whose parent is missing from the trace are treated as
        roots, so a partially collected trace still renders.
        """
        spans = self.trace_of(trace_id)
        by_id = {s.span_id: s for s in spans}
        roots, children = [], {}
        for span in spans:
            if span.parent_id is None or span.parent_id not in by_id:
                roots.append(span)
            else:
                children.setdefault(span.parent_id, []).append(span)
        return roots, children

    def critical_path(self, trace_id):
        """The latency-dominating path through one trace.

        Walks from the root toward the descendant that finished last,
        and attributes each step's *self time*: the part of the path's
        elapsed time spent in that span but not in its on-path child.
        Returns ``[{"span", "self_seconds"}, ...]`` root-first; open
        spans are measured up to the trace's latest timestamp.
        """
        roots, children = self.span_tree(trace_id)
        if not roots:
            return []
        trace_end = max(
            (s.end_time if s.ended else s.start + s.duration())
            for s in self.trace_of(trace_id)
        )

        def effective_end(span):
            return span.end_time if span.ended else trace_end

        root = max(roots, key=effective_end)
        path = [root]
        while True:
            kids = children.get(path[-1].span_id)
            if not kids:
                break
            path.append(max(kids, key=effective_end))
        steps = []
        for span, child in itertools.zip_longest(path, path[1:]):
            span_elapsed = effective_end(span) - span.start
            if child is None:
                self_seconds = span_elapsed
            else:
                # Time in this span before the on-path child starts plus
                # any tail after the child ends.
                self_seconds = (max(0.0, child.start - span.start)
                                + max(0.0, effective_end(span) - effective_end(child)))
                self_seconds = min(self_seconds, span_elapsed)
            steps.append({"span": span, "self_seconds": max(0.0, self_seconds)})
        return steps


def render_span_tree(tracer, trace_id):
    """The trace's span tree as indented text, one line per span."""
    roots, children = tracer.span_tree(trace_id)
    lines = []

    def walk(span, depth):
        end = f"{span.end_time:9.3f}" if span.ended else "     open"
        attrs = "".join(f" {k}={v}" for k, v in sorted(span.attributes.items()))
        lines.append(
            f"{span.start:9.3f} -> {end}  {span.duration():8.3f}s  "
            f"{'  ' * depth}{span.name} [{span.component}] {span.status}{attrs}"
        )
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def render_critical_path(tracer, trace_id):
    """The critical path as text, attributing latency to each stage."""
    steps = tracer.critical_path(trace_id)
    if not steps:
        return "no spans in trace"
    total = sum(step["self_seconds"] for step in steps)
    lines = [f"critical path ({total:.3f}s total):"]
    for step in steps:
        span = step["span"]
        share = step["self_seconds"] / total if total else 0.0
        lines.append(
            f"  {step['self_seconds']:8.3f}s  {share:5.1%}  "
            f"{span.name} [{span.component}]"
        )
    return "\n".join(lines)
