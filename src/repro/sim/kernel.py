"""The discrete-event simulation kernel.

The kernel owns simulated time and an ordered event queue. Simulated
components are *processes*: Python generators that yield waitables
(:class:`~repro.sim.events.Event`, other processes, or the result of
:meth:`Kernel.sleep`). The kernel resumes a process when the waitable it
yielded triggers, passing the waitable's value back into the generator
(or throwing its exception).

Determinism: with a fixed seed, every run produces an identical trace.
Ties in time are broken by insertion order, and all randomness flows
through named, independently seeded RNG streams (:meth:`Kernel.rng`).
"""

import heapq
import random

from .errors import SimError
from .events import AllOf, AnyOf, Event
from .process import Process


class Kernel:
    """Discrete-event simulation kernel with generator-based processes."""

    def __init__(self, seed=0):
        self._now = 0.0
        self._queue = []
        self._sequence = 0
        self._seed = seed
        self._rngs = {}
        self.processes = []

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def now(self):
        """Current simulated time, in seconds."""
        return self._now

    def _schedule_at(self, when, callback):
        if when < self._now:
            raise SimError(f"cannot schedule in the past ({when} < {self._now})")
        self._sequence += 1
        heapq.heappush(self._queue, (when, self._sequence, callback))

    def _schedule_now(self, callback):
        self._schedule_at(self._now, callback)

    # ------------------------------------------------------------------
    # Waitables
    # ------------------------------------------------------------------

    def event(self, name=""):
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def sleep(self, delay, value=None):
        """Return an event that succeeds ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative sleep: {delay}")
        event = Event(self, name=f"sleep({delay})")
        self._schedule_at(self._now + delay, lambda: event.succeed(value))
        return event

    def timeout(self, delay, value=None):
        """Alias of :meth:`sleep`, for SimPy familiarity."""
        return self.sleep(delay, value)

    def any_of(self, events):
        """Event that fires when the first of ``events`` triggers."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def spawn(self, generator, name=""):
        """Start a process from a generator; returns its :class:`Process`.

        The process begins executing at the current simulated instant
        (not synchronously inside this call).
        """
        process = Process(self, generator, name=name)
        self.processes.append(process)
        return process

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------

    def rng(self, stream):
        """Independent deterministic RNG for the named stream.

        Distinct streams are seeded from the kernel seed plus the stream
        name, so adding a consumer of one stream never perturbs another.
        """
        if stream not in self._rngs:
            self._rngs[stream] = random.Random(f"{self._seed}:{stream}")
        return self._rngs[stream]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self):
        """Execute the next scheduled callback; returns False when empty."""
        if not self._queue:
            return False
        when, _seq, callback = heapq.heappop(self._queue)
        self._now = when
        callback()
        return True

    def run(self, until=None):
        """Run until the queue drains, or simulated time passes ``until``.

        If ``until`` is given, time is advanced exactly to ``until`` on
        return (even if the queue drained earlier), so repeated
        ``run(until=...)`` calls observe a monotone clock.
        """
        if until is not None and until < self._now:
            raise SimError(f"run(until={until}) is in the past (now={self._now})")
        while self._queue:
            when, _seq, _cb = self._queue[0]
            if until is not None and when > until:
                break
            self.step()
        if until is not None:
            self._now = until

    def run_until_complete(self, process, limit=None):
        """Run until ``process`` finishes; return its value.

        Raises the process's exception if it failed, and
        :class:`SimError` if the queue drains (or ``limit`` simulated
        seconds pass) before the process completes.
        """
        deadline = None if limit is None else self._now + limit
        while not process.triggered:
            if deadline is not None and self._queue and self._queue[0][0] > deadline:
                raise SimError(f"process {process.name!r} did not finish within {limit}s")
            if not self.step():
                raise SimError(f"deadlock: queue drained before {process.name!r} finished")
        if process.state == "failed":
            raise process.exception
        return process.value
