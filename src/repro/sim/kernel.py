"""The discrete-event simulation kernel.

The kernel owns simulated time and an ordered event queue. Simulated
components are *processes*: Python generators that yield waitables
(:class:`~repro.sim.events.Event`, other processes, or the result of
:meth:`Kernel.sleep`). The kernel resumes a process when the waitable it
yielded triggers, passing the waitable's value back into the generator
(or throwing its exception).

Determinism: with a fixed seed, every run produces an identical trace.
Ties in time are broken by insertion order, and all randomness flows
through named, independently seeded RNG streams (:meth:`Kernel.rng`).

Timers are cancellable with lazy heap deletion: :meth:`Kernel.sleep`
returns a :class:`Timer` that is its own heap entry (no per-sleep
closure). Cancelling it leaves the entry in the heap marked dead; when
it pops, the kernel counts it (``dead_entries_skipped``) and does
nothing else — the surviving timeline is bit-identical to the one where
the timer fired into zero callbacks. ``timer_cancellation=False``
restores the pre-optimization behavior for equivalence testing.
"""

import heapq
import random

from .errors import SimError
from .events import AllOf, AnyOf, CANCELLED, Event, PENDING
from .process import Process


class Timer(Event):
    """A cancellable sleep: the event and its heap callback fused into
    one object, so ``sleep()`` allocates nothing beyond the event.

    The kernel heap holds the timer itself as the entry's callback;
    :meth:`__call__` fires it, or skips it when it was cancelled.
    Cancellation accounting (``timers_cancelled`` / ``_dead_pending``)
    lives on the owning kernel *instance* — two kernels in one process
    never share counters.
    """

    __slots__ = ("_value",)

    def __init__(self, kernel, value=None):
        Event.__init__(self, kernel)
        self._value = value

    def __call__(self):
        state = self.state
        if state is PENDING:
            self.succeed(self._value)
        elif state is CANCELLED:
            kernel = self._kernel
            kernel.dead_entries_skipped += 1
            kernel._dead_pending -= 1

    def cancel(self):
        """Defuse the timer; its heap entry is lazily skipped on pop."""
        if self.state is PENDING and self._kernel._timer_cancellation:
            self.state = CANCELLED
            self._callbacks = None
            kernel = self._kernel
            kernel.timers_cancelled += 1
            kernel._dead_pending += 1


class Kernel:
    """Discrete-event simulation kernel with generator-based processes.

    Every piece of kernel state — clock, heap, RNG streams, perf
    counters, debug flag, shard binding — is owned by the instance.
    Nothing lives at module or class level, so any number of kernels
    (one per shard, or back-to-back scenarios in one process) coexist
    without bleeding state into each other; ``scripts/
    lint_shared_state.py`` enforces this structurally.
    """

    def __init__(self, seed=0, timer_cancellation=True, debug=False):
        self._now = 0.0
        self._queue = []
        self._sequence = 0
        self._seed = seed
        self._rngs = {}
        self.processes = []
        # When True, components may attach human-readable names to
        # hot-path events/processes (RPC calls, channel gets). Off by
        # default: the f-string formatting alone is measurable at scale.
        # Per instance — flipping one kernel's flag never outlives it.
        self.debug = debug
        # Fast-path switch: False replays the pre-cancellation event
        # order exactly (every timer fires; AnyOf/AllOf keep dead
        # callbacks), for bit-for-bit timeline-equivalence tests.
        self._timer_cancellation = timer_cancellation
        # Bound by ShardPort when this kernel is one shard of a
        # partitioned simulation (see repro.sim.shard); None otherwise.
        self.shard = None
        # Perf counters (exposed as kernel_* metrics by the monitoring
        # scraper; see MetricsScraper). Instance-owned: a fresh kernel
        # always starts from zero, however many ran before it.
        self.events_processed = 0
        self.timers_cancelled = 0
        self.dead_entries_skipped = 0
        self._dead_pending = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def now(self):
        """Current simulated time, in seconds."""
        return self._now

    @property
    def dead_entry_ratio(self):
        """Fraction of heap pops that were cancelled timers."""
        if not self.events_processed:
            return 0.0
        return self.dead_entries_skipped / self.events_processed

    @property
    def dead_entries_pending(self):
        """Cancelled timers still sitting in the heap (lazy deletion)."""
        return self._dead_pending

    def _schedule_at(self, when, callback):
        if when < self._now:
            raise SimError(f"cannot schedule in the past ({when} < {self._now})")
        self._sequence += 1
        heapq.heappush(self._queue, (when, self._sequence, callback))

    def _schedule_now(self, callback):
        self._sequence += 1
        heapq.heappush(self._queue, (self._now, self._sequence, callback))

    # ------------------------------------------------------------------
    # Waitables
    # ------------------------------------------------------------------

    def event(self, name=""):
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def sleep(self, delay, value=None):
        """Return a :class:`Timer` that succeeds ``delay`` seconds from
        now. The caller that owns it exclusively may ``cancel()`` it
        (e.g. after losing a deadline race)."""
        if delay < 0:
            raise ValueError(f"negative sleep: {delay}")
        timer = Timer(self, value)
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, timer))
        return timer

    def timeout(self, delay, value=None):
        """Alias of :meth:`sleep`, for SimPy familiarity."""
        return self.sleep(delay, value)

    def any_of(self, events):
        """Event that fires when the first of ``events`` triggers."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def spawn(self, generator, name=""):
        """Start a process from a generator; returns its :class:`Process`.

        The process begins executing at the current simulated instant
        (not synchronously inside this call).
        """
        process = Process(self, generator, name=name)
        self.processes.append(process)
        return process

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------

    def rng(self, stream):
        """Independent deterministic RNG for the named stream.

        Distinct streams are seeded from the kernel seed plus the stream
        name, so adding a consumer of one stream never perturbs another.
        """
        if stream not in self._rngs:
            self._rngs[stream] = random.Random(f"{self._seed}:{stream}")
        return self._rngs[stream]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def peek_time(self):
        """Time of the next scheduled entry, or None when the heap is
        empty. Dead (cancelled) entries count: they still occupy heap
        slots and their pop order is part of the deterministic timeline."""
        queue = self._queue
        return queue[0][0] if queue else None

    def run_window(self, end):
        """Run every event with ``time < end``; return how many ran.

        Unlike :meth:`run`, the clock is *not* fast-forwarded to
        ``end`` — it stays at the last executed event, so the shard
        coordinator can read the true local frontier. This is the
        per-window execution primitive of ``repro.sim.shard``.
        """
        queue = self._queue
        pop = heapq.heappop
        ran = 0
        while queue and queue[0][0] < end:
            when, _seq, callback = pop(queue)
            self._now = when
            self.events_processed += 1
            ran += 1
            callback()
        return ran

    def step(self):
        """Execute the next scheduled callback; returns False when empty."""
        queue = self._queue
        if not queue:
            return False
        when, _seq, callback = heapq.heappop(queue)
        self._now = when
        self.events_processed += 1
        callback()
        return True

    def run(self, until=None):
        """Run until the queue drains, or simulated time passes ``until``.

        If ``until`` is given, time is advanced exactly to ``until`` on
        return (even if the queue drained earlier), so repeated
        ``run(until=...)`` calls observe a monotone clock.
        """
        if until is not None and until < self._now:
            raise SimError(f"run(until={until}) is in the past (now={self._now})")
        queue = self._queue
        pop = heapq.heappop
        if until is None:
            while queue:
                when, _seq, callback = pop(queue)
                self._now = when
                self.events_processed += 1
                callback()
        else:
            while queue and queue[0][0] <= until:
                when, _seq, callback = pop(queue)
                self._now = when
                self.events_processed += 1
                callback()
            self._now = until

    def run_until_complete(self, process, limit=None):
        """Run until ``process`` finishes; return its value.

        Raises the process's exception if it failed, and
        :class:`SimError` if the queue drains (or ``limit`` simulated
        seconds pass) before the process completes.
        """
        deadline = None if limit is None else self._now + limit
        queue = self._queue
        pop = heapq.heappop
        while process.state is PENDING:
            if deadline is not None and (
                self._now > deadline
                or (queue and queue[0][0] > deadline)
            ):
                raise SimError(f"process {process.name!r} did not finish within {limit}s")
            if not queue:
                raise SimError(f"deadlock: queue drained before {process.name!r} finished")
            when, _seq, callback = pop(queue)
            self._now = when
            self.events_processed += 1
            callback()
        if process.state == "failed":
            raise process.exception
        return process.value
