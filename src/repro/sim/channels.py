"""FIFO channels for message passing between simulated processes."""

from collections import deque

from .errors import ChannelClosed


class Channel:
    """An unbounded FIFO channel with event-based ``get``.

    ``put`` never blocks (the simulated network and queues we model are
    effectively unbounded at the message sizes involved); ``get`` returns
    an event that fires when an item is available. Closing the channel
    fails all pending and future gets with :class:`ChannelClosed`.
    """

    __slots__ = ("_kernel", "name", "_items", "_getters", "closed")

    def __init__(self, kernel, name=""):
        self._kernel = kernel
        self.name = name
        self._items = deque()
        self._getters = deque()
        self.closed = False

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self.closed:
            raise ChannelClosed(f"put on closed channel {self.name!r}")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self):
        """Return an event that succeeds with the next item."""
        kernel = self._kernel
        event = kernel.event(name=f"get({self.name})" if kernel.debug else "")
        if self._items:
            event.succeed(self._items.popleft())
        elif self.closed:
            event.fail(ChannelClosed(f"get on closed channel {self.name!r}"))
        else:
            self._getters.append(event)
        return event

    def get_nowait(self, default=None):
        """Dequeue immediately, or return ``default`` if empty."""
        if self._items:
            return self._items.popleft()
        return default

    def cancel_get(self, event):
        """Withdraw a pending :meth:`get` event that was never consumed.

        Needed by select-style waiters (``any_of`` over several
        channels plus a timer): an abandoned getter would silently
        swallow the next ``put``, losing the item for every live
        waiter. Ignores events that already triggered or were never
        registered.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def close(self):
        """Close the channel; pending getters fail with ChannelClosed.

        Items already buffered stay retrievable (``get``/``get_nowait``
        drain them after close) — watch teardown never drops delivered
        events, only future ones.
        """
        if self.closed:
            return
        self.closed = True
        getters, self._getters = self._getters, deque()
        for event in getters:
            event.fail(ChannelClosed(f"channel {self.name!r} closed"))
