"""Exception types for the discrete-event simulation kernel."""


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class ProcessKilled(SimError):
    """Thrown into a process generator when it is killed.

    A killed process may catch this to run cleanup, but must re-raise or
    return; a process that swallows the kill keeps running, which mirrors
    a SIGTERM handler refusing to exit.
    """

    def __init__(self, reason=""):
        super().__init__(reason or "process killed")
        self.reason = reason


class Interrupt(SimError):
    """Thrown into a process to interrupt a wait without killing it."""

    def __init__(self, cause=None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class ChannelClosed(SimError):
    """Raised when getting from (or putting to) a closed channel."""


class SimTimeout(SimError):
    """Raised by helpers that wait with a deadline, when the deadline hits."""

    def __init__(self, seconds):
        super().__init__(f"timed out after {seconds}s (simulated)")
        self.seconds = seconds
