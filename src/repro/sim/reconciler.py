"""A shared, watch-driven reconciler runtime for the control plane.

Kubernetes-style level-triggered reconciliation over the DES kernel:
components stop busy-polling and instead *subscribe* to change streams
(etcd watches, API-server resource watches, NFS change notifications),
funnel change keys through a coalescing :class:`WorkQueue`, and run a
``reconcile(key)`` function that re-reads the *full* current state for
that key. Because reconciliation is level-triggered (state-based, not
edge-based), a missed or duplicated event is harmless — a periodic
resync relists every key as a safety net, and a watch broken by a
component crash is re-established with a full relist.

The three building blocks:

* :class:`WorkQueue` — keyed work items with duplicate coalescing,
  rate-limited requeue with exponential backoff, and FIFO dispatch;
* :class:`WatchSource` — adapter from a concrete watch facility
  (a channel of events plus a relist function) to work-queue keys;
* :class:`Reconciler` — the runtime: one pump process per source
  (enqueue-on-event, re-establish + relist on channel close), a resync
  ticker, and a worker process driving ``reconcile(key)``.
"""

from collections import deque

from .errors import ChannelClosed, ProcessKilled


class WorkQueue:
    """Keyed FIFO work queue with coalescing and backoff requeue.

    A key present in the queue is never enqueued twice (duplicate adds
    *coalesce*): a burst of watch events for one object costs exactly
    one reconcile. Failed keys are requeued after an exponential
    per-key backoff; :meth:`forget` resets the backoff once a key
    reconciles cleanly.
    """

    def __init__(self, kernel, name="", backoff_base=0.1, backoff_max=5.0,
                 metrics=None):
        self._kernel = kernel
        self.name = name
        self.closed = False
        self._ready = deque()
        self._queued = set()
        self._getters = deque()
        self._failures = {}
        self._timers = {}  # key -> earliest scheduled fire time
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        # Observability: how much polling the coalescing saved.
        self.adds = 0
        self.coalesced = 0
        self.dispatched = 0
        self._enqueued_at = {}  # key -> enqueue time, for queue latency
        # Kubernetes workqueue metric names, labeled by queue name.
        if metrics is not None:
            # Children bound once: the queue name never changes, and
            # labels() per enqueue is measurable on the hot path.
            self._m_depth = metrics.gauge(
                "workqueue_depth", ("name",),
                help="Keys currently waiting in the work queue"
            ).labels(name=name)
            self._m_adds = metrics.counter(
                "workqueue_adds_total", ("name",),
                help="Keys added to the work queue (incl. coalesced)"
            ).labels(name=name)
            self._m_queue_dur = metrics.histogram(
                "workqueue_queue_duration_seconds", ("name",),
                help="Time keys wait in the queue before dispatch"
            ).labels(name=name)
            self._m_retries = metrics.counter(
                "workqueue_retries_total", ("name",),
                help="Keys requeued after a failed reconcile"
            ).labels(name=name)
        else:
            self._m_depth = self._m_adds = None
            self._m_queue_dur = self._m_retries = None

    def __len__(self):
        return len(self._ready)

    def _set_depth(self):
        if self._m_depth is not None:
            self._m_depth.set(len(self._ready))

    def add(self, key):
        """Enqueue ``key`` now; a duplicate of a queued key coalesces."""
        if self.closed:
            return
        self.adds += 1
        if self._m_adds is not None:
            self._m_adds.inc()
        if key in self._queued:
            self.coalesced += 1
            return
        self._queued.add(key)
        self._enqueued_at.setdefault(key, self._kernel.now)
        if self._getters:
            self.dispatched += 1
            self._queued.discard(key)
            self._dispatch_metrics(key)
            self._getters.popleft().succeed(key)
        else:
            self._ready.append(key)
            self._set_depth()

    def _dispatch_metrics(self, key):
        enqueued = self._enqueued_at.pop(key, None)
        if self._m_queue_dur is not None and enqueued is not None:
            self._m_queue_dur.observe(self._kernel.now - enqueued)

    def add_after(self, key, delay):
        """Enqueue ``key`` after ``delay`` seconds.

        Pending delayed adds for the same key coalesce, keeping the
        earliest fire time; an immediate :meth:`add` always wins.
        """
        if self.closed:
            return
        if delay <= 0:
            self.add(key)
            return
        fire_at = self._kernel.now + delay
        pending = self._timers.get(key)
        if pending is not None and pending <= fire_at:
            return
        self._timers[key] = fire_at
        self._kernel.sleep(delay).add_callback(
            lambda _ev, key=key, fire_at=fire_at: self._fire_timer(key, fire_at)
        )

    def _fire_timer(self, key, fire_at):
        if self.closed or self._timers.get(key) != fire_at:
            return  # superseded by an earlier timer, or queue torn down
        del self._timers[key]
        self.add(key)

    def requeue(self, key):
        """Re-enqueue a failed key after its exponential backoff."""
        failures = self._failures.get(key, 0) + 1
        self._failures[key] = failures
        if self._m_retries is not None:
            self._m_retries.inc()
        delay = min(self.backoff_base * (2 ** (failures - 1)), self.backoff_max)
        self.add_after(key, delay)
        return delay

    def forget(self, key):
        """Reset the failure backoff for ``key`` after a clean pass."""
        self._failures.pop(key, None)

    def get(self):
        """Event yielding the next key; fails with :class:`ChannelClosed`
        once the queue is closed and drained."""
        event = self._kernel.event(name=f"workqueue.get({self.name})")
        if self._ready:
            self.dispatched += 1
            key = self._ready.popleft()
            self._queued.discard(key)
            self._dispatch_metrics(key)
            self._set_depth()
            event.succeed(key)
        elif self.closed:
            event.fail(ChannelClosed(f"work queue {self.name!r} closed"))
        else:
            self._getters.append(event)
        return event

    def close(self):
        """Shut the queue down; pending getters fail with ChannelClosed."""
        if self.closed:
            return
        self.closed = True
        self._timers.clear()
        getters, self._getters = self._getters, deque()
        for event in getters:
            event.fail(ChannelClosed(f"work queue {self.name!r} closed"))


class WatchSource:
    """Adapter from one watch facility to work-queue keys.

    ``subscribe`` opens the underlying watch and returns a channel of
    events (or ``None`` for a resync-only source with no change
    stream); ``keys_of`` maps one event to the work keys it dirties;
    ``list_keys`` enumerates every key for a full relist — run on
    (re)establishment and on every periodic resync, which is what makes
    the runtime level-triggered. ``unsubscribe`` tears the watch down
    (the channel-leak fix: sources must deregister, not just drop,
    their channels).
    """

    def __init__(self, name, subscribe=None, keys_of=None, list_keys=None,
                 unsubscribe=None):
        self.name = name
        self._subscribe = subscribe
        self._keys_of = keys_of
        self._list_keys = list_keys
        self._unsubscribe = unsubscribe
        self._current = None  # whatever subscribe returned, for teardown

    def subscribe(self):
        if self._subscribe is None:
            return None
        self._current = self._subscribe()
        return self._channel_of(self._current)

    @staticmethod
    def _channel_of(subscription):
        return getattr(subscription, "channel", subscription)

    def keys_of(self, event):
        if self._keys_of is None:
            return ()
        keys = self._keys_of(event)
        if keys is None:
            return ()
        if isinstance(keys, (str, bytes)) or not hasattr(keys, "__iter__"):
            return (keys,)
        return keys

    def list_keys(self):
        """Keys for a full relist; may be a plain iterable or a process
        generator (for sources whose listing needs RPCs)."""
        if self._list_keys is None:
            return ()
        return self._list_keys()

    def unsubscribe(self):
        current, self._current = self._current, None
        if current is None:
            return
        if self._unsubscribe is not None:
            self._unsubscribe(current)
            return
        cancel = getattr(current, "cancel", None)
        if cancel is not None:
            cancel()


class Reconciler:
    """The reconciler runtime: sources -> work queue -> reconcile(key).

    ``reconcile(key)`` may be a plain function or a process generator.
    Its contract is level-triggered: observe the *current* state for
    ``key`` and converge it, regardless of which event woke the queue.
    Returning a positive number asks for a requeue after that many
    seconds (a scheduled re-check, without counting as a failure); an
    exception requeues with exponential backoff.

    Crash recovery: when a source's channel closes (its server died),
    the pump re-subscribes after ``rewatch_delay`` and then performs a
    full relist, so transitions that fired while the watch was down are
    re-observed rather than lost.
    """

    def __init__(self, kernel, name, reconcile, *, queue=None,
                 resync_interval=0.0, rewatch_delay=0.2, tracer=None,
                 metrics=None, key_context=None):
        self.kernel = kernel
        self.name = name
        self.reconcile = reconcile
        self.queue = queue or WorkQueue(kernel, name=name, metrics=metrics)
        self.resync_interval = resync_interval
        self.rewatch_delay = rewatch_delay
        self.tracer = tracer
        # key_context(key) -> SpanContext | None: lets the owner link a
        # reconcile pass into the causal trace of the object it serves
        # (e.g. map a job id key to the job's span context).
        self.key_context = key_context
        if metrics is not None:
            self._m_work_dur = metrics.histogram(
                "workqueue_work_duration_seconds", ("name",),
                help="Time spent running reconcile(key)"
            ).labels(name=name)
        else:
            self._m_work_dur = None
        self.sources = []
        self.static_keys = []
        self.rewatches = 0
        self.resyncs = 0
        self._procs = []
        self._running = False

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def add_source(self, source):
        bind = getattr(source, "bind", None)
        if bind is not None:
            # Callback-driven sources enqueue directly, without a pump.
            bind(self.queue)
        self.sources.append(source)
        if self._running:
            self._spawn(self._pump(source), f"pump:{source.name}")
        return source

    def watch_channel(self, name, subscribe, keys_of, list_keys=None,
                      unsubscribe=None):
        """Shorthand for :meth:`add_source` of a :class:`WatchSource`."""
        return self.add_source(WatchSource(
            name, subscribe=subscribe, keys_of=keys_of, list_keys=list_keys,
            unsubscribe=unsubscribe,
        ))

    def add_static_key(self, key):
        """A key enqueued at start and on every resync (level-trigger)."""
        self.static_keys.append(key)
        if self._running:
            self.queue.add(key)
        return key

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        if self._running:
            return self
        self._running = True
        for key in self.static_keys:
            self.queue.add(key)
        for source in self.sources:
            self._spawn(self._pump(source), f"pump:{source.name}")
        self._spawn(self._worker(), "worker")
        if self.resync_interval and self.resync_interval > 0:
            self._spawn(self._resync_ticker(), "resync")
        return self

    def stop(self):
        """Tear the runtime down: processes, watches, queue."""
        if not self._running:
            return
        self._running = False
        procs, self._procs = self._procs, []
        for proc in procs:
            proc.kill(f"reconciler {self.name!r} stopped")
        for source in self.sources:
            source.unsubscribe()
        self.queue.close()

    def _spawn(self, generator, label):
        proc = self.kernel.spawn(generator, name=f"reconciler:{self.name}:{label}")
        self._procs.append(proc)
        return proc

    def _trace(self, kind, **fields):
        if self.tracer is not None:
            self.tracer.emit(f"reconciler:{self.name}", kind, **fields)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def _pump(self, source):
        """Deliver one source's events into the queue, forever.

        (Re)subscribing always relists first: anything that changed
        while no watch was established is re-observed, which is the
        relist-on-reconnect contract crash recovery depends on.
        """
        while self._running:
            try:
                channel = source.subscribe()
            except Exception:
                yield self.kernel.sleep(self.rewatch_delay)
                continue
            yield from self._relist(source)
            if channel is None:
                return  # resync-only source; the ticker covers it
            while True:
                try:
                    event = yield channel.get()
                except ChannelClosed:
                    break
                for key in source.keys_of(event):
                    if isinstance(key, tuple):
                        # (key, delay): a coalesced enqueue — progress-style
                        # events batch up to ``delay`` while transitions
                        # use a bare key for immediate dispatch.
                        self.queue.add_after(*key)
                    else:
                        self.queue.add(key)
            source.unsubscribe()
            self.rewatches += 1
            self._trace("watch-lost", source=source.name)
            yield self.kernel.sleep(self.rewatch_delay)

    def _relist(self, source):
        listing = source.list_keys()
        if hasattr(listing, "send"):  # process generator (listing via RPC)
            try:
                listing = yield from listing
            except ProcessKilled:
                raise
            except Exception:
                listing = ()
        for key in listing or ():
            self.queue.add(key)

    def _resync_ticker(self):
        while self._running:
            yield self.kernel.sleep(self.resync_interval)
            if not self._running:
                return
            self.resyncs += 1
            for key in self.static_keys:
                self.queue.add(key)
            for source in self.sources:
                yield from self._relist(source)

    def _start_reconcile_span(self, key):
        if self.tracer is None or not getattr(self.tracer, "span_tracing", False):
            return None
        parent = self.key_context(key) if self.key_context is not None else None
        if parent is None:
            return None  # don't root fresh traces for unlinked keys
        return self.tracer.start_span(
            f"{self.name}.reconcile", component=f"reconciler:{self.name}",
            parent=parent, key=str(key))

    def _worker(self):
        while True:
            try:
                key = yield self.queue.get()
            except ChannelClosed:
                return
            span = self._start_reconcile_span(key)
            started = self.kernel.now
            try:
                result = self.reconcile(key)
                if hasattr(result, "send"):
                    result = yield from result
            except ProcessKilled:
                if span is not None:
                    span.end("killed")
                raise
            except Exception as exc:
                delay = self.queue.requeue(key)
                self._trace("reconcile-error", key=key, error=repr(exc),
                            retry_in=delay)
                if span is not None:
                    span.set_attribute("error", repr(exc)).end("error")
            else:
                self.queue.forget(key)
                if span is not None:
                    span.end("ok")
                if isinstance(result, (int, float)) and result > 0:
                    self.queue.add_after(key, result)
            finally:
                if self._m_work_dur is not None:
                    self._m_work_dur.observe(self.kernel.now - started)
