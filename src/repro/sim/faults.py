"""Fault injection for dependability experiments.

The paper evaluates recovery by *manually crashing* components with
kubectl (Fig. 4) and argues resilience to random node/process failures.
This module provides both — one-shot scheduled crashes and Poisson
crash processes with a given MTBF — plus the *gray* fault class the
paper never tested: impairments applied and later reverted while the
target keeps passing its health probe (slow endpoints, asymmetric
partitions, packet loss/duplication, disk stalls).

Every injection is recorded three ways: a bounded in-memory ring
(``injected``, the most recent entries only — a long chaos soak must
not grow memory without bound), the ``fault_injected_total`` counter
metric (the durable record), and a ``FaultInjected`` Warning platform
event so tests can assert detection-follows-injection ordering from
the operational record alone.
"""

from collections import deque


class FaultInjector:
    """Schedules crashes and gray faults against registered targets."""

    def __init__(self, kernel, tracer=None, metrics=None, events=None,
                 injected_cap=256):
        self._kernel = kernel
        self._tracer = tracer
        self._events = events
        self.injected = deque(maxlen=injected_cap)
        if metrics is not None:
            self._m_injected = metrics.counter(
                "fault_injected_total", ("target", "kind"),
                help="Fault injections by target and fault kind")
        else:
            self._m_injected = None

    def _record(self, name, kind, reason):
        self.injected.append((self._kernel.now, name, reason))
        if self._m_injected is not None:
            self._m_injected.labels(target=name, kind=kind).inc()
        if self._events is not None:
            self._events.emit_event(
                "Warning", "FaultInjected", "Component", name,
                message=f"{kind} fault injected ({reason})")
        if self._tracer is not None:
            self._tracer.emit(
                "fault-injector",
                "crash-injected" if kind == "crash" else "gray-injected",
                target=name, reason=reason, fault=kind)

    def _fire(self, name, crash, reason):
        self._record(name, "crash", reason)
        crash()

    def crash_at(self, when, name, crash, reason="scheduled"):
        """Crash ``name`` (by calling ``crash()``) at absolute time ``when``."""
        self._kernel._schedule_at(when, lambda: self._fire(name, crash, reason))

    def crash_after(self, delay, name, crash, reason="scheduled"):
        """Crash ``name`` after ``delay`` seconds from now."""
        self.crash_at(self._kernel.now + delay, name, crash, reason)

    def poisson_crashes(self, name, crash, mtbf, until=None, alive=None):
        """Repeatedly crash ``name`` with exponential inter-arrival times.

        ``mtbf`` is the mean time between failures in simulated seconds.
        ``alive`` (optional) is a predicate consulted before each crash;
        a dead target is skipped but the process keeps ticking, modeling
        a flaky machine that can fail again once restarted.
        """
        if mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {mtbf}")
        rng = self._kernel.rng(f"faults:{name}")

        def driver():
            while True:
                delay = rng.expovariate(1.0 / mtbf)
                if until is not None and self._kernel.now + delay > until:
                    return
                yield self._kernel.sleep(delay)
                if alive is not None and not alive():
                    continue
                self._fire(name, crash, "poisson")

        return self._kernel.spawn(driver(), name=f"faults:{name}")

    # ------------------------------------------------------------------
    # Gray faults
    # ------------------------------------------------------------------

    def inject_gray(self, name, kind, apply, revert=None, duration=None,
                    delay=0.0, reason=None):
        """Apply a gray fault to ``name`` and optionally schedule its end.

        ``apply``/``revert`` are zero-argument callables — typically a
        ``Network.degrade``/``restore`` pair or a disk-stall setter.
        ``kind`` labels the injection record ("slow", "partition",
        "loss", "duplicate", "disk-stall", ...). With both ``revert``
        and ``duration`` given, the fault clears ``duration`` seconds
        after it took effect; with ``delay`` the application itself is
        deferred. Unlike a crash, the target keeps serving throughout.
        """
        if duration is not None and duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")

        def clear():
            if self._tracer is not None:
                self._tracer.emit("fault-injector", "gray-cleared",
                                  target=name, fault=kind)
            revert()

        def fire():
            self._record(name, kind, reason or kind)
            apply()
            if revert is not None and duration is not None:
                self._kernel._schedule_at(self._kernel.now + duration, clear)

        if delay > 0:
            self._kernel._schedule_at(self._kernel.now + delay, fire)
        else:
            fire()
