"""Fault injection for dependability experiments.

The paper evaluates recovery by *manually crashing* components with
kubectl (Fig. 4) and argues resilience to random node/process failures.
This module provides both: one-shot scheduled crashes, and Poisson
crash processes with a given MTBF, each targeting a crash callback
supplied by the component under test.
"""


class FaultInjector:
    """Schedules crashes against registered targets."""

    def __init__(self, kernel, tracer=None):
        self._kernel = kernel
        self._tracer = tracer
        self.injected = []

    def _fire(self, name, crash, reason):
        self.injected.append((self._kernel.now, name, reason))
        if self._tracer is not None:
            self._tracer.emit("fault-injector", "crash-injected", target=name, reason=reason)
        crash()

    def crash_at(self, when, name, crash, reason="scheduled"):
        """Crash ``name`` (by calling ``crash()``) at absolute time ``when``."""
        self._kernel._schedule_at(when, lambda: self._fire(name, crash, reason))

    def crash_after(self, delay, name, crash, reason="scheduled"):
        """Crash ``name`` after ``delay`` seconds from now."""
        self.crash_at(self._kernel.now + delay, name, crash, reason)

    def poisson_crashes(self, name, crash, mtbf, until=None, alive=None):
        """Repeatedly crash ``name`` with exponential inter-arrival times.

        ``mtbf`` is the mean time between failures in simulated seconds.
        ``alive`` (optional) is a predicate consulted before each crash;
        a dead target is skipped but the process keeps ticking, modeling
        a flaky machine that can fail again once restarted.
        """
        if mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {mtbf}")
        rng = self._kernel.rng(f"faults:{name}")

        def driver():
            while True:
                delay = rng.expovariate(1.0 / mtbf)
                if until is not None and self._kernel.now + delay > until:
                    return
                yield self._kernel.sleep(delay)
                if alive is not None and not alive():
                    continue
                self._fire(name, crash, "poisson")

        return self._kernel.spawn(driver(), name=f"faults:{name}")
