"""Lightweight metrics for simulated components.

Mirrors the shape of a Prometheus-style registry: named counters,
gauges and histograms, labeled by component. Benchmarks read these to
produce the paper's tables.
"""

import math
import statistics


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def set(self, value):
        self.value = value

    def inc(self, amount=1.0):
        self.value += amount

    def dec(self, amount=1.0):
        self.value -= amount


class Histogram:
    """Records observations; exposes count/mean/percentiles.

    Stores raw observations — simulations here record at most a few
    hundred thousand samples, so exact percentiles are affordable and
    simpler than bucketing.
    """

    def __init__(self, name):
        self.name = name
        self.samples = []

    def observe(self, value):
        self.samples.append(value)

    @property
    def count(self):
        return len(self.samples)

    @property
    def total(self):
        return sum(self.samples)

    @property
    def mean(self):
        return statistics.fmean(self.samples) if self.samples else math.nan

    @property
    def minimum(self):
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self):
        return max(self.samples) if self.samples else math.nan

    def percentile(self, q):
        """Exact percentile ``q`` in [0, 100] by nearest-rank."""
        if not self.samples:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]


class MetricsRegistry:
    """Namespace of metrics; one per simulation, shared by components."""

    def __init__(self):
        self._metrics = {}

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name):
        return self._get(name, Histogram)

    def _get(self, name, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def names(self):
        return sorted(self._metrics)

    def snapshot(self):
        """Plain-dict view of every metric, for reports and tests."""
        out = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "min": metric.minimum,
                    "max": metric.maximum,
                }
            else:
                out[name] = metric.value
        return out
