"""Labeled metrics for simulated components.

Mirrors the shape of a Prometheus registry: named counter, gauge and
histogram *families*, each optionally carrying a fixed label schema.
An unlabeled family behaves exactly like a single metric (``inc``,
``set``, ``observe`` act on its default child), so simple call sites
stay simple; labeled families hand out children via ``labels(...)``.

Metric names are static and validated at registration — dynamic
dimensions (job ids, pod names, methods) belong in label values, never
in names, or the series namespace becomes unbounded and unaggregable.
Benchmarks read these to produce the paper's tables, and
:meth:`MetricsRegistry.expose` renders the Prometheus text format the
REST layer serves.
"""

import math
import re
import statistics
from bisect import bisect_left

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Prometheus-style default buckets, in simulated seconds, widened at the
# top because deploy/recovery intervals run into minutes.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                   5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


def _check_name(name):
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: names must be static "
            "([a-zA-Z_][a-zA-Z0-9_.]*); put dynamic values in labels"
        )
    return name


class _Family:
    """Shared machinery: a named family of label-keyed children."""

    def __init__(self, name, labelnames=(), help=""):
        self.name = _check_name(name)
        self.labelnames = tuple(labelnames)
        self.help = help
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._children = {}
        self._sorted_children = None

    def labels(self, **labelvalues):
        """The child for one combination of label values."""
        names = self.labelnames
        try:
            key = tuple([str(labelvalues[label]) for label in names])
        except KeyError:
            key = None
        if key is None or len(labelvalues) != len(names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
            self._sorted_children = None
        return child

    def remove(self, **labelvalues):
        """Drop the child for one label combination.

        Cardinality pruning: when a label set's source disappears for
        good (an endpoint unregistered, a pod torn down) its child
        would otherwise be walked by every scrape forever. A later
        ``labels()`` call with the same values recreates the child at
        zero — downstream consumers must treat that as a counter reset.
        Removing an absent child is a no-op."""
        names = self.labelnames
        try:
            key = tuple([str(labelvalues[label]) for label in names])
        except KeyError:
            key = None
        if key is None or len(labelvalues) != len(names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        if self._children.pop(key, None) is not None:
            self._sorted_children = None

    def _default(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labeled {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    def children(self):
        """Sorted ``(labelvalues_tuple, child)`` pairs.

        Cached between calls; creating a new child invalidates the
        cache. Callers must treat the list as read-only.
        """
        if self._sorted_children is None:
            self._sorted_children = sorted(self._children.items())
        return self._sorted_children


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Counter(_Family):
    """Monotonically increasing count."""

    kind = "counter"
    _new_child = _CounterChild

    def inc(self, amount=1.0):
        self._default().inc(amount)

    @property
    def value(self):
        return self._default().value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = value

    def inc(self, amount=1.0):
        self.value += amount

    def dec(self, amount=1.0):
        self.value -= amount


class Gauge(_Family):
    """A value that can go up and down."""

    kind = "gauge"
    _new_child = _GaugeChild

    def set(self, value):
        self._default().set(value)

    def inc(self, amount=1.0):
        self._default().inc(amount)

    def dec(self, amount=1.0):
        self._default().dec(amount)

    @property
    def value(self):
        return self._default().value


class _HistogramChild:
    """Raw observations plus cumulative bucket counts.

    Simulations record at most a few hundred thousand samples, so the
    raw list is affordable and gives exact percentiles; buckets exist
    for the Prometheus exposition. The sort needed by ``percentile`` is
    cached and invalidated on ``observe``, so repeated percentile reads
    (snapshots, exposition) don't re-sort an unchanged sample set.
    """

    __slots__ = ("buckets", "samples", "total", "_sorted", "_deltas",
                 "_cumulative")

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        # Per-bucket (non-cumulative) counts; +Inf last. The Prometheus
        # cumulative view is derived lazily, so observe() is a single
        # bisect instead of a walk over every bucket.
        self._deltas = [0] * (len(self.buckets) + 1)
        self._cumulative = None
        self.samples = []
        self.total = 0.0
        self._sorted = None

    def observe(self, value):
        self.samples.append(value)
        self.total += value
        self._sorted = None
        self._cumulative = None
        self._deltas[bisect_left(self.buckets, value)] += 1

    @property
    def bucket_counts(self):
        """Cumulative bucket counts (Prometheus ``le`` semantics);
        +Inf last. Read-only view, rebuilt after observations."""
        counts = self._cumulative
        if counts is None:
            counts = self._cumulative = []
            running = 0
            for delta in self._deltas:
                running += delta
                counts.append(running)
        return counts

    @property
    def count(self):
        return len(self.samples)

    @property
    def mean(self):
        return statistics.fmean(self.samples) if self.samples else math.nan

    @property
    def minimum(self):
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self):
        return max(self.samples) if self.samples else math.nan

    def percentile(self, q):
        """Exact percentile ``q`` in [0, 100] by nearest-rank."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if not self.samples:
            return math.nan
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(self._sorted)))
        return self._sorted[rank - 1]

    def bucket_percentile(self, q):
        """Percentile estimated from the cumulative buckets alone.

        The ``histogram_quantile`` estimate: linear interpolation
        inside the first bucket whose cumulative count reaches the
        target rank, O(#buckets) with no sort — cheap enough to call on
        every scrape tick, unlike :meth:`percentile`, whose sort cache
        is invalidated by every observation. Values landing in the
        +Inf bucket clamp to the largest finite bound. ``None`` when
        empty.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        counts = self.bucket_counts
        total = counts[-1]
        if total == 0:
            return None
        rank = max(1, math.ceil(q / 100.0 * total))
        for index, bound in enumerate(self.buckets):
            cumulative = counts[index]
            if cumulative >= rank:
                below = counts[index - 1] if index else 0
                lower = self.buckets[index - 1] if index else 0.0
                in_bucket = cumulative - below
                fraction = (rank - below) / in_bucket
                return lower + (bound - lower) * fraction
        return self.buckets[-1]


class Histogram(_Family):
    """Records observations; exposes count/mean/percentiles/buckets."""

    kind = "histogram"

    def __init__(self, name, labelnames=(), help="", buckets=DEFAULT_BUCKETS):
        super().__init__(name, labelnames, help)
        self.buckets = tuple(buckets)

    def _new_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value):
        self._default().observe(value)

    def percentile(self, q):
        return self._default().percentile(q)

    @property
    def count(self):
        return self._default().count

    @property
    def total(self):
        return self._default().total

    @property
    def mean(self):
        return self._default().mean

    @property
    def minimum(self):
        return self._default().minimum

    @property
    def maximum(self):
        return self._default().maximum

    @property
    def samples(self):
        return self._default().samples


def _escape_label_value(value):
    # Prometheus text format: label values escape backslash, double
    # quote and newline; anything else passes through verbatim.
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text):
    # HELP lines escape backslash and newline (quotes stay literal).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value):
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labelnames, labelvalues, extra=()):
    pairs = [f'{name}="{_escape_label_value(value)}"'
             for name, value in zip(labelnames, labelvalues)]
    pairs.extend(f'{name}="{_escape_label_value(value)}"'
                 for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class MetricsRegistry:
    """Namespace of metric families; one per simulation, shared."""

    def __init__(self):
        self._metrics = {}

    def counter(self, name, labelnames=(), help=""):
        return self._get(name, Counter, labelnames, help)

    def gauge(self, name, labelnames=(), help=""):
        return self._get(name, Gauge, labelnames, help)

    def histogram(self, name, labelnames=(), help="", buckets=None):
        metric = self._metrics.get(name)
        if metric is None and buckets is not None:
            metric = Histogram(name, labelnames, help, buckets=buckets)
            self._metrics[name] = metric
            return metric
        return self._get(name, Histogram, labelnames, help)

    def _get(self, name, kind, labelnames=(), help=""):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, labelnames, help)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        if tuple(labelnames) != metric.labelnames:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{metric.labelnames}, not {tuple(labelnames)}"
            )
        return metric

    def names(self):
        return sorted(self._metrics)

    def get(self, name):
        return self._metrics.get(name)

    def snapshot(self):
        """Plain-dict view of every metric, for reports and tests.

        Unlabeled children key by bare name; labeled children key as
        ``name{a="x",b="y"}``. Histogram entries carry count/mean/min/
        max plus p50/p95/p99.
        """
        out = {}
        for name, metric in sorted(self._metrics.items()):
            for labelvalues, child in metric.children():
                key = name + _labels_text(metric.labelnames, labelvalues)
                if metric.kind == "histogram":
                    # A child with zero observations has no meaningful
                    # statistics: report None, not NaN (which breaks
                    # JSON serialization) and not a misleading 0.
                    empty = child.count == 0
                    out[key] = {
                        "count": child.count,
                        "mean": None if empty else child.mean,
                        "min": None if empty else child.minimum,
                        "max": None if empty else child.maximum,
                        "p50": None if empty else child.percentile(50),
                        "p95": None if empty else child.percentile(95),
                        "p99": None if empty else child.percentile(99),
                    }
                else:
                    out[key] = child.value
        return out

    def expose(self):
        """Render every metric in the Prometheus text exposition format.

        Dots in metric names (a legacy house style) become underscores,
        since Prometheus names admit only ``[a-zA-Z0-9_:]``.
        """
        lines = []
        for name, metric in sorted(self._metrics.items()):
            exposed = name.replace(".", "_")
            if metric.help:
                lines.append(f"# HELP {exposed} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {exposed} {metric.kind}")
            for labelvalues, child in metric.children():
                base = list(zip(metric.labelnames, labelvalues))
                if metric.kind == "histogram":
                    cumulative = 0
                    for bound, in_bucket in zip(child.buckets,
                                                child.bucket_counts):
                        cumulative = in_bucket
                        labels = _labels_text(
                            (), (), extra=base + [("le", _format_value(bound))]
                        )
                        lines.append(f"{exposed}_bucket{labels} {cumulative}")
                    labels = _labels_text((), (), extra=base + [("le", "+Inf")])
                    lines.append(f"{exposed}_bucket{labels} {child.bucket_counts[-1]}")
                    plain = _labels_text((), (), extra=base)
                    lines.append(f"{exposed}_sum{plain} {_format_value(child.total)}")
                    lines.append(f"{exposed}_count{plain} {child.count}")
                else:
                    labels = _labels_text((), (), extra=base)
                    lines.append(f"{exposed}{labels} {_format_value(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")
