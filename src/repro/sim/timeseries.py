"""Bounded in-simulation time series (the scrape pipeline's storage).

A :class:`TimeSeriesStore` holds one ring buffer per (name, labels)
pair, fed by the monitoring scraper on a fixed cadence. Series are
bounded two ways — a sample-count cap and a retention window — so a
long simulation cannot grow memory without bound, mirroring a real
TSDB's retention policy. A series that stops being scraped (a crashed
component, a torn-down job) receives a *staleness marker*: rule
evaluation then treats the series as absent instead of acting forever
on its last value, exactly Prometheus' staleness semantics.
"""

from collections import deque


class TimeSeries:
    """One ring-buffered series of ``(time, value)`` samples.

    A sample whose value is ``None`` is a staleness marker: the series
    stopped being observed at that time. Markers terminate the series
    for instant lookups but are skipped by :meth:`values` /
    :meth:`window` so historical analysis sees only real samples.
    """

    __slots__ = ("name", "labels", "retention", "samples")

    def __init__(self, name, labels=(), retention=600.0, max_samples=2048):
        self.name = name
        self.labels = canonical_labels(labels)
        self.retention = retention
        self.samples = deque(maxlen=max_samples)

    @property
    def labels_dict(self):
        return dict(self.labels)

    def add(self, time, value):
        self._trim(time)
        self.samples.append((time, value))

    def mark_stale(self, time):
        """Record that the series stopped being observed at ``time``."""
        if self.samples and self.samples[-1][1] is None:
            return  # already stale; one marker is enough
        self.add(time, None)

    def _trim(self, now):
        cutoff = now - self.retention
        while self.samples and self.samples[0][0] < cutoff:
            self.samples.popleft()

    def latest(self):
        """The last ``(time, value)`` sample (may be a staleness marker)."""
        return self.samples[-1] if self.samples else None

    def latest_value(self, now=None, staleness=None):
        """The freshest real value, or ``None`` if the series is stale.

        Stale means: no samples, the last sample is a staleness marker,
        or (when ``staleness`` is given) the last sample is older than
        ``now - staleness``.
        """
        if not self.samples:
            return None
        time, value = self.samples[-1]
        if value is None:
            return None
        if staleness is not None and now is not None and now - time > staleness:
            return None
        return value

    def window(self, start, end=None):
        """Real samples with ``start <= time <= end`` (markers skipped)."""
        return [(t, v) for t, v in self.samples
                if v is not None and t >= start and (end is None or t <= end)]

    def values(self):
        return [v for _t, v in self.samples if v is not None]

    def __len__(self):
        return len(self.samples)

    def __repr__(self):
        labels = "{" + ",".join(f"{k}={v}" for k, v in self.labels) + "}" \
            if self.labels else ""
        return f"<TimeSeries {self.name}{labels} n={len(self.samples)}>"


def counter_increase(points):
    """Prometheus-style ``increase()`` over ``(time, value)`` samples.

    Sums positive deltas so a counter reset — a child pruned when its
    endpoint went away and recreated at zero after a restart — counts
    from zero instead of producing a huge negative delta. Identical to
    ``last - first`` for a monotone series.
    """
    total = 0.0
    prev = points[0][1]
    for _t, value in points[1:]:
        total += value - prev if value >= prev else value
        prev = value
    return total


def canonical_labels(labels):
    """Normalize a labels dict/iterable into a sorted tuple of pairs."""
    if isinstance(labels, dict):
        items = labels.items()
    else:
        items = labels
    return tuple(sorted((str(k), str(v)) for k, v in items))


class TimeSeriesStore:
    """All scraped series, keyed by (name, canonical labels).

    ``retention``/``max_samples`` are the store-wide bounds; per-series
    overrides (keyed by metric name) let an operator keep e.g. ``up``
    history longer than high-cardinality RPC quantiles.
    """

    def __init__(self, retention=600.0, max_samples=2048):
        self.retention = retention
        self.max_samples = max_samples
        self._series = {}
        # name -> sorted [(labels, series)] cache: series() is on the
        # alert engine's per-tick path, and without the index every rule
        # evaluation re-sorted the whole store. The cache invalidates
        # only on series creation and removal.
        self._by_name = {}
        self._sorted_by_name = {}
        self._overrides = {}  # name -> (retention, max_samples)

    def configure(self, name, retention=None, max_samples=None):
        """Per-series-name retention override for series created later."""
        self._overrides[name] = (
            retention if retention is not None else self.retention,
            max_samples if max_samples is not None else self.max_samples,
        )

    def _get_or_create(self, name, labels):
        key = (name, canonical_labels(labels))
        series = self._series.get(key)
        if series is None:
            retention, max_samples = self._overrides.get(
                name, (self.retention, self.max_samples))
            series = TimeSeries(name, key[1], retention=retention,
                                max_samples=max_samples)
            self._series[key] = series
            self._by_name.setdefault(name, {})[key[1]] = series
            self._sorted_by_name.pop(name, None)
        return series

    def add(self, name, labels, time, value):
        self._get_or_create(name, labels).add(time, value)

    def mark_stale(self, name, labels, time):
        series = self._series.get((name, canonical_labels(labels)))
        if series is not None:
            series.mark_stale(time)

    def remove(self, name, labels=()):
        """Drop one series (scraper cardinality pruning of series whose
        source went away and stayed away past retention). Returns
        whether the series existed."""
        key = (name, canonical_labels(labels))
        if self._series.pop(key, None) is None:
            return False
        group = self._by_name.get(name)
        if group is not None:
            group.pop(key[1], None)
            if not group:
                del self._by_name[name]
        self._sorted_by_name.pop(name, None)
        return True

    def get(self, name, labels=()):
        return self._series.get((name, canonical_labels(labels)))

    def _sorted_group(self, name):
        group = self._sorted_by_name.get(name)
        if group is None:
            by_labels = self._by_name.get(name)
            if not by_labels:
                return []
            group = [series for _labels, series in sorted(by_labels.items())]
            self._sorted_by_name[name] = group
        return group

    def series(self, name=None, **match):
        """Series filtered by name and label-subset match, sorted."""
        wanted = canonical_labels(match)
        if name is not None:
            group = self._sorted_group(name)
            if not wanted:
                return list(group)
            wanted_set = set(wanted)
            return [series for series in group
                    if wanted_set <= set(series.labels)]
        out = []
        for series_name in sorted(self._by_name):
            for series in self._sorted_group(series_name):
                if wanted and not set(wanted) <= set(series.labels):
                    continue
                out.append(series)
        return out

    def names(self):
        return sorted({name for name, _labels in self._series})

    def __len__(self):
        return len(self._series)
