"""Deterministic discrete-event simulation kernel.

This is the substrate clock for the whole reproduction: every
microservice, Kubernetes controller, Raft node and learner process runs
as a generator-based process on :class:`Kernel`, and all times reported
by benchmarks are simulated seconds.
"""

from .channels import Channel
from .errors import ChannelClosed, Interrupt, ProcessKilled, SimError, SimTimeout
from .events import AllOf, AnyOf, Event
from .faults import FaultInjector
from .kernel import Kernel
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .process import Process
from .reconciler import Reconciler, WatchSource, WorkQueue
from .shard import (
    BoundaryMessage,
    ShardPort,
    ShardSlot,
    ShardedKernel,
    merged_digest,
)
from .timeseries import TimeSeries, TimeSeriesStore
from .tracing import (
    NULL_SPAN,
    Span,
    SpanContext,
    TraceRecord,
    Tracer,
    extract_context,
    inject_context,
    render_critical_path,
    render_span_tree,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "BoundaryMessage",
    "Channel",
    "ChannelClosed",
    "Counter",
    "Event",
    "FaultInjector",
    "Gauge",
    "Histogram",
    "Interrupt",
    "Kernel",
    "MetricsRegistry",
    "NULL_SPAN",
    "Process",
    "ProcessKilled",
    "Reconciler",
    "ShardPort",
    "ShardSlot",
    "ShardedKernel",
    "SimError",
    "SimTimeout",
    "Span",
    "SpanContext",
    "TimeSeries",
    "TimeSeriesStore",
    "TraceRecord",
    "Tracer",
    "WatchSource",
    "WorkQueue",
    "extract_context",
    "inject_context",
    "merged_digest",
    "render_critical_path",
    "render_span_tree",
]
