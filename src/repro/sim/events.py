"""One-shot waitable events for the simulation kernel.

An :class:`Event` starts pending, and is triggered exactly once — either
:meth:`Event.succeed` with a value, or :meth:`Event.fail` with an
exception. Processes wait on events by yielding them from their
generator; the kernel resumes the process with the event's value (or
throws the event's exception into it).
"""

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"


class Event:
    """A one-shot waitable; the unit of synchronization in the kernel."""

    def __init__(self, kernel, name=""):
        self._kernel = kernel
        self.name = name
        self.state = PENDING
        self.value = None
        self.exception = None
        self._callbacks = []

    @property
    def triggered(self):
        return self.state != PENDING

    @property
    def ok(self):
        return self.state == SUCCEEDED

    def succeed(self, value=None):
        """Trigger the event successfully, waking all waiters."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self.state = SUCCEEDED
        self.value = value
        self._dispatch()
        return self

    def fail(self, exception):
        """Trigger the event with an exception, which waiters receive."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.state = FAILED
        self.exception = exception
        self._dispatch()
        return self

    def add_callback(self, callback):
        """Register ``callback(event)``; runs at trigger time.

        If the event has already triggered, the callback is scheduled to
        run immediately (at the current simulated instant).
        """
        if self.triggered:
            self._kernel._schedule_now(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback):
        """Unregister a pending callback; ignores unknown callbacks."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def _dispatch(self):
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._kernel._schedule_now(lambda cb=callback: cb(self))

    def __repr__(self):
        return f"<Event {self.name!r} {self.state}>"


class AnyOf(Event):
    """Succeeds when any child event triggers.

    The value is a ``(event, value)`` pair for the first child that
    triggered. A failing child fails the composite.
    """

    def __init__(self, kernel, events, name="any-of"):
        super().__init__(kernel, name=name)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event):
        if self.triggered:
            return
        if event.state == FAILED:
            self.fail(event.exception)
        else:
            self.succeed((event, event.value))


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    The value is the list of child values, in the order the children
    were given. The first failing child fails the composite.
    """

    def __init__(self, kernel, events, name="all-of"):
        super().__init__(kernel, name=name)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            # Vacuously complete; trigger via the scheduler so waiters
            # registered after construction still wake up.
            kernel._schedule_now(lambda: self.succeed([]))
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event):
        if self.triggered:
            return
        if event.state == FAILED:
            self.fail(event.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self.events])
