"""One-shot waitable events for the simulation kernel.

An :class:`Event` starts pending, and is triggered exactly once — either
:meth:`Event.succeed` with a value, or :meth:`Event.fail` with an
exception. Processes wait on events by yielding them from their
generator; the kernel resumes the process with the event's value (or
throws the event's exception into it).

Cancellation: a pending event that nobody will ever wait on again can be
defused with :meth:`Event.cancel` — it drops its callbacks and will
never trigger. Timers (see :class:`repro.sim.kernel.Timer`) extend this
with lazy heap deletion: the cancelled entry stays in the kernel's heap
and is skipped (counted, not dispatched) when it pops. Cancelling an
event another process still waits on would strand that process, so only
cancel events you own exclusively — e.g. the losing timer of a
deadline race.
"""

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"


class Event:
    """A one-shot waitable; the unit of synchronization in the kernel.

    Slotted: events (and their Timer/Process subclasses) are the
    hottest allocation in the simulator — at bench scale hundreds of
    thousands are created per run, and dropping the per-instance dict
    is a measurable win (see EXPERIMENTS.md).
    """

    __slots__ = ("_kernel", "name", "state", "value", "exception",
                 "_callbacks", "_pending_dispatch", "__weakref__")

    def __init__(self, kernel, name=""):
        self._kernel = kernel
        self.name = name
        self.state = PENDING
        self.value = None
        self.exception = None
        self._callbacks = []
        self._pending_dispatch = None

    @property
    def triggered(self):
        return self.state is not PENDING

    @property
    def ok(self):
        return self.state is SUCCEEDED

    @property
    def cancelled(self):
        return self.state is CANCELLED

    def succeed(self, value=None):
        """Trigger the event successfully, waking all waiters."""
        if self.state is not PENDING:
            raise RuntimeError(f"event {self.name!r} already {self.state}")
        self.state = SUCCEEDED
        self.value = value
        self._dispatch()
        return self

    def fail(self, exception):
        """Trigger the event with an exception, which waiters receive."""
        if self.state is not PENDING:
            raise RuntimeError(f"event {self.name!r} already {self.state}")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.state = FAILED
        self.exception = exception
        self._dispatch()
        return self

    def cancel(self):
        """Defuse a pending event: it will never trigger, and its
        callbacks are dropped.

        Only the exclusive owner of an event may cancel it — a waiter
        added later would never wake. No-op once triggered, and when the
        kernel runs with ``timer_cancellation=False`` (the bit-compatible
        slow path used by the timeline-equivalence tests).
        """
        if self.state is PENDING and self._kernel._timer_cancellation:
            self.state = CANCELLED
            self._callbacks = None

    def add_callback(self, callback):
        """Register ``callback(event)``; runs at trigger time.

        If the event has already triggered, the callback is scheduled to
        run immediately (at the current simulated instant).
        """
        if self.state is PENDING:
            self._callbacks.append(callback)
        elif self.state is CANCELLED:
            raise RuntimeError(f"event {self.name!r} was cancelled")
        else:
            self._kernel._schedule_now(lambda: callback(self))

    def remove_callback(self, callback):
        """Unregister a pending callback; ignores unknown callbacks."""
        if self._callbacks:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def _dispatch(self):
        # One queue entry runs every registered callback in order. This
        # is order-equivalent to scheduling one entry per callback:
        # callbacks still run in registration order, and anything they
        # schedule lands at a later sequence number, hence after the
        # whole batch — exactly as before.
        callbacks = self._callbacks
        self._callbacks = ()
        if callbacks:
            self._pending_dispatch = callbacks
            self._kernel._schedule_now(self._run_dispatch)

    def _run_dispatch(self):
        callbacks = self._pending_dispatch
        self._pending_dispatch = None
        for callback in callbacks:
            callback(self)

    def __repr__(self):
        return f"<Event {self.name!r} {self.state}>"


class AnyOf(Event):
    """Succeeds when any child event triggers.

    The value is a ``(event, value)`` pair for the first child that
    triggered. A failing child fails the composite. On first trigger the
    composite detaches its callback from the losing children, so a
    long-lived loser (a watch, a stop event) does not accumulate dead
    callbacks across races.
    """

    __slots__ = ("events",)

    def __init__(self, kernel, events, name="any-of"):
        super().__init__(kernel, name=name)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event):
        if self.state is not PENDING:
            return
        if event.state is FAILED:
            self.fail(event.exception)
        else:
            self.succeed((event, event.value))
        if self._kernel._timer_cancellation:
            on_child = self._on_child
            for other in self.events:
                if other is not event and other.state is PENDING:
                    other.remove_callback(on_child)


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    The value is the list of child values, in the order the children
    were given. The first failing child fails the composite and detaches
    from the still-pending children.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, kernel, events, name="all-of"):
        super().__init__(kernel, name=name)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            # Vacuously complete; trigger via the scheduler so waiters
            # registered after construction still wake up.
            kernel._schedule_now(lambda: self.succeed([]))
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event):
        if self.state is not PENDING:
            return
        if event.state is FAILED:
            self.fail(event.exception)
            if self._kernel._timer_cancellation:
                on_child = self._on_child
                for other in self.events:
                    if other is not event and other.state is PENDING:
                        other.remove_callback(on_child)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self.events])
