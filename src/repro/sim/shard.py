"""Partitioned simulation: conservative-lookahead sharding.

The kernel was built single-loop; this module lets a simulation be
*partitioned* into shards, each owning a private :class:`Kernel` (its
own clock, heap, RNG streams and tracing context) and communicating
with other shards **only** through explicit boundary messages with a
declared minimum latency — the *lookahead*. Because every cross-shard
message arrives at least ``lookahead`` after it was sent, shards can
execute an entire window of simulated time independently and still
merge into one deterministic global timeline.

Synchronization protocol (synchronous conservative windows, a bounded-
lag/YAWNS variant of null-message CMB):

1. The coordinator computes ``T`` — the global lower bound on the time
   stamp of any future event: the minimum over all shards' next local
   event times and all in-flight boundary-message timestamps.
2. Every in-flight message is delivered (scheduled on its destination
   kernel at its timestamp, in ``(ts, src, seq)`` order — a total,
   execution-independent order).
3. Every shard runs all local events with ``time < T + lookahead``.
   Any message sent during this window carries ``ts >= send_time +
   lookahead >= T + lookahead``, i.e. it lands strictly beyond the
   window — no shard can ever receive a message from its past.
4. Outboxes are collected; repeat until every shard's program reports
   completion and no messages are in flight.

Step 3 is what multiprocessing parallelizes: windows are computed from
global state only, so the event order inside each shard — and hence the
merged timeline — is identical whether the shards run interleaved on
one worker or concurrently on eight. That property is asserted by the
digest gates in ``benchmarks/bench_perf.py``.

Payloads cross the boundary serialized exactly once (:meth:`ShardPort.
send` pickles at enqueue; the receiving handler unpickles once), the
multiprocessing analogue of the PR-5 single-copy RPC discipline — and
it also guarantees shards share no mutable state even on the inline
executor.
"""

import hashlib
import multiprocessing
import pickle

from .errors import SimError
from .kernel import Kernel


class BoundaryMessage:
    """One serialized payload crossing a shard boundary.

    ``payload`` is pickled bytes (serialized once at send). Messages
    are globally ordered by ``(ts, src, seq)``; ``seq`` is the sender's
    private counter, so the order never depends on execution timing.
    """

    __slots__ = ("ts", "src", "dst", "seq", "kind", "payload")

    def __init__(self, ts, src, dst, seq, kind, payload):
        self.ts = ts
        self.src = src
        self.dst = dst
        self.seq = seq
        self.kind = kind
        self.payload = payload

    @property
    def order_key(self):
        return (self.ts, self.src, self.seq)

    def __repr__(self):
        return (f"<boundary {self.kind} s{self.src}->s{self.dst} "
                f"@{self.ts:.6f} #{self.seq}>")


class ShardPort:
    """A shard's only doorway to the rest of the simulation.

    Owned by exactly one kernel (``kernel.shard`` is bound to it) and
    holds the per-shard counters that monitoring publishes as
    ``shard_boundary_messages_total`` / ``shard_lookahead_stalls_total``
    / ``shard_merge_lag_seconds``.
    """

    def __init__(self, kernel, shard_id, num_shards, lookahead):
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive: {lookahead}")
        if not 0 <= shard_id < num_shards:
            raise ValueError(f"shard_id {shard_id} out of range 0..{num_shards - 1}")
        self.kernel = kernel
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.lookahead = lookahead
        self._outbox = []
        self._handlers = {}
        self._seq = 0
        # Perf/protocol counters (scraped by repro.monitoring).
        self.messages_sent = 0
        self.messages_received = 0
        self.lookahead_stalls = 0
        self.merge_lag = 0.0
        self.windows_run = 0
        # Boundary messages generated during the post-completion settle
        # run — routing has stopped, so they are dropped, and counted:
        # silently losing even a late fire-and-forget response would
        # make protocol bugs invisible.
        self.messages_dropped = 0
        kernel.shard = self

    # ------------------------------------------------------------------
    # Sending and receiving
    # ------------------------------------------------------------------

    def on(self, kind, handler):
        """Register ``handler(src_shard, payload)`` for message ``kind``."""
        if kind in self._handlers:
            raise ValueError(f"handler already registered for {kind!r}")
        self._handlers[kind] = handler
        return self

    def send(self, dst, kind, payload, delay=None):
        """Enqueue a boundary message to shard ``dst``.

        ``delay`` defaults to the lookahead and may never undercut it —
        that floor is what makes the window protocol conservative. The
        payload is pickled here, exactly once.
        """
        if dst == self.shard_id:
            raise SimError("boundary message to own shard (use local events)")
        if not 0 <= dst < self.num_shards:
            raise SimError(f"unknown destination shard {dst}")
        delay = self.lookahead if delay is None else delay
        if delay < self.lookahead:
            raise SimError(
                f"boundary delay {delay} undercuts lookahead {self.lookahead}")
        self._seq += 1
        message = BoundaryMessage(
            self.kernel.now + delay, self.shard_id, dst, self._seq, kind,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        self._outbox.append(message)
        self.messages_sent += 1
        return message

    def deliver(self, message):
        """Schedule an incoming message on the local kernel (coordinator
        calls this at window boundaries; ``message.ts`` is always in the
        local future — the protocol guarantees it)."""
        handler = self._handlers.get(message.kind)
        if handler is None:
            raise SimError(f"shard {self.shard_id}: no handler for "
                           f"boundary kind {message.kind!r}")
        payload = pickle.loads(message.payload)
        src = message.src
        self.kernel._schedule_at(message.ts, lambda: handler(src, payload))
        self.messages_received += 1

    def drain_outbox(self):
        outbox, self._outbox = self._outbox, []
        return outbox

    def counters(self):
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "lookahead_stalls": self.lookahead_stalls,
            "windows_run": self.windows_run,
            "messages_dropped": self.messages_dropped,
        }


class _ShardRun:
    """One shard built and running inside a worker (or inline).

    ``spec`` is ``(builder, args, kwargs)`` with a module-level
    ``builder(slot, *args, **kwargs)`` returning a *program*: an object
    exposing ``kernel``, ``port``, a ``done`` property, ``settle_time()``
    (the deterministic tail-run target, valid once done) and
    ``result()`` (picklable).
    """

    def __init__(self, shard_id, spec, num_shards, lookahead):
        builder, args, kwargs = spec
        self.shard_id = shard_id
        slot = ShardSlot(shard_id, num_shards, lookahead)
        self.program = builder(slot, *args, **kwargs)
        self.kernel = self.program.kernel
        self.port = self.program.port

    def poll(self):
        return (self.kernel.peek_time(), bool(self.program.done))

    def run_window(self, start, end, messages):
        for message in messages:
            self.port.deliver(message)
        self.port.merge_lag = max(0.0, start - self.kernel.now)
        ran = self.kernel.run_window(end)
        self.port.windows_run += 1
        if ran == 0 and self.kernel.peek_time() is not None:
            # Held back purely by the global window bound: a lookahead
            # stall (the shard had work, just not safely executable yet).
            self.port.lookahead_stalls += 1
        return (self.kernel.peek_time(), bool(self.program.done),
                ran, self.port.drain_outbox())

    def settle(self):
        target = self.program.settle_time()
        if target is not None and target > self.kernel.now:
            self.kernel.run(until=target)
        self.port.messages_dropped += len(self.port.drain_outbox())
        return self.program.result(), self.port.counters()


class ShardSlot:
    """The shard-shaped hole a program builder fills.

    Builders create their own :class:`Kernel` (seed, fast-path flags —
    the kernel is theirs) and call :meth:`bind` to attach the boundary
    port.
    """

    __slots__ = ("shard_id", "num_shards", "lookahead")

    def __init__(self, shard_id, num_shards, lookahead):
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.lookahead = lookahead

    def bind(self, kernel):
        return ShardPort(kernel, self.shard_id, self.num_shards,
                         self.lookahead)


def _worker_main(conn, shard_ids, specs, num_shards, lookahead):
    """Multiprocessing worker: owns a subset of shards, obeys the
    coordinator's window commands over a pipe."""
    runs = {i: _ShardRun(i, specs[i], num_shards, lookahead)
            for i in shard_ids}
    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "poll":
                conn.send({i: run.poll() for i, run in runs.items()})
            elif op == "window":
                _, start, end, messages_by_shard = command
                replies = {}
                for i, run in runs.items():
                    replies[i] = run.run_window(
                        start, end, messages_by_shard.get(i, ()))
                conn.send(replies)
            elif op == "settle":
                conn.send({i: run.settle() for i, run in runs.items()})
            elif op == "stop":
                break
    except EOFError:
        pass
    finally:
        conn.close()


class _InlineExecutor:
    """All shards interleaved on the calling process (the 1-worker
    reference execution every parallel run must match bit-for-bit)."""

    def __init__(self, specs, num_shards, lookahead):
        self.runs = [_ShardRun(i, specs[i], num_shards, lookahead)
                     for i in range(num_shards)]

    def poll(self):
        return {run.shard_id: run.poll() for run in self.runs}

    def window(self, start, end, messages_by_shard):
        return {run.shard_id: run.run_window(
                    start, end, messages_by_shard.get(run.shard_id, ()))
                for run in self.runs}

    def settle(self):
        return {run.shard_id: run.settle() for run in self.runs}

    def close(self):
        self.runs = []


class _ProcessExecutor:
    """Shards spread over ``workers`` OS processes, lock-stepped at
    window boundaries over pipes."""

    def __init__(self, specs, num_shards, lookahead, workers):
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            context = multiprocessing.get_context("spawn")
        self._conns = []
        self._procs = []
        self._owner = {}
        assignments = [[] for _ in range(workers)]
        for shard_id in range(num_shards):
            assignments[shard_id % workers].append(shard_id)
        for worker_index, shard_ids in enumerate(assignments):
            if not shard_ids:
                continue
            parent, child = context.Pipe()
            proc = context.Process(
                target=_worker_main,
                args=(child, shard_ids, specs, num_shards, lookahead),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
            for shard_id in shard_ids:
                self._owner[shard_id] = len(self._conns) - 1

    def _broadcast(self, command):
        for conn in self._conns:
            conn.send(command)
        merged = {}
        for conn in self._conns:
            merged.update(conn.recv())
        return merged

    def poll(self):
        return self._broadcast(("poll",))

    def window(self, start, end, messages_by_shard):
        for worker_index, conn in enumerate(self._conns):
            owned = {i: msgs for i, msgs in messages_by_shard.items()
                     if self._owner[i] == worker_index}
            conn.send(("window", start, end, owned))
        merged = {}
        for conn in self._conns:
            merged.update(conn.recv())
        return merged

    def settle(self):
        return self._broadcast(("settle",))

    def close(self):
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
        self._conns, self._procs = [], []


class ShardedKernel:
    """Coordinator of a partitioned simulation.

    ``specs`` is one ``(builder, args, kwargs)`` per shard (see
    :class:`_ShardRun` for the program protocol). ``workers`` chooses
    execution only — the merged timeline is identical for any worker
    count, which is the whole point.
    """

    def __init__(self, specs, lookahead, workers=None, executor="process"):
        self.specs = list(specs)
        self.num_shards = len(self.specs)
        if self.num_shards == 0:
            raise ValueError("ShardedKernel needs at least one shard")
        self.lookahead = lookahead
        self.workers = min(workers or self.num_shards, self.num_shards)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        self.executor = executor
        self.results = None
        self.epochs = 0
        self.stats = None
        self._message_hash = hashlib.sha256()
        self.messages_routed = 0

    # ------------------------------------------------------------------

    def _make_executor(self):
        if self.executor == "inline" or (
                self.executor == "auto" and self.workers == 1):
            return _InlineExecutor(self.specs, self.num_shards, self.lookahead)
        if self.executor in ("process", "auto"):
            return _ProcessExecutor(self.specs, self.num_shards,
                                    self.lookahead, self.workers)
        raise ValueError(f"unknown executor {self.executor!r}")

    def run(self, limit=None, max_epochs=None):
        """Drive every shard to program completion; returns self.

        ``limit`` caps global simulated time (SimError beyond it, like
        ``run_until_complete``); ``max_epochs`` is a runaway backstop.
        """
        executor = self._make_executor()
        try:
            inflight = []
            states = executor.poll()
            while True:
                done = all(state[1] for state in states.values())
                if done and not inflight:
                    break
                candidates = [state[0] for state in states.values()
                              if state[0] is not None]
                candidates.extend(message.ts for message in inflight)
                if not candidates:
                    raise SimError(
                        "sharded deadlock: undone programs, empty queues, "
                        "no messages in flight")
                start = min(candidates)
                if limit is not None and start > limit:
                    raise SimError(
                        f"sharded run exceeded limit={limit} "
                        f"(frontier {start})")
                if max_epochs is not None and self.epochs >= max_epochs:
                    raise SimError(f"sharded run exceeded {max_epochs} epochs")
                window_end = start + self.lookahead
                by_shard = {}
                inflight.sort(key=lambda m: (m.ts, m.src, m.seq))
                for message in inflight:
                    by_shard.setdefault(message.dst, []).append(message)
                    self._note_routed(message)
                replies = executor.window(start, window_end, by_shard)
                inflight = []
                states = {}
                for shard_id, (next_time, prog_done, _ran, outbox) in \
                        replies.items():
                    states[shard_id] = (next_time, prog_done)
                    inflight.extend(outbox)
                self.epochs += 1
            settled = executor.settle()
            self.results = [settled[i][0] for i in range(self.num_shards)]
            self._collect_stats(settled)
        finally:
            executor.close()
        return self

    def _note_routed(self, message):
        self.messages_routed += 1
        self._message_hash.update(repr(
            (round(message.ts, 9), message.src, message.dst, message.seq,
             message.kind)).encode())

    def _collect_stats(self, settled):
        totals = {"messages_sent": 0, "messages_received": 0,
                  "lookahead_stalls": 0, "windows_run": 0,
                  "messages_dropped": 0}
        for i in range(self.num_shards):
            for key, value in settled[i][1].items():
                totals[key] += value
        totals["epochs"] = self.epochs
        totals["messages_routed"] = self.messages_routed
        self.stats = totals

    @property
    def message_digest(self):
        """Digest of the routed cross-shard message sequence (part of
        the merged-timeline fingerprint)."""
        return self._message_hash.hexdigest()


def merged_digest(shard_digests, message_digest):
    """One fingerprint for the whole partitioned run: the per-shard
    timeline digests (in shard order) plus the boundary-message log."""
    blob = repr((tuple(shard_digests), message_digest))
    return hashlib.sha256(blob.encode()).hexdigest()
