"""Generator-based simulation processes.

A process wraps a generator. Each value the generator yields must be an
:class:`~repro.sim.events.Event` (processes themselves are events, so
``yield other_process`` joins it). When the yielded event triggers, the
kernel resumes the generator with the event's value, or throws the
event's exception into it.

A process is itself an event: it succeeds with the generator's return
value, or fails with the uncaught exception. Killing a process throws
:class:`~repro.sim.errors.ProcessKilled` into the generator at its
current suspension point.
"""

from .errors import Interrupt, ProcessKilled
from .events import FAILED, Event


class Process(Event):
    """A running simulated activity; also the event of its completion."""

    __slots__ = ("_generator", "_waiting_on", "_pending_kill")

    def __init__(self, kernel, generator, name=""):
        super().__init__(kernel, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(
                f"spawn() needs a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        self._generator = generator
        self._waiting_on = None
        self._pending_kill = None
        kernel._schedule_now(self._start)

    def _start(self):
        self._resume(None)

    @property
    def alive(self):
        return not self.triggered

    # ------------------------------------------------------------------

    def kill(self, reason=""):
        """Throw :class:`ProcessKilled` into the process.

        Idempotent on finished processes. The kill lands at the process's
        current suspension point, at the current simulated instant.
        """
        self._deliver(ProcessKilled(reason))

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process without killing it."""
        self._deliver(Interrupt(cause))

    def _deliver(self, exc):
        if self.triggered or self._pending_kill is not None:
            return
        self._pending_kill = exc
        if self._waiting_on is not None:
            self._waiting_on.remove_callback(self._on_wait_done)
            self._waiting_on = None
        self._kernel._schedule_now(self._fire_pending)

    def _fire_pending(self):
        exc, self._pending_kill = self._pending_kill, None
        if exc is None or self.triggered:
            return
        self._resume(None, throw=exc)

    # ------------------------------------------------------------------

    def _on_wait_done(self, event):
        self._waiting_on = None
        if event.state == FAILED:
            self._resume(None, throw=event.exception)
        else:
            self._resume(event.value)

    def _resume(self, value, throw=None):
        if self.triggered:
            return
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as killed:
            # A kill that propagated out is a normal termination mode.
            self.fail(killed)
            return
        except BaseException as exc:
            self.fail(exc)
            if not isinstance(exc, Exception):
                raise
            return
        if not isinstance(target, Event):
            self.fail(TypeError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_done)

    def fail(self, exception):
        # Unlike bare events, a failed process must not crash the kernel
        # loop; waiters observe the failure, and tests assert on it.
        super().fail(exception)
        return self

    def __repr__(self):
        return f"<Process {self.name!r} {self.state}>"
