"""Partitioned LCM pool: leased ownership of job-id slices (ISSUE 10).

With ``PlatformConfig(lcm_slices=N)`` the job-id space is hashed into
N slices and every LCM instance runs a :class:`SliceManager` that
leases a subset of them through raftkv:

* each manager holds one lease (TTL ``lcm_lease_ttl``) and registers a
  member key under it;
* slice ownership is a ``cas(slice_key, None, address, lease=...)`` —
  winning the swap and binding the lease is one atomic Raft command,
  so two managers can never both own a slice;
* a manager claims unowned slices up to ``ceil(slices / members)``
  and releases its excess when new members join — ownership movement
  on membership change is bounded, mirroring the hash ring's K/n
  property at the LCM tier;
* when a partition crashes, its keepalives stop, the leader's lease
  sweeper expires the lease, the slice keys attached to it vanish,
  and a survivor's next tick adopts the orphaned slices
  (``SliceAdopted`` Warning event) — crash-failover is lease expiry
  plus re-claim, no coordinator.

Ownership gates which QUEUED jobs a partition's deploy reconciler
relists and which Guardians its GC collects; a ``deploy_job`` notify
that lands on the wrong partition is forwarded to the owner. None of
this is load-bearing for correctness — the Mongo QUEUED->DEPLOYING
claim already makes concurrent deploys exactly-once — it is the
*scaling* structure: each partition's work queue sees only its slice
of the job space.
"""

import math

from ..grpcnet.hashring import stable_hash
from ..sim.errors import ProcessKilled

SLICE_PREFIX = "/lcm/slices/"
MEMBER_PREFIX = "/lcm/members/"


def slice_of(job_id, slices):
    """The slice owning ``job_id`` (stable across processes)."""
    return stable_hash(job_id) % slices


def slice_key(index):
    return f"{SLICE_PREFIX}{index:04d}"


def member_key(address):
    return f"{MEMBER_PREFIX}{address}"


class SliceManager:
    """One LCM instance's view of (and claim on) the slice space."""

    def __init__(self, platform, address, etcd):
        self.platform = platform
        self.kernel = platform.kernel
        self.address = address
        self.etcd = etcd
        self.slices = platform.config.lcm_slices
        self.ttl = platform.config.lcm_lease_ttl
        self.tick = platform.config.lcm_slice_tick
        self.lease_id = f"lcm-slices:{address}"
        self.owned = set()
        self._owners = {}  # slice index -> address, as of the last tick
        self._process = None
        self._g_owned = platform.metrics.gauge(
            "lcm_slices_owned", ("lcm",),
            help="Job-id slices this LCM partition currently owns")
        self._m_adopted = platform.metrics.counter(
            "lcm_slice_adoptions_total", ("lcm",),
            help="Orphaned slices adopted after a peer's lease expired")

    # ------------------------------------------------------------------
    # Lifecycle (driven by the LCM pod workload)
    # ------------------------------------------------------------------

    def start(self):
        self._process = self.kernel.spawn(
            self._loop(), name=f"slices:{self.address}")
        return self

    def stop(self):
        """Stop claiming; the lease is left to expire (TTL), which is
        also the crash path — survivors adopt within one sweep+tick."""
        if self._process is not None:
            self._process.kill(f"slice manager {self.address} stopped")
            self._process = None
        self._g_owned.labels(lcm=self.address).set(0)

    # ------------------------------------------------------------------
    # Ownership queries (used by the LCM's reconcilers / RPC handlers)
    # ------------------------------------------------------------------

    def owns(self, job_id):
        return slice_of(job_id, self.slices) in self.owned

    def owner_of(self, job_id):
        """Best-known owner address for the job's slice (may be stale
        by one tick; callers treat it as a routing hint, not truth)."""
        return self._owners.get(slice_of(job_id, self.slices))

    # ------------------------------------------------------------------
    # The claim loop
    # ------------------------------------------------------------------

    def _loop(self):
        yield from self._register()
        while True:
            yield self.kernel.sleep(self.tick)
            try:
                yield from self._tick()
            except ProcessKilled:
                raise
            except Exception:
                # Transient etcd unavailability (election, partition):
                # keep ticking; the lease TTL is the arbiter of life.
                continue

    def _register(self):
        yield from self.etcd.lease_grant(self.lease_id, self.ttl)
        yield from self.etcd.put(member_key(self.address), True,
                                 lease=self.lease_id)

    def _tick(self):
        alive = yield from self.etcd.lease_keepalive(self.lease_id)
        if not alive.get("ok"):
            # Our lease expired under us (long partition): every claim
            # we held is gone. Start over as a fresh member.
            self.owned.clear()
            yield from self._register()

        members = yield from self.etcd.get_range(MEMBER_PREFIX)
        member_count = max(1, len(members))
        owners = {}
        kvs = yield from self.etcd.get_range(SLICE_PREFIX)
        for key, value in kvs:
            if value is not None:
                owners[int(key[len(SLICE_PREFIX):])] = value

        # The store is authoritative: drop anything we no longer hold
        # (lease loss observed by others, releases from a past tick).
        self.owned = {i for i, addr in owners.items() if addr == self.address}

        cap = math.ceil(self.slices / member_count)
        for index in range(self.slices):
            if len(self.owned) >= cap:
                break
            if index in owners:
                continue
            won = yield from self.etcd.cas(slice_key(index), None,
                                           self.address, lease=self.lease_id)
            if not won.get("ok"):
                continue
            self.owned.add(index)
            previous = self._owners.get(index)
            if previous is not None and previous != self.address:
                # The slice had a live owner last tick and its key is
                # gone: that peer's lease expired. This is adoption —
                # the crash-failover path — so it warns.
                self._m_adopted.labels(lcm=self.address).inc()
                self.platform.events.emit_event(
                    "Warning", "SliceAdopted", "Lcm", self.address,
                    message=f"adopted slice {index} from {previous} "
                            "(lease expired)")
            else:
                self.platform.events.emit_event(
                    "Normal", "SliceAssigned", "Lcm", self.address,
                    message=f"claimed slice {index}")
            owners[index] = self.address

        # New members joined and we are over the fair cap: release the
        # excess (highest indices first — deterministic) so joiners can
        # claim them. Bounded movement: only the overflow moves.
        if len(self.owned) > cap:
            for index in sorted(self.owned, reverse=True)[:len(self.owned) - cap]:
                yield from self.etcd.delete(slice_key(index))
                self.owned.discard(index)
                owners.pop(index, None)

        self._owners = owners
        self._g_owned.labels(lcm=self.address).set(len(self.owned))
