"""The Guardian: per-job deployer and monitor (paper §III.d–f).

The Guardian is a DLaaS component created on the fly *as a Kubernetes
Job* for every DL job. Creating it is a single quick step; the Guardian
then performs the multi-step deployment (volume claim, network policy,
helper pod, learner StatefulSet). Because it runs as a K8S Job,
Kubernetes guarantees to restart it on any crash; the restarted
Guardian rolls back the partially deployed job (using a write-ahead
record in ETCD) and deploys afresh, up to a configurable number of
attempts, after which it marks the job FAILED in MongoDB.

Once deployment succeeds, the Guardian monitors: it aggregates the
per-learner statuses the controller records in ETCD and writes the
overall job status to MongoDB, handles user-initiated halts, triggers
teardown, and exits (completing the K8S Job) when the DL job reaches a
terminal state.
"""

from ..cluster import (
    ContainerSpec,
    Deployment,
    NetworkPolicy,
    PersistentVolumeClaim,
    PodSpec,
    PodTemplate,
    RESTART_ALWAYS,
    StatefulSet,
)
from ..raftkv import EtcdClient
from ..sim import Reconciler
from . import layout
from .helpers import (
    HELPER_DONE,
    make_controller_workload,
    make_load_data_workload,
    make_log_collector_workload,
    make_store_results_workload,
)
from .learner import make_learner_workload
from .manifest import TrainingManifest
from .states import (
    COMPLETED,
    DEPLOYING,
    DOWNLOADING,
    FAILED,
    HALTED,
    PROCESSING,
    STORING,
    TERMINAL_EVENT_FOR,
    is_terminal,
    validate_transition,
)

# Resource kinds recorded in the write-ahead deployment log, in the
# order they are deployed (and reverse-torn-down).
_DEPLOY_ORDER = ("pvc", "networkpolicy", "helper", "learners")


def _is_transition_event(event):
    """Does this etcd event warrant an *immediate* status aggregation?

    Halt requests, helper-status flips and learner terminal/stalled
    reports can change the aggregate job status; bare step-progress
    reports cannot and may coalesce. Anything unrecognized counts as a
    transition — misclassifying toward "immediate" costs one extra
    aggregation, the other way costs detection latency.
    """
    if event.type != "put":
        return True
    key = event.key
    if key.endswith("/halt") or "/helper/" in key:
        return True
    value = event.value
    if isinstance(value, dict) and "status" in value:
        return value["status"] in (COMPLETED, FAILED, HALTED, "STALLED")
    return True


def make_guardian_workload(platform, job_id):
    """Workload factory for the Guardian's K8S Job pod template."""

    def workload(ctx):
        guardian = Guardian(platform, job_id, ctx)
        result = yield from guardian.run()
        return result

    return workload


class Guardian:
    """One Guardian incarnation (one pod of the guardian K8S Job)."""

    def __init__(self, platform, job_id, ctx):
        self.platform = platform
        self.job_id = job_id
        self.ctx = ctx
        self.kernel = ctx.kernel
        self.k8s = platform.k8s.api
        self.etcd = EtcdClient(self.kernel, platform.network, platform.etcd,
                               client_id=f"guardian-{job_id}-{ctx.pod.metadata.uid}",
                               history=platform.history)
        self.mongo = platform.mongo_client(f"guardian-{job_id}",
                                           tracer=platform.tracer)
        self.manifest = None
        self.span = None
        self._last_reports = []
        self._stall_restarts = {}  # ordinal -> last restart time

    # ------------------------------------------------------------------

    def run(self):
        tracer = self.platform.tracer
        parent = (tracer.context_of(("job-deploy", self.job_id))
                  or tracer.context_of(("job", self.job_id)))
        self.span = tracer.start_span("guardian.run", component="guardian",
                                      parent=parent, job=self.job_id)
        # Helper containers and learners created by this incarnation
        # parent on the Guardian span via the correlation registry.
        tracer.bind(("job-run", self.job_id), self.span.context)
        try:
            result = yield from self._run()
        except BaseException:
            self.span.end("error")
            raise
        self.span.end("ok")
        return result

    def _run(self):
        yield self.kernel.sleep(self.platform.config.guardian_init_time)
        self.platform.tracer.emit("guardian", "component-ready", job=self.job_id)

        doc = yield from self.mongo.find_one("jobs", {"job_id": self.job_id},
                                             projection=["status", "manifest"])
        if doc is None:
            self.ctx.log(f"no metadata for {self.job_id}; giving up")
            return 1
        if is_terminal(doc["status"]):
            return 0
        self.manifest = TrainingManifest.from_dict(doc["manifest"])

        deploy_span = self.platform.tracer.start_span(
            "guardian.deploy", component="guardian", parent=self.span,
            job=self.job_id)
        try:
            deployed = yield from self._recover_and_deploy()
        except BaseException:
            deploy_span.end("error")
            raise
        deploy_span.end("ok" if deployed else "failed")
        if not deployed:
            return 0  # job marked FAILED; K8S Job completes
        monitor_span = self.platform.tracer.start_span(
            "guardian.monitor", component="guardian", parent=self.span,
            job=self.job_id)
        try:
            result = yield from self._monitor()
        except BaseException:
            monitor_span.end("error")
            raise
        monitor_span.end("ok")
        return result

    # ------------------------------------------------------------------
    # Atomic deployment with rollback (§III.d)
    # ------------------------------------------------------------------

    def _recover_and_deploy(self):
        # A predecessor that finished deploying left a completion
        # marker: the job is healthy and running, so a Guardian crash
        # during *monitoring* must not redeploy anything (§III.d only
        # rolls back crashes "in the middle of a job deployment").
        complete = yield from self.etcd.get(layout.guardian_complete_key(self.job_id))
        if complete:
            return True

        # Roll back whatever a crashed predecessor left behind.
        leftovers = yield from self.etcd.get_range(
            layout.guardian_deployed_prefix(self.job_id)
        )
        if leftovers:
            self.ctx.log(f"rolling back partial deployment ({len(leftovers)} resources)")
            self.platform.metrics.counter("guardian_deploy_rollbacks_total").inc()
            self.platform.events.emit_event(
                "Warning", "DeployRollback", "Job", self.job_id,
                message=f"rolling back {len(leftovers)} partially deployed resources",
                job=self.job_id)
            yield from self._teardown()
            yield from self._await_rollback_complete()

        attempt = (yield from self.etcd.get(layout.guardian_attempt_key(self.job_id))) or 0
        attempt += 1
        yield from self.etcd.put(layout.guardian_attempt_key(self.job_id), attempt)
        self.platform.metrics.counter("guardian_deploy_attempts_total").inc()
        if attempt > self.platform.config.max_deploy_attempts:
            self.ctx.log(f"deployment attempt {attempt} exceeds limit; job FAILED")
            self.platform.events.emit_event(
                "Warning", "DeployAttemptsExhausted", "Job", self.job_id,
                message=f"attempt {attempt} exceeds limit "
                        f"{self.platform.config.max_deploy_attempts}",
                job=self.job_id)
            yield from self._set_status(FAILED,
                                        reason="deployment attempts exhausted")
            # Deploy-exhausted jobs never reach _finish; report the
            # terminal status here so the event log stays complete.
            self.platform.events.emit_event(
                "Warning", "JobFailed", "Job", self.job_id,
                message="deployment attempts exhausted", job=self.job_id)
            yield from self._cleanup_etcd()
            return False
        if attempt > 1:
            self.platform.events.emit_event(
                "Normal", "DeployRetry", "Job", self.job_id,
                message=f"deployment attempt {attempt}", job=self.job_id)

        yield from self._set_status(DEPLOYING)
        yield from self._deploy()
        yield from self.etcd.put(layout.guardian_complete_key(self.job_id), True)
        self.platform.tracer.emit("guardian", "deployed", job=self.job_id,
                                  attempt=attempt)
        self.platform.events.emit_event(
            "Normal", "Deployed", "Job", self.job_id,
            message=f"deployed on attempt {attempt}", job=self.job_id)
        return True

    def _await_rollback_complete(self):
        """Wait until the rolled-back resources are actually gone.

        Teardown only *requests* deletion; redeploying same-named
        resources before the old ones finish terminating would conflict
        and burn a deployment attempt for no reason. Wakes on API-server
        deletion events; ``guardian_rollback_resync`` is the periodic
        fallback cadence.
        """
        job_id = self.job_id

        def gone():
            return not (
                self.k8s.exists("StatefulSet", layout.learner_set_name(job_id))
                or self.k8s.exists("Deployment", layout.helper_deployment_name(job_id))
                or any(
                    pod.metadata.labels.get("role") != "guardian"
                    for pod in self.k8s.list("Pod", selector={"dlaas-job": job_id})
                )
            )

        yield from self._await_cluster(
            gone, kinds=("Pod", "StatefulSet", "Deployment"),
            resync=self.platform.config.guardian_rollback_resync,
        )

    def _await_cluster(self, cond, kinds, resync, timeout=60.0):
        """Wait (bounded) until ``cond()`` holds, waking on API-server
        watch events for ``kinds``; ``resync`` is the level-triggered
        fallback. Returns ``cond()`` at exit."""
        watches = [self.k8s.watch(kind) for kind in kinds]
        deadline = self.kernel.now + timeout
        try:
            while not cond() and self.kernel.now < deadline:
                gets = [watch.get() for watch in watches]
                timer = self.kernel.sleep(min(resync, deadline - self.kernel.now))
                yield self.kernel.any_of(gets + [timer])
                timer.cancel()
                for watch, get in zip(watches, gets):
                    if not get.triggered:
                        # Abandoned getters would swallow the next event.
                        watch.cancel_get(get)
        finally:
            for watch in watches:
                watch.cancel()
        return cond()

    def _deploy(self):
        """The multi-step deployment, write-ahead logged to ETCD.

        Each step records its intent *before* creating the resource, so
        a crash at any point leaves enough information to roll back.
        A deterministic crash hook (``extra.guardian_crash_after``)
        supports the atomicity experiments.
        """
        job_id, manifest = self.job_id, self.manifest
        step_cost = self.platform.config.guardian_step_time
        crash_after = manifest.extra.get("guardian_crash_after")
        crash_on_attempt = int(manifest.extra.get("guardian_crash_on_attempt", 1))

        steps = {
            "pvc": self._deploy_pvc,
            "networkpolicy": self._deploy_network_policy,
            "helper": self._deploy_helper,
            "learners": self._deploy_learners,
        }
        for index, kind in enumerate(_DEPLOY_ORDER):
            yield from self.etcd.put(
                layout.guardian_deployed_key(job_id, kind), "pending"
            )
            steps[kind]()
            yield self.kernel.sleep(step_cost)
            if crash_after is not None and index + 1 >= int(crash_after):
                attempt = yield from self.etcd.get(layout.guardian_attempt_key(job_id))
                if attempt == crash_on_attempt:
                    raise RuntimeError(
                        f"injected guardian crash after step {index + 1}"
                    )

    def _deploy_pvc(self):
        self.k8s.create(PersistentVolumeClaim(layout.pvc_name(self.job_id)))

    def _deploy_network_policy(self):
        # Learners may talk to each other and to their helper pod; all
        # other traffic (other tenants, platform services) is blocked.
        self.k8s.create(NetworkPolicy(
            layout.network_policy_name(self.job_id),
            pod_selector={"dlaas-job": self.job_id, "role": "learner"},
            allow_from_selectors=[
                {"dlaas-job": self.job_id, "role": "learner"},
                {"dlaas-job": self.job_id, "role": "helper"},
            ],
        ))

    def _deploy_helper(self):
        platform, job_id, manifest = self.platform, self.job_id, self.manifest

        def spec_factory():
            return PodSpec(
                containers=[
                    ContainerSpec("load-data", "dlaas/helper",
                                  workload=make_load_data_workload(platform, job_id, manifest)),
                    ContainerSpec("controller", "dlaas/helper",
                                  workload=make_controller_workload(platform, job_id, manifest)),
                    ContainerSpec("log-collector", "dlaas/helper",
                                  workload=make_log_collector_workload(platform, job_id, manifest)),
                    ContainerSpec("store-results", "dlaas/helper",
                                  workload=make_store_results_workload(platform, job_id, manifest)),
                ],
                restart_policy=RESTART_ALWAYS,
                volumes={"job": layout.pvc_name(job_id)},
            )

        self.k8s.create(Deployment(
            layout.helper_deployment_name(job_id),
            PodTemplate(spec_factory, labels={"dlaas-job": job_id, "role": "helper"}),
            replicas=1,
        ))

    def _deploy_learners(self):
        platform, job_id, manifest = self.platform, self.job_id, self.manifest
        framework_image = platform.framework_image(manifest.framework)

        gang_scheduled = manifest.learners > 1 and platform.config.gang_scheduling

        def spec_factory():
            return PodSpec(
                containers=[ContainerSpec(
                    "learner", framework_image,
                    workload=make_learner_workload(platform, job_id, manifest),
                    gpus=manifest.gpus_per_learner,
                    cpu_millicores=manifest.cpu_millicores,
                    memory_mb=manifest.memory_mb,
                )],
                restart_policy=RESTART_ALWAYS,
                volumes={"job": layout.pvc_name(job_id)},
                gpu_type=manifest.gpu_type,
                priority=manifest.priority,
                # Synchronous distributed training blocks at MPI wire-up
                # until every learner exists: place all or none.
                gang=job_id if gang_scheduled else None,
                gang_size=manifest.learners if gang_scheduled else 0,
            )

        self.k8s.create(StatefulSet(
            layout.learner_set_name(job_id),
            PodTemplate(spec_factory, labels={"dlaas-job": job_id, "role": "learner"}),
            replicas=manifest.learners,
        ))

    # ------------------------------------------------------------------
    # Monitoring (§III.f)
    # ------------------------------------------------------------------

    def _monitor(self):
        """Watch-driven monitoring: the etcd watch on the job's prefix
        feeds a single-key reconciler that re-aggregates the *full*
        current status state on every wake. ``monitor_interval``
        survives only as the periodic resync — the level-triggering
        safety net that re-observes anything a lost watch missed and
        that drives stall detection (a hung learner emits no events, so
        stalls are only visible from the resync clock)."""
        config = self.platform.config
        done = self.kernel.event(name=f"job-terminal:{self.job_id}")
        prefix = layout.job_prefix(self.job_id)

        def keys_of(event):
            if _is_transition_event(event):
                return ["status"]
            # Progress-only updates coalesce: a burst of step reports
            # costs one aggregation per coalescing window, keeping the
            # Mongo traffic at the old poll-loop level.
            return [("status", config.guardian_event_coalesce)]

        reconciler = Reconciler(
            self.kernel, f"guardian:{self.job_id}",
            lambda _key: self._reconcile_status(done),
            resync_interval=config.monitor_interval,
            rewatch_delay=config.watch_retry_delay,
            tracer=self.platform.tracer,
            metrics=self.platform.metrics,
        )
        reconciler.queue.backoff_base = config.reconciler_backoff_base
        reconciler.queue.backoff_max = config.reconciler_backoff_max
        reconciler.add_static_key("status")
        # The watch closes if its serving etcd node crashes; the
        # reconciler re-registers on a surviving node and relists (the
        # static key re-fires every resync), so nothing is lost.
        reconciler.watch_channel("etcd",
                                 subscribe=lambda: self.etcd.watch(prefix),
                                 keys_of=keys_of)
        reconciler.start()
        try:
            yield self.kernel.any_of([done, self.ctx.stop_event])
        finally:
            reconciler.stop()
        if not done.triggered:
            return 143
        yield from self._finish(done.value)
        return 0

    def _reconcile_status(self, done):
        """One level-triggered pass: read everything, aggregate, record."""
        if done.triggered:
            return
        halted = yield from self.etcd.get(layout.halt_key(self.job_id))
        statuses = yield from self.etcd.get_range(
            layout.learner_status_prefix(self.job_id)
        )
        store_done = (yield from self.etcd.get(
            layout.helper_status_key(self.job_id, "store-results")
        )) == HELPER_DONE
        load_done = (yield from self.etcd.get(
            layout.helper_status_key(self.job_id, "load-data")
        )) == HELPER_DONE

        reports = [value for _key, value in statuses]
        if reports:
            self._last_reports = reports
        self._restart_stalled_learners(statuses)
        job_status = self._aggregate(reports, load_done, store_done)
        if halted:
            job_status = HALTED

        yield from self._set_status(job_status)
        if is_terminal(job_status) and not done.triggered:
            done.succeed(job_status)

    def _restart_stalled_learners(self, statuses):
        """Hang detection (extension): restart learners the controller
        reports STALLED. The pod deletion is exactly the Fig. 4 learner
        recovery path — StatefulSet recreation + checkpoint resume —
        so a hang costs one learner-restart, not a lost job."""
        cooldown = self.platform.config.stall_restart_cooldown
        for key, report in statuses:
            if not isinstance(report, dict) or report.get("status") != "STALLED":
                continue
            ordinal = int(key.rsplit("/", 2)[-2].rsplit("-", 1)[1])
            last = self._stall_restarts.get(ordinal)
            if last is not None and self.kernel.now - last < cooldown:
                continue
            pod_name = layout.learner_pod_name(self.job_id, ordinal)
            if not self.k8s.exists("Pod", pod_name):
                continue
            self._stall_restarts[ordinal] = self.kernel.now
            self.platform.k8s.kubectl.delete_pod(pod_name, force=True)
            self.platform.tracer.emit("guardian", "stall-restart",
                                      job=self.job_id, learner=ordinal,
                                      stalled_for=report.get("stalled_for"))
            self.platform.events.emit_event(
                "Warning", "LearnerStalled", "Pod", pod_name,
                message=f"no progress for {report.get('stalled_for')}s; restarting",
                job=self.job_id)
            self.ctx.log(f"restarted stalled learner-{ordinal}")

    def _aggregate(self, learner_reports, load_done, store_done):
        reports = {r["status"] for r in learner_reports if isinstance(r, dict)}
        # A stalled learner is being restarted; the job keeps PROCESSING.
        if "STALLED" in reports:
            reports.discard("STALLED")
            reports.add(PROCESSING)
        if FAILED in reports:
            return FAILED
        if store_done:
            return COMPLETED
        if reports and reports == {COMPLETED}:
            return STORING
        if PROCESSING in reports or COMPLETED in reports:
            return PROCESSING
        # Learners exist but are still waiting on data / binding stores,
        # or have not reported at all: the job is still staging.
        return DOWNLOADING

    def _finish(self, final_status):
        self.ctx.log(f"job {self.job_id} reached {final_status}; tearing down")
        teardown_span = self.platform.tracer.start_span(
            "guardian.teardown", component="guardian", parent=self.span,
            job=self.job_id, final_status=final_status)
        yield from self._teardown()

        # Wait for the job's pods to actually terminate before cleaning
        # ETCD: a still-running controller would otherwise re-publish
        # statuses into keys we just deleted. Wakes on Pod deletion
        # events, with ``guardian_teardown_resync`` as the fallback.
        def pods_gone():
            return not [
                pod for pod in self.k8s.list("Pod", selector={"dlaas-job": self.job_id})
                if pod.metadata.labels.get("role") != "guardian"
            ]

        yield from self._await_cluster(
            pods_gone, kinds=("Pod",),
            resync=self.platform.config.guardian_teardown_resync,
        )
        yield from self._cleanup_etcd()
        yield from self.mongo.update_one(
            "jobs", {"job_id": self.job_id},
            {"$set": {"completed_at": self.kernel.now}},
        )
        yield from self._record_gpu_seconds()
        teardown_span.end("ok")
        self.platform.tracer.emit("guardian", "job-finished", job=self.job_id,
                                  status=final_status)
        event_type, reason = TERMINAL_EVENT_FOR[final_status]
        self.platform.events.emit_event(
            event_type, reason, "Job", self.job_id,
            message=f"job reached {final_status}", job=self.job_id)

    def _record_gpu_seconds(self):
        """Meter GPU occupancy and record job-level training metrics."""
        doc = yield from self.mongo.find_one(
            "jobs", {"job_id": self.job_id},
            projection=["status_history", "created_at", "tenant"])
        if doc is None:
            return
        history = {h["status"]: h["time"] for h in doc["status_history"]}
        deploy_time = history.get(DEPLOYING, doc["created_at"])
        gpu_seconds = self.manifest.total_gpus * max(0.0, self.kernel.now - deploy_time)
        yield from self.mongo.update_one(
            "metering", {"tenant": doc["tenant"]},
            {"$inc": {"gpu_seconds": gpu_seconds}}, upsert=True,
        )
        # Metrics collection (helpers' fourth duty in Fig. 1): training
        # throughput over the PROCESSING window, recorded on the job.
        if PROCESSING in history and STORING in history:
            processing_seconds = history[STORING] - history[PROCESSING]
            batch = self.manifest.batch_per_gpu or \
                self.platform.model_default_batch(self.manifest)
            images = (self.manifest.target_steps * batch
                      * self.manifest.gpus_per_learner * self.manifest.learners)
            metrics = {
                "processing_seconds": processing_seconds,
                "images_per_sec": images / max(processing_seconds, 1e-9),
                "gpu_seconds": gpu_seconds,
            }
            losses = [r["loss"] for r in self._last_reports
                      if isinstance(r, dict) and "loss" in r]
            if losses:
                metrics["final_loss"] = sum(losses) / len(losses)
            yield from self.mongo.update_one(
                "jobs", {"job_id": self.job_id}, {"$set": {"metrics": metrics}}
            )

    # ------------------------------------------------------------------
    # Teardown / rollback
    # ------------------------------------------------------------------

    def _teardown(self):
        job_id = self.job_id
        sset = self.k8s.get_or_none("StatefulSet", layout.learner_set_name(job_id))
        if sset is not None:
            sset.deletion_requested = True
            self.k8s.update(sset)
        helper = self.k8s.get_or_none("Deployment", layout.helper_deployment_name(job_id))
        if helper is not None:
            helper.deletion_requested = True
            self.k8s.update(helper)
        if self.k8s.exists("NetworkPolicy", layout.network_policy_name(job_id)):
            self.k8s.delete("NetworkPolicy", layout.network_policy_name(job_id))
        if self.k8s.exists("PersistentVolumeClaim", layout.pvc_name(job_id)):
            self.k8s.delete("PersistentVolumeClaim", layout.pvc_name(job_id))
        yield from self.etcd.delete_prefix(layout.guardian_deployed_prefix(job_id))

    def _cleanup_etcd(self):
        yield from self.etcd.delete_prefix(layout.job_prefix(self.job_id))
        yield from self.etcd.delete_prefix(layout.guardian_prefix(self.job_id))

    # ------------------------------------------------------------------
    # Status recording in MongoDB
    # ------------------------------------------------------------------

    def _set_status(self, status, reason=None):
        """Advance the job's status in MongoDB, validated and monotone."""
        doc = yield from self.mongo.find_one("jobs", {"job_id": self.job_id},
                                             projection=["status"])
        if doc is None or doc["status"] == status:
            return
        try:
            validate_transition(doc["status"], status)
        except Exception:
            return  # stale observation; never move a job backwards illegally
        update = {
            "$set": {"status": status},
            "$push": {"status_history": {"status": status, "time": self.kernel.now}},
        }
        if reason:
            update["$set"]["reason"] = reason
        yield from self.mongo.update_one(
            "jobs", {"job_id": self.job_id, "status": doc["status"]}, update
        )
        self.platform.tracer.emit("guardian", "status-update", job=self.job_id,
                                  status=status)
