"""User-facing DLaaS client (the REST/GRPC SDK of the real system).

All methods are process generators (``yield from``); they call the API
service through its load-balanced endpoint with retries, so API pod
crashes and fail-overs are invisible to the user beyond latency.
"""

from ..grpcnet import Client
from ..grpcnet.errors import ServiceError
from .errors import DlaasError
from .states import TERMINAL_STATUSES


class DlaasClient:
    """Handle for one tenant's interactions with the platform."""

    def __init__(self, platform, token, rpc_retries=6, rpc_backoff=0.25,
                 rpc_deadline=5.0, route_key=None):
        self.platform = platform
        self.kernel = platform.kernel
        self.token = token
        # With ring routing the tenant rides as the affinity key, so
        # every call of this client lands on the tenant's API replica.
        self._rpc = Client(self.kernel, platform.network, platform.api_balancer,
                           caller=f"client-{token}", retries=rpc_retries,
                           retry_backoff=rpc_backoff, deadline=rpc_deadline,
                           route_key=route_key)

    def _call(self, method, **payload):
        payload["token"] = self.token
        try:
            response = yield from self._rpc.call(method, payload)
        except ServiceError as exc:
            # Surface platform-level errors (auth, validation, not
            # found) as themselves rather than RPC wrappers.
            if isinstance(exc.cause, DlaasError):
                raise exc.cause from None
            raise
        return response

    # ------------------------------------------------------------------

    def submit(self, manifest):
        """Submit a training job; returns its job id."""
        response = yield from self._call("submit", manifest=manifest)
        return response["job_id"]

    def status(self, job_id):
        response = yield from self._call("status", job_id=job_id)
        return response

    def list_jobs(self):
        response = yield from self._call("list_jobs")
        return response

    def halt(self, job_id):
        response = yield from self._call("halt", job_id=job_id)
        return response

    def logs(self, job_id, tail=None):
        response = yield from self._call("logs", job_id=job_id, tail=tail)
        return response["lines"]

    def usage(self):
        response = yield from self._call("usage")
        return response

    # ------------------------------------------------------------------
    # Serving models (repro.serving; needs PlatformConfig(serving=True))
    # ------------------------------------------------------------------

    def create_model(self, manifest):
        """Register an inference model; returns its model id."""
        response = yield from self._call("create_model", manifest=manifest)
        return response["model_id"]

    def get_model(self, model_id):
        response = yield from self._call("get_model", model_id=model_id)
        return response

    def list_models(self):
        response = yield from self._call("list_models")
        return response

    def delete_model(self, model_id):
        response = yield from self._call("delete_model", model_id=model_id)
        return response

    def wait_for_model_ready(self, model_id, replicas=1, timeout=600.0,
                             poll_interval=1.0):
        """Poll until at least ``replicas`` replicas report ready."""
        deadline = self.kernel.now + timeout
        while True:
            doc = yield from self.get_model(model_id)
            if doc.get("ready_replicas", 0) >= replicas:
                return doc
            if self.kernel.now >= deadline:
                raise TimeoutError(
                    f"{model_id} has {doc.get('ready_replicas', 0)}/"
                    f"{replicas} replicas after {timeout}s")
            yield self.kernel.sleep(poll_interval)

    # ------------------------------------------------------------------

    def wait_for_status(self, job_id, statuses=None, timeout=3600.0,
                        poll_interval=2.0):
        """Poll until the job reaches one of ``statuses`` (default: any
        terminal status); returns the final status document."""
        targets = set(statuses) if statuses else set(TERMINAL_STATUSES)
        deadline = self.kernel.now + timeout
        while True:
            doc = yield from self.status(job_id)
            if doc["status"] in targets:
                return doc
            if self.kernel.now >= deadline:
                raise TimeoutError(
                    f"{job_id} still {doc['status']} after {timeout}s"
                )
            yield self.kernel.sleep(poll_interval)

    def watch_job(self, job_id, callback, poll_interval=2.0, timeout=3600.0):
        """Poll the job, invoking ``callback(doc)`` on each status change;
        returns the terminal status document."""
        deadline = self.kernel.now + timeout
        last_status = None
        while True:
            doc = yield from self.status(job_id)
            if doc["status"] != last_status:
                last_status = doc["status"]
                callback(doc)
            if doc["status"] in TERMINAL_STATUSES:
                return doc
            if self.kernel.now >= deadline:
                raise TimeoutError(f"{job_id} still {doc['status']} after {timeout}s")
            yield self.kernel.sleep(poll_interval)

    def run_to_completion(self, manifest, timeout=3600.0):
        """Submit and wait for a terminal status; returns (job_id, doc)."""
        job_id = yield from self.submit(manifest)
        doc = yield from self.wait_for_status(job_id, timeout=timeout)
        return job_id, doc
