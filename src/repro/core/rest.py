"""RESTful facade over the API service (paper §III.c).

"It exposes both a RESTful API as well as a GRPC API endpoint." The
gateway translates HTTP-shaped requests (method, path, query, bearer
token, JSON body) onto the same service handlers the GRPC surface uses,
and maps platform errors onto HTTP status codes.
"""

import re

from .errors import (
    AuthError,
    DlaasError,
    InvalidManifest,
    JobNotFound,
    ModelNotFound,
    QuotaExceeded,
    RateLimited,
    ServingDisabled,
)

# ``/v1/models`` is the paper's name for *training jobs* (FfDL's
# historical route); the serving workload class lives under the
# unversioned ``/models`` prefix.
_ROUTES = (
    ("POST", re.compile(r"^/v1/models$"), "submit"),
    ("GET", re.compile(r"^/v1/models$"), "list_jobs"),
    ("GET", re.compile(r"^/v1/models/(?P<job_id>[^/]+)$"), "status"),
    ("DELETE", re.compile(r"^/v1/models/(?P<job_id>[^/]+)$"), "halt"),
    ("GET", re.compile(r"^/v1/models/(?P<job_id>[^/]+)/logs$"), "logs"),
    ("GET", re.compile(r"^/v1/models/(?P<job_id>[^/]+)/events$"), "job_events"),
    ("GET", re.compile(r"^/jobs/(?P<job_id>[^/]+)/events$"), "job_events"),
    ("GET", re.compile(r"^/events$"), "events"),
    ("GET", re.compile(r"^/v1/usage$"), "usage"),
    ("POST", re.compile(r"^/models$"), "create_model"),
    ("GET", re.compile(r"^/models$"), "list_models"),
    ("GET", re.compile(r"^/models/(?P<model_id>[^/]+)$"), "get_model"),
    ("DELETE", re.compile(r"^/models/(?P<model_id>[^/]+)$"), "delete_model"),
)

_STATUS_FOR = (
    (AuthError, 401),
    (RateLimited, 429),
    (QuotaExceeded, 429),
    (InvalidManifest, 400),
    (JobNotFound, 404),
    (ModelNotFound, 404),
    (ServingDisabled, 503),
    (DlaasError, 500),
)


class RestGateway:
    """Translates HTTP requests into service-handler calls.

    Registered on the API instance's RPC server under the ``http``
    method; a request looks like::

        {"method": "POST", "path": "/v1/models",
         "headers": {"Authorization": "Bearer <token>"},
         "body": {...manifest...}, "query": {...}}

    and the response is ``{"status": <code>, "body": <json>}``.
    """

    def __init__(self, api_service):
        self.api_service = api_service

    def handle(self, request):
        method = request.get("method", "GET").upper()
        path = request.get("path", "/")
        # Operational endpoints: unauthenticated by default (the real
        # platform exposes them on a cluster-internal port), optionally
        # gated by a shared bearer token (``PlatformConfig.metrics_auth``)
        # when the port is reachable from outside the cluster.
        if method == "GET" and path in ("/metrics", "/healthz"):
            platform = self.api_service.platform
            required = platform.config.metrics_auth
            if required is not None:
                supplied = self._bearer_token(request.get("headers") or {})
                if supplied != required:
                    return {"status": 401, "body": {"error": "unauthorized"}}
            if path == "/metrics":
                return {"status": 200,
                        "body": platform.metrics.expose(),
                        "content_type": "text/plain; version=0.0.4"}
            health = platform.health.snapshot()
            return {"status": 200 if health["status"] == "ok" else 503,
                    "body": health}
        token = self._bearer_token(request.get("headers") or {})
        payload = {"token": token}
        payload.update(request.get("query") or {})

        for verb, pattern, handler_name in _ROUTES:
            if verb != method:
                continue
            match = pattern.match(path)
            if match is None:
                continue
            payload.update(match.groupdict())
            if handler_name in ("submit", "create_model"):
                payload["manifest"] = request.get("body")
            handler = getattr(self.api_service, f"_on_{handler_name}")
            try:
                body = yield from handler(payload)
            except DlaasError as exc:
                return self._error_response(exc)
            created = handler_name in ("submit", "create_model")
            return {"status": 201 if created else 200, "body": body}
        return {"status": 404, "body": {"error": f"no route {method} {path}"}}

    @staticmethod
    def _bearer_token(headers):
        value = headers.get("Authorization", "")
        if value.startswith("Bearer "):
            return value[len("Bearer "):]
        return value or None

    @staticmethod
    def _error_response(exc):
        for exc_type, code in _STATUS_FOR:
            if isinstance(exc, exc_type):
                return {"status": code, "body": {"error": str(exc)}}
        return {"status": 500, "body": {"error": str(exc)}}


class RestClient:
    """An HTTP-ish client for the REST surface (curl stand-in).

    All methods are process generators returning the full
    ``{"status", "body"}`` response; no retries — REST users see raw
    availability, which is itself useful in dependability tests.
    """

    def __init__(self, platform, token):
        self.platform = platform
        self.kernel = platform.kernel
        self.token = token

    def request(self, method, path, body=None, query=None):
        endpoints = self.platform.api_balancer.pick_order()
        if not endpoints:
            return {"status": 503, "body": {"error": "no API endpoints"}}
        http_request = {
            "method": method,
            "path": path,
            "headers": {"Authorization": f"Bearer {self.token}"},
            "body": body,
            "query": query,
        }
        from ..grpcnet.errors import RpcError

        try:
            response = yield self.platform.network.call(
                endpoints[0], "http", http_request, deadline=5.0,
                caller=f"rest-{self.token}",
            )
        except RpcError as exc:
            return {"status": 503, "body": {"error": repr(exc)}}
        return response

    def post(self, path, body):
        return self.request("POST", path, body=body)

    def get(self, path, query=None):
        return self.request("GET", path, query=query)

    def delete(self, path):
        return self.request("DELETE", path)
