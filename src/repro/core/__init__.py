"""The DLaaS core: the paper's primary contribution.

Public entry points:

* :class:`DlaasPlatform` — assemble and start the whole platform;
* :class:`DlaasClient` — submit and manage training jobs;
* :class:`TrainingManifest` — validated job specifications;
* :class:`ComponentCrasher` — dependability fault injection;
* job lifecycle statuses (QUEUED … COMPLETED/FAILED/HALTED).
"""

from .auth import Metering, RateLimiter, TokenRegistry
from .client import DlaasClient
from .errors import (
    AuthError,
    DeploymentFailed,
    DlaasError,
    IllegalTransition,
    InvalidManifest,
    JobNotFound,
    RateLimited,
)
from .events import EVENT_NORMAL, EVENT_WARNING, EventRecorder, PlatformEvent
from .faults import ComponentCrasher, GrayFailureInjector
from .manifest import DataStoreRef, TrainingManifest
from .observability import ClusterMonitor
from .platform import DlaasPlatform, PlatformConfig
from .rest import RestClient, RestGateway
from .sharded import (
    FederationService,
    PlatformShard,
    ShardedPlatform,
    federation_address,
    timeline_digest,
)
from .timeline import job_timeline, render_timeline
from .states import (
    ALL_STATUSES,
    COMPLETED,
    DEPLOYING,
    DOWNLOADING,
    FAILED,
    HALTED,
    PROCESSING,
    QUEUED,
    STORING,
    TERMINAL_STATUSES,
    StatusHistory,
    aggregate_learner_statuses,
    is_terminal,
    validate_transition,
)

__all__ = [
    "ALL_STATUSES",
    "AuthError",
    "COMPLETED",
    "ClusterMonitor",
    "ComponentCrasher",
    "GrayFailureInjector",
    "DEPLOYING",
    "DOWNLOADING",
    "DataStoreRef",
    "DeploymentFailed",
    "DlaasClient",
    "DlaasError",
    "DlaasPlatform",
    "EVENT_NORMAL",
    "EVENT_WARNING",
    "EventRecorder",
    "FAILED",
    "FederationService",
    "HALTED",
    "IllegalTransition",
    "InvalidManifest",
    "JobNotFound",
    "Metering",
    "PROCESSING",
    "PlatformConfig",
    "PlatformEvent",
    "PlatformShard",
    "QUEUED",
    "RateLimited",
    "RateLimiter",
    "RestClient",
    "RestGateway",
    "STORING",
    "ShardedPlatform",
    "StatusHistory",
    "TERMINAL_STATUSES",
    "TokenRegistry",
    "TrainingManifest",
    "aggregate_learner_statuses",
    "federation_address",
    "is_terminal",
    "job_timeline",
    "timeline_digest",
    "render_timeline",
    "validate_transition",
]
