"""The learner container workload (paper §III.a, §III.e, §III.h).

A learner is the DL framework image instantiated with user code. The
platform treats it as a black box that:

* waits for training data on the shared NFS volume (staged by the
  load-data helper),
* binds to the cloud object store for checkpoints,
* trains, writing status/progress/log lines to its NFS directory,
* writes its exit code to NFS on orderly termination — the signal the
  helper pod's controller watches for failure/completion detection.

Crash recovery is entirely the platform's: Kubernetes restarts the
container or recreates the pod (StatefulSet), and the fresh learner
resumes from the latest checkpoint.
"""

import json

from ..frameworks import (
    DLAAS,
    CheckpointPolicy,
    CheckpointStore,
    ETH_1G,
    PCIE3,
    WorkloadConfig,
    TrainingRun,
    get_framework,
    get_gpu,
    get_model,
    synthetic_loss,
)
from . import layout
from .fswatch import wait_for_condition, wait_for_file
from .states import COMPLETED, FAILED, HALTED, PROCESSING

WAITING_DATA = "WAITING_DATA"


def write_learner_status(mount, ordinal, status, step, time, loss=None):
    record = {"status": status, "step": step, "time": time}
    if loss is not None:
        record["loss"] = round(loss, 6)
    mount.write_file(layout.learner_status_file(ordinal), json.dumps(record))


def read_learner_status(mount, ordinal):
    path = layout.learner_status_file(ordinal)
    if not mount.exists(path):
        return None
    return json.loads(mount.read_file(path))


def workload_config_for(manifest):
    """Map a manifest to the analytic performance-model configuration."""
    return WorkloadConfig(
        model=get_model(manifest.model),
        framework=get_framework(manifest.framework),
        gpu=get_gpu(manifest.gpu_type),
        gpus_per_learner=manifest.gpus_per_learner,
        learners=manifest.learners,
        batch_per_gpu=manifest.batch_per_gpu,
        intra_node=PCIE3 if manifest.gpus_per_learner > 1 else None,
        inter_node=ETH_1G,
    )


def make_learner_workload(platform, job_id, manifest):
    """Workload factory for the learner StatefulSet's pod template."""

    def workload(ctx):
        kernel = ctx.kernel
        ordinal = int(ctx.env.get("ORDINAL", "0"))
        mount = ctx.mounts["job"]
        log_path = layout.learner_log_file(ordinal)

        def log(line):
            mount.append_line(log_path, f"[{kernel.now:10.2f}] {line}")
            ctx.log(line)

        # A learner restarted (restart policy Always) after an orderly
        # zero exit has nothing left to do; idle until teardown.
        exit_path = layout.learner_exit_file(ordinal)
        if mount.exists(exit_path) and mount.read_file(exit_path).strip() == "0":
            yield ctx.stop_event
            return 0

        log(f"learner-{ordinal} starting for {job_id}")
        span = platform.tracer.start_span(
            "learner.run", component=f"learner-{ordinal}",
            parent=platform.tracer.context_of(("job-run", job_id)),
            job=job_id, ordinal=ordinal)
        write_learner_status(mount, ordinal, WAITING_DATA, 0, kernel.now)

        # Wait for the load-data helper to stage the training data,
        # waking on the NFS change notification rather than polling.
        ready = yield from wait_for_file(ctx, mount, layout.DATA_READY)
        if not ready:
            mount.write_file(layout.learner_exit_file(ordinal), "143")
            span.end("error")
            return 143

        # MPI wire-up barrier (paper §II: deployment involves "setting
        # up network (MPI) interconnections"): synchronous distributed
        # training cannot start until every learner is present. This is
        # why the scheduler gang-places learner pods — a partially
        # placed job would hold its GPUs here forever.
        if manifest.learners > 1:
            mount.write_file(f"{layout.learner_dir(ordinal)}/joined", "1")
            log(f"waiting at MPI barrier for {manifest.learners} learners")

            def all_joined():
                return all(
                    mount.exists(f"{layout.learner_dir(peer)}/joined")
                    for peer in range(manifest.learners)
                )

            joined = yield from wait_for_condition(ctx, mount, "/learners/",
                                                   all_joined)
            if not joined:
                mount.write_file(layout.learner_exit_file(ordinal), "143")
                span.end("error")
                return 143

        # Bind to the cloud object store (credentials + connector
        # startup) — part of why learners take longest to recover.
        yield kernel.sleep(platform.config.cos_bind_time)

        checkpoints = CheckpointStore(
            platform.object_store,
            manifest.results.bucket,
            f"{job_id}/checkpoints",
            manifest.results.credentials,
        )

        def on_progress(step, now):
            loss = synthetic_loss(manifest.learning_rate, step)
            write_learner_status(mount, ordinal, PROCESSING, step, now, loss=loss)
            log(f"step {step}/{manifest.target_steps} loss={loss:.4f}")

        def on_started(step, now):
            write_learner_status(mount, ordinal, PROCESSING, step, now)
            platform.tracer.emit(f"learner-{ordinal}", "component-ready",
                                 job=job_id, resumed_step=step)
            log(f"training active from step {step}")

        training = TrainingRun(
            kernel,
            workload_config_for(manifest),
            DLAAS,
            target_steps=manifest.target_steps,
            checkpoint_policy=CheckpointPolicy(interval=manifest.checkpoint_interval),
            checkpoint_store=checkpoints,
            progress_callback=on_progress,
            progress_every=platform.config.progress_every,
            on_started=on_started,
        )

        # Fault-injection hooks for the dependability experiments.
        #
        # Hang (once per job): train to the hang point, then freeze
        # without updating status — the failure mode that produces
        # neither an exit code nor a container crash. A marker on NFS
        # makes the hang transient: the restarted incarnation runs
        # clean, as with a wedged CUDA context cleared by restart.
        hang_at = manifest.extra.get("hang_at_step")
        hang_on = int(manifest.extra.get("hang_learner", 0))
        hang_marker = f"{layout.learner_dir(ordinal)}/hang-injected"
        fail_at = manifest.extra.get("fail_at_step")
        fail_on = int(manifest.extra.get("fail_learner", 0))

        if hang_at is not None and ordinal == hang_on \
                and not mount.exists(hang_marker):
            training.target_steps = min(training.target_steps, int(hang_at))
            exit_code = yield from training.run(stop_event=ctx.stop_event)
            if exit_code == 0 and training.step >= int(hang_at):
                mount.write_file(hang_marker, "1")
                log(f"learner-{ordinal} hanging at step {training.step}")
                yield ctx.stop_event  # wedged forever (until killed)
                span.end("error")
                return 143
        elif fail_at is not None and ordinal == fail_on:
            exit_code = yield from _run_until_failure(kernel, training, int(fail_at),
                                                      ctx.stop_event)
        else:
            exit_code = yield from training.run(stop_event=ctx.stop_event)

        if exit_code == 0:
            final = COMPLETED
        elif exit_code == 143:
            final = HALTED
        else:
            final = FAILED
        final_loss = synthetic_loss(manifest.learning_rate, training.step)
        write_learner_status(mount, ordinal, final, training.step, kernel.now,
                             loss=final_loss)
        mount.write_file(layout.learner_exit_file(ordinal), str(exit_code))
        platform.tracer.emit(f"learner-{ordinal}", "learner-exit", job=job_id,
                             exit_code=exit_code, step=training.step)
        log(f"learner-{ordinal} exiting with code {exit_code}")
        span.end("ok" if exit_code == 0 else "error")
        return exit_code

    return workload


def _run_until_failure(kernel, training, fail_at, stop_event):
    """Run training but fail (exit 1) once ``fail_at`` steps are reached.

    Models deterministic user-code bugs — the "orderly failure" path of
    §III.h where the learner writes a non-zero exit code to NFS.
    """
    original_target = training.target_steps
    training.target_steps = min(original_target, fail_at)
    exit_code = yield from training.run(stop_event=stop_event)
    if exit_code == 0 and training.step >= fail_at and fail_at < original_target:
        return 1
    return exit_code
