"""Core-service pod workloads: API and LCM as Kubernetes Deployments.

"All containerized DLaaS core services are executed as K8S deployments,
exposed through the K8S service abstraction" (§III.b). Each pod boots
the service, registers its endpoint into the platform's load balancer
(the service registry), serves until stopped, and unregisters — the
endpoint-controller behaviour that gives incoming requests fail-over.
"""

from ..sim.errors import ProcessKilled
from .api import ApiService
from .lcm import LcmService


def _emit_exit_event(platform, ctx, component):
    # Graceful scale-down triggers the stop event first; anything else
    # reaching the finally block is a crash (killed pod, dead node).
    crashed = not ctx.stop_event.triggered
    platform.events.emit_event(
        "Warning" if crashed else "Normal",
        "ComponentCrashed" if crashed else "ComponentStopped",
        "Pod", ctx.pod.metadata.name,
        message=f"{component} endpoint "
                + ("lost" if crashed else "deregistered"))


def make_api_workload(platform):
    def workload(ctx):
        kernel = ctx.kernel
        address = f"api:{ctx.pod.metadata.name}"
        yield kernel.sleep(platform.config.api_init_time)
        service = ApiService(platform, address)
        try:
            service.server.start()
            platform.api_balancer.add(address)
            platform.tracer.emit("api", "component-ready", pod=ctx.pod.metadata.name)
            platform.events.emit_event("Normal", "ComponentReady", "Pod",
                                       ctx.pod.metadata.name,
                                       message="api serving")
            yield ctx.stop_event
        finally:
            # Pod gone (gracefully or not): the endpoint controller
            # removes it from the service registry.
            platform.api_balancer.remove(address)
            service.server.stop()
            _emit_exit_event(platform, ctx, "api")
        return 0

    return workload


def make_serving_workload(platform):
    """The ServingManager pod: model-registry reconciler + autoscaler.

    Mirrors the LCM workload: boot, serve, run the reconcilers, and on
    any exit (graceful or crash) stop them so a dead manager leaks no
    loops — the replacement pod rebuilds everything from MongoDB.
    """

    def workload(ctx):
        from ..serving import ServingManager

        kernel = ctx.kernel
        address = f"serving:{ctx.pod.metadata.name}"
        yield kernel.sleep(platform.config.serving_init_time)
        service = ServingManager(platform, address)
        reconciler = autoscaler = None
        try:
            service.server.start()
            platform.serving_balancer.add(address)
            reconciler = service.make_reconciler().start()
            autoscaler = service.make_autoscaler().start()
            platform.tracer.emit("serving", "component-ready",
                                 pod=ctx.pod.metadata.name)
            platform.events.emit_event("Normal", "ComponentReady", "Pod",
                                       ctx.pod.metadata.name,
                                       message="serving manager ready")
            yield ctx.stop_event
        except ProcessKilled:
            raise
        finally:
            platform.serving_balancer.remove(address)
            service.server.stop()
            if reconciler is not None:
                reconciler.stop()
            if autoscaler is not None:
                autoscaler.stop()
            _emit_exit_event(platform, ctx, "serving")
        return 0

    return workload


def make_lcm_workload(platform):
    def workload(ctx):
        kernel = ctx.kernel
        address = f"lcm:{ctx.pod.metadata.name}"
        yield kernel.sleep(platform.config.lcm_init_time)
        service = LcmService(platform, address)
        deploy = gc = None
        try:
            service.server.start()
            platform.lcm_balancer.add(address)
            if service.slices is not None:
                service.slices.start()
            deploy = service.make_deploy_reconciler().start()
            gc = service.make_gc_reconciler().start()
            platform.tracer.emit("lcm", "component-ready", pod=ctx.pod.metadata.name)
            platform.events.emit_event("Normal", "ComponentReady", "Pod",
                                       ctx.pod.metadata.name,
                                       message="lcm serving")
            yield ctx.stop_event
        except ProcessKilled:
            raise
        finally:
            # Pod gone (gracefully or crashed): stop the reconcilers,
            # which also cancels their API-server watch registrations —
            # a crashed LCM must not leak watch channels.
            platform.lcm_balancer.remove(address)
            service.server.stop()
            if service.slices is not None:
                # The claim loop dies with the pod; the slice leases
                # are left to TTL-expire, which is exactly the crash
                # path the survivors' adoption logic covers.
                service.slices.stop()
            if deploy is not None:
                deploy.stop()
            if gc is not None:
                gc.stop()
            _emit_exit_event(platform, ctx, "lcm")
        return 0

    return workload
