"""Multi-tenant authentication, metering and rate limiting (§III.c).

"The DLaaS API microservice handles all the incoming API requests
including load balancing, metering, and access management."
"""

import itertools

from .errors import AuthError, RateLimited

_token_counter = itertools.count(1)


class TokenRegistry:
    """Tenant -> API token mapping (a stand-in for IAM)."""

    def __init__(self):
        self._by_token = {}
        self._by_tenant = {}

    def create_tenant(self, tenant):
        if tenant in self._by_tenant:
            return self._by_tenant[tenant]
        token = f"tok-{next(_token_counter):06d}-{tenant}"
        self._by_token[token] = tenant
        self._by_tenant[tenant] = token
        return token

    def revoke(self, tenant):
        token = self._by_tenant.pop(tenant, None)
        if token is not None:
            del self._by_token[token]

    def authenticate(self, token):
        tenant = self._by_token.get(token)
        if tenant is None:
            raise AuthError("invalid or revoked API token")
        return tenant


class RateLimiter:
    """Per-tenant token bucket (requests per second with burst)."""

    def __init__(self, kernel, rate=50.0, burst=100.0):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.kernel = kernel
        self.rate = rate
        self.burst = burst
        self._buckets = {}  # tenant -> (tokens, last_refill_time)

    def check(self, tenant):
        """Consume one request token or raise :class:`RateLimited`."""
        now = self.kernel.now
        tokens, last = self._buckets.get(tenant, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens < 1.0:
            self._buckets[tenant] = (tokens, now)
            raise RateLimited(f"tenant {tenant!r} exceeded {self.rate} req/s")
        self._buckets[tenant] = (tokens - 1.0, now)


class Metering:
    """Durable per-tenant usage accounting, stored in MongoDB."""

    def __init__(self, mongo):
        self.mongo = mongo

    def record_api_call(self, tenant, method):
        yield from self.mongo.update_one(
            "metering", {"tenant": tenant},
            {"$inc": {f"api_calls.{method}": 1, "api_calls_total": 1}},
            upsert=True,
        )

    def record_submission(self, tenant, gpus):
        yield from self.mongo.update_one(
            "metering", {"tenant": tenant},
            {"$inc": {"jobs_submitted": 1, "gpus_requested": gpus}},
            upsert=True,
        )

    def record_gpu_seconds(self, tenant, gpu_seconds):
        yield from self.mongo.update_one(
            "metering", {"tenant": tenant},
            {"$inc": {"gpu_seconds": gpu_seconds}},
            upsert=True,
        )

    def report(self, tenant):
        doc = yield from self.mongo.find_one("metering", {"tenant": tenant})
        return doc or {"tenant": tenant, "api_calls_total": 0}
