"""The helper-pod containers (paper §III.e–f).

For each DL job the Guardian creates one helper pod with four
containers — load-data, controller, log-collector, store-results —
isolated from the learner pods but sharing the job's NFS volume:

* **load-data** stages the training data from the object store onto NFS;
* **controller** watches learner exit/status files on NFS and records
  per-learner statuses in ETCD (the reliable status-update pipeline);
* **log-collector** tails learner logs into a combined job log;
* **store-results** uploads results and logs to the object store when
  triggered.

Each is restartable and stateless: its working state is derived from
NFS (and ETCD), which is what makes controller crashes harmless.
"""

import json

from ..nfs.errors import FsError
from ..raftkv import EtcdClient
from ..sim import Reconciler, WatchSource
from . import layout
from .fswatch import wait_for_file
from .learner import read_learner_status
from .states import COMPLETED, FAILED, HALTED

HELPER_RUNNING = "RUNNING"
HELPER_DONE = "DONE"
STALLED = "STALLED"


def _idle_until_stopped(ctx):
    """Sidecar idiom: stay alive so restart policy Always is a no-op."""
    yield ctx.stop_event
    return 0




# ---------------------------------------------------------------------------
# load-data
# ---------------------------------------------------------------------------


def make_load_data_workload(platform, job_id, manifest):
    def workload(ctx):
        kernel = ctx.kernel
        mount = ctx.mounts["job"]
        if mount.exists(layout.DATA_READY):
            # A previous incarnation finished; do not re-download.
            yield from _idle_until_stopped(ctx)
            return 0
        mount.write_file("/helper/load-data.status", HELPER_RUNNING)
        ctx.log(f"staging {manifest.dataset_size_mb:.0f} MB of training data")
        yield from platform.object_store.download(
            manifest.data.bucket, "dataset", manifest.data.credentials
        )
        mount.mkdir(layout.DATA_DIR)
        mount.write_file(f"{layout.DATA_DIR}/manifest.json",
                         json.dumps({"size_mb": manifest.dataset_size_mb}))
        mount.write_file(layout.DATA_READY, "ok")
        mount.write_file("/helper/load-data.status", HELPER_DONE)
        ctx.log("training data ready")
        yield from _idle_until_stopped(ctx)
        return 0

    return workload


# ---------------------------------------------------------------------------
# controller
# ---------------------------------------------------------------------------


def make_controller_workload(platform, job_id, manifest):
    """Event-driven controller: NFS change notifications feed a work
    queue; each reconcile re-reads the file state for one key (learner
    ordinal or helper name) and publishes it to ETCD. The old
    ``controller_poll`` cadence survives only as the periodic resync —
    the level-triggering safety net that also drives hang detection
    (a stalled learner produces *no* events, so stalls are only
    observable from the resync clock)."""

    def workload(ctx):
        kernel = ctx.kernel
        mount = ctx.mounts["job"]
        # Agent/runtime initialization inside the helper container.
        yield kernel.sleep(platform.config.helper_init_time)
        etcd = EtcdClient(kernel, platform.network, platform.etcd,
                          client_id=f"controller-{job_id}-{ctx.pod.metadata.uid}",
                          history=platform.history)
        platform.tracer.emit("controller", "component-ready", job=job_id)
        span = platform.tracer.start_span(
            "controller.run", component="controller",
            parent=platform.tracer.context_of(("job-run", job_id)), job=job_id)
        last_reported = {}
        # Hang detection state: per-learner (status-file content, time it
        # last changed). Rebuilt from scratch after a controller restart
        # — worst case the stall clock restarts, which only delays
        # detection by one timeout.
        freshness = {}
        stall_timeout = platform.config.stall_timeout
        poll = platform.config.controller_poll
        learner_keys = [f"learner-{i}" for i in range(manifest.learners)]
        all_keys = learner_keys + ["load-data", "store-results", "store-trigger"]

        def reconcile(key):
            if key == "store-trigger":
                # Trigger store-results once every learner completed.
                if not mount.exists(layout.CONTROL_STORE_TRIGGER):
                    exits = [_exit_code(mount, i) for i in range(manifest.learners)]
                    if all(code == 0 for code in exits):
                        mount.write_file(layout.CONTROL_STORE_TRIGGER, "go")
                return
            if key.startswith("learner-"):
                # Learner statuses: NFS -> ETCD. State is recomputed from
                # NFS on every pass, so a restarted controller (or a
                # duplicate event) loses and corrupts nothing.
                ordinal = int(key.rsplit("-", 1)[1])
                report = _learner_report(mount, ordinal, kernel.now)
                if report is None:
                    return
                report = _apply_stall_detection(
                    report, ordinal, freshness, kernel.now, stall_timeout
                )
                if last_reported.get(ordinal) != report:
                    yield from etcd.put(
                        layout.learner_status_key(job_id, ordinal), report
                    )
                    previous = last_reported.get(ordinal)
                    last_reported[ordinal] = report
                    status_now = report.get("status")
                    if status_now != (previous or {}).get("status"):
                        pod_name = layout.learner_pod_name(job_id, ordinal)
                        if status_now == FAILED:
                            platform.events.emit_event(
                                "Warning", "LearnerFailed", "Pod", pod_name,
                                message=f"exit code {report.get('exit_code')}",
                                job=job_id)
                        elif status_now == COMPLETED:
                            platform.events.emit_event(
                                "Normal", "LearnerCompleted", "Pod", pod_name,
                                message=f"finished at step {report.get('step')}",
                                job=job_id)
                return
            # Helper statuses.
            path = f"/helper/{key}.status"
            if mount.exists(path):
                value = mount.read_file(path)
                if last_reported.get(key) != value:
                    yield from etcd.put(
                        layout.helper_status_key(job_id, key), value
                    )
                    last_reported[key] = value
                    if value == HELPER_DONE and key == "load-data":
                        platform.events.emit_event(
                            "Normal", "DataStaged", "Job", job_id,
                            message="training data staged onto NFS",
                            job=job_id)
                    elif value == HELPER_DONE and key == "store-results":
                        platform.events.emit_event(
                            "Normal", "ResultsStored", "Job", job_id,
                            message="model and logs uploaded", job=job_id)

        reconciler = Reconciler(
            kernel, f"controller:{job_id}", reconcile,
            resync_interval=poll,
            rewatch_delay=platform.config.watch_retry_delay,
            tracer=platform.tracer,
            metrics=platform.metrics,
        )
        reconciler.queue.backoff_base = platform.config.reconciler_backoff_base
        reconciler.queue.backoff_max = platform.config.reconciler_backoff_max
        for key in all_keys:
            reconciler.add_static_key(key)
        reconciler.add_source(_nfs_source(mount, manifest, poll))
        reconciler.start()
        try:
            yield ctx.stop_event
        finally:
            reconciler.stop()
            span.end("ok")
        return 0

    return workload


def _nfs_source(mount, manifest, poll):
    """NFS change notifications -> controller work keys.

    Exit-code and helper-status writes are transitions (§III.e failure
    detection) and dispatch immediately; learner status-file writes are
    progress and coalesce for up to one poll interval, so a fast
    learner costs the same ETCD traffic as under the old poll loop.
    """

    def classify(path):
        if path.startswith("/helper/"):
            name = path.rsplit("/", 1)[1].removesuffix(".status")
            return [name] if name in ("load-data", "store-results") else []
        if path.startswith("/learners/learner-"):
            ordinal = path.split("/")[2].rsplit("-", 1)[1]
            key = f"learner-{ordinal}"
            if path.endswith("/exit-code"):
                return [key, "store-trigger"]
            return [(key, poll)]
        return []

    return _MountNotifySource(mount, classify)


class _MountNotifySource(WatchSource):
    """Callback-based watch source over an NFS mount.

    The filesystem invokes the callback synchronously on writes; the
    source enqueues directly into the reconciler's queue (bound at
    subscribe time), so there is no channel and nothing to pump.
    """

    def __init__(self, mount, classify):
        super().__init__("nfs")
        self._mount = mount
        self._classify = classify
        self._queue = None
        self._subscription = None

    def bind(self, queue):
        self._queue = queue

    def subscribe(self):
        if self._subscription is None or not self._subscription.active:
            self._subscription = self._mount.subscribe("/", self._on_change)
        return None  # no channel: delivery is callback-driven

    def _on_change(self, path):
        if self._queue is None:
            return
        for key in self._classify(path):
            if isinstance(key, tuple):
                self._queue.add_after(*key)
            else:
                self._queue.add(key)

    def unsubscribe(self):
        subscription, self._subscription = self._subscription, None
        if subscription is not None:
            subscription.cancel()


def _apply_stall_detection(report, ordinal, freshness, now, stall_timeout):
    """Flag a PROCESSING learner whose progress has frozen (extension).

    The paper's §III.e detects *orderly* failures (exit codes) and lets
    Kubernetes handle crashes, but a learner that hangs — alive yet
    making no progress — produces neither signal. The controller tracks
    when each learner's reported (status, step) last changed and
    reports STALLED once it exceeds the timeout; the Guardian restarts
    stalled learners.
    """
    if stall_timeout <= 0:
        return report
    fingerprint = (report.get("status"), report.get("step"))
    seen_fingerprint, since = freshness.get(ordinal, (None, now))
    if fingerprint != seen_fingerprint:
        freshness[ordinal] = (fingerprint, now)
        return report
    if report.get("status") == "PROCESSING" and now - since >= stall_timeout:
        stalled = dict(report)
        stalled["status"] = STALLED
        stalled["stalled_for"] = now - since
        return stalled
    return report


def _exit_code(mount, ordinal):
    path = layout.learner_exit_file(ordinal)
    if not mount.exists(path):
        return None
    try:
        return int(mount.read_file(path).strip())
    except ValueError:
        return None


def _learner_report(mount, ordinal, now):
    """Derive the learner's reported status from its NFS files.

    An orderly exit code takes precedence over the (possibly stale)
    status file — this is the §III.e failure-detection rule.
    """
    exit_code = _exit_code(mount, ordinal)
    status = read_learner_status(mount, ordinal)
    if exit_code is not None:
        if exit_code == 0:
            phase = COMPLETED
        elif exit_code == 143:
            phase = HALTED
        else:
            phase = FAILED
        report = {
            "status": phase,
            "step": status.get("step", 0) if status else 0,
            "exit_code": exit_code,
            "time": now,
        }
        if status and "loss" in status:
            report["loss"] = status["loss"]
        return report
    if status is None:
        return None
    report = {"status": status["status"], "step": status["step"], "time": now}
    if "loss" in status:
        report["loss"] = status["loss"]
    return report


# ---------------------------------------------------------------------------
# log-collector
# ---------------------------------------------------------------------------


def make_log_collector_workload(platform, job_id, manifest):
    def workload(ctx):
        kernel = ctx.kernel
        mount = ctx.mounts["job"]
        offsets = {}
        # Static metric name, dynamic dimension in the label: per-job
        # names would grow the series namespace without bound.
        collected = platform.metrics.counter(
            "logs_collected_lines_total", ("job",),
            help="Learner log lines folded into the combined job log",
        ).labels(job=job_id)

        def collect():
            for ordinal in range(manifest.learners):
                path = layout.learner_log_file(ordinal)
                if not mount.exists(path):
                    continue
                fresh = mount.read_from(path, offsets.get(ordinal, 0))
                if fresh:
                    offsets[ordinal] = offsets.get(ordinal, 0) + len(fresh)
                    for line in fresh.splitlines():
                        mount.append_line(layout.COMBINED_LOG,
                                          f"learner-{ordinal}| {line}")
                        collected.inc()

        def on_log_write(path):
            # Synchronous tail-on-write: the combined log is current the
            # instant a learner writes, so store-results (triggered the
            # moment the last exit code lands) archives a complete log.
            if path.endswith("/training.log"):
                try:
                    collect()
                except FsError:
                    pass

        subscription = mount.subscribe("/learners/", on_log_write)
        try:
            # The interval loop survives as the level-triggered resync
            # behind the change subscription (e.g. a collector restarted
            # mid-job re-reads everything from its rebuilt offsets).
            while not ctx.stopping:
                collect()
                yield kernel.sleep(platform.config.log_collect_interval)
        finally:
            subscription.cancel()
            # Teardown can land mid-interval: flush the tail so the
            # learners' last lines survive into the combined log.
            try:
                collect()
            except FsError:
                pass  # NFS outage at teardown; nothing left to flush
        return 0

    return workload


# ---------------------------------------------------------------------------
# store-results
# ---------------------------------------------------------------------------


def make_store_results_workload(platform, job_id, manifest):
    def workload(ctx):
        kernel = ctx.kernel
        mount = ctx.mounts["job"]
        if mount.exists(layout.CONTROL_STORE_DONE):
            yield from _idle_until_stopped(ctx)
            return 0
        # Wait for the controller's trigger.
        triggered = yield from wait_for_file(ctx, mount, layout.CONTROL_STORE_TRIGGER)
        if not triggered:
            return 0
        mount.write_file("/helper/store-results.status", HELPER_RUNNING)
        log_text = ""
        if mount.exists(layout.COMBINED_LOG):
            log_text = mount.read_file(layout.COMBINED_LOG)
        model_mb = platform.model_size_mb(manifest)
        ctx.log(f"uploading trained model ({model_mb:.0f} MB) and logs")
        yield from platform.object_store.upload(
            manifest.results.bucket, f"{job_id}/model",
            manifest.results.credentials, size=int(model_mb * 1_000_000),
        )
        yield from platform.object_store.upload(
            manifest.results.bucket, f"{job_id}/logs",
            manifest.results.credentials, size=len(log_text),
            payload={"text": log_text},
        )
        mount.write_file(layout.CONTROL_STORE_DONE, "ok")
        mount.write_file("/helper/store-results.status", HELPER_DONE)
        yield from _idle_until_stopped(ctx)
        return 0

    return workload
