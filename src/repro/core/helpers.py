"""The helper-pod containers (paper §III.e–f).

For each DL job the Guardian creates one helper pod with four
containers — load-data, controller, log-collector, store-results —
isolated from the learner pods but sharing the job's NFS volume:

* **load-data** stages the training data from the object store onto NFS;
* **controller** watches learner exit/status files on NFS and records
  per-learner statuses in ETCD (the reliable status-update pipeline);
* **log-collector** tails learner logs into a combined job log;
* **store-results** uploads results and logs to the object store when
  triggered.

Each is restartable and stateless: its working state is derived from
NFS (and ETCD), which is what makes controller crashes harmless.
"""

import json

from ..raftkv import EtcdClient
from . import layout
from .learner import read_learner_status
from .states import COMPLETED, FAILED, HALTED

HELPER_RUNNING = "RUNNING"
HELPER_DONE = "DONE"
STALLED = "STALLED"


def _idle_until_stopped(ctx):
    """Sidecar idiom: stay alive so restart policy Always is a no-op."""
    yield ctx.stop_event
    return 0


# ---------------------------------------------------------------------------
# load-data
# ---------------------------------------------------------------------------


def make_load_data_workload(platform, job_id, manifest):
    def workload(ctx):
        kernel = ctx.kernel
        mount = ctx.mounts["job"]
        if mount.exists(layout.DATA_READY):
            # A previous incarnation finished; do not re-download.
            yield from _idle_until_stopped(ctx)
            return 0
        mount.write_file("/helper/load-data.status", HELPER_RUNNING)
        ctx.log(f"staging {manifest.dataset_size_mb:.0f} MB of training data")
        yield from platform.object_store.download(
            manifest.data.bucket, "dataset", manifest.data.credentials
        )
        mount.mkdir(layout.DATA_DIR)
        mount.write_file(f"{layout.DATA_DIR}/manifest.json",
                         json.dumps({"size_mb": manifest.dataset_size_mb}))
        mount.write_file(layout.DATA_READY, "ok")
        mount.write_file("/helper/load-data.status", HELPER_DONE)
        ctx.log("training data ready")
        yield from _idle_until_stopped(ctx)
        return 0

    return workload


# ---------------------------------------------------------------------------
# controller
# ---------------------------------------------------------------------------


def make_controller_workload(platform, job_id, manifest):
    def workload(ctx):
        kernel = ctx.kernel
        mount = ctx.mounts["job"]
        # Agent/runtime initialization inside the helper container.
        yield kernel.sleep(platform.config.helper_init_time)
        etcd = EtcdClient(kernel, platform.network, platform.etcd,
                          client_id=f"controller-{job_id}-{ctx.pod.metadata.uid}")
        platform.tracer.emit("controller", "component-ready", job=job_id)
        last_reported = {}
        # Hang detection state: per-learner (status-file content, time it
        # last changed). Rebuilt from scratch after a controller restart
        # — worst case the stall clock restarts, which only delays
        # detection by one timeout.
        freshness = {}
        stall_timeout = platform.config.stall_timeout

        while not ctx.stopping:
            # Learner statuses: NFS -> ETCD. State is recomputed from
            # NFS every pass, so a restarted controller loses nothing.
            for ordinal in range(manifest.learners):
                report = _learner_report(mount, ordinal, kernel.now)
                if report is None:
                    continue
                report = _apply_stall_detection(
                    report, ordinal, freshness, kernel.now, stall_timeout
                )
                if last_reported.get(ordinal) != report:
                    yield from etcd.put(
                        layout.learner_status_key(job_id, ordinal), report
                    )
                    last_reported[ordinal] = report

            # Helper statuses.
            for helper in ("load-data", "store-results"):
                path = f"/helper/{helper}.status"
                if mount.exists(path):
                    value = mount.read_file(path)
                    if last_reported.get(helper) != value:
                        yield from etcd.put(
                            layout.helper_status_key(job_id, helper), value
                        )
                        last_reported[helper] = value

            # Trigger store-results once every learner completed.
            if not mount.exists(layout.CONTROL_STORE_TRIGGER):
                exits = [_exit_code(mount, i) for i in range(manifest.learners)]
                if all(code == 0 for code in exits):
                    mount.write_file(layout.CONTROL_STORE_TRIGGER, "go")
            yield kernel.sleep(platform.config.controller_poll)
        return 0

    return workload


def _apply_stall_detection(report, ordinal, freshness, now, stall_timeout):
    """Flag a PROCESSING learner whose progress has frozen (extension).

    The paper's §III.e detects *orderly* failures (exit codes) and lets
    Kubernetes handle crashes, but a learner that hangs — alive yet
    making no progress — produces neither signal. The controller tracks
    when each learner's reported (status, step) last changed and
    reports STALLED once it exceeds the timeout; the Guardian restarts
    stalled learners.
    """
    if stall_timeout <= 0:
        return report
    fingerprint = (report.get("status"), report.get("step"))
    seen_fingerprint, since = freshness.get(ordinal, (None, now))
    if fingerprint != seen_fingerprint:
        freshness[ordinal] = (fingerprint, now)
        return report
    if report.get("status") == "PROCESSING" and now - since >= stall_timeout:
        stalled = dict(report)
        stalled["status"] = STALLED
        stalled["stalled_for"] = now - since
        return stalled
    return report


def _exit_code(mount, ordinal):
    path = layout.learner_exit_file(ordinal)
    if not mount.exists(path):
        return None
    try:
        return int(mount.read_file(path).strip())
    except ValueError:
        return None


def _learner_report(mount, ordinal, now):
    """Derive the learner's reported status from its NFS files.

    An orderly exit code takes precedence over the (possibly stale)
    status file — this is the §III.e failure-detection rule.
    """
    exit_code = _exit_code(mount, ordinal)
    status = read_learner_status(mount, ordinal)
    if exit_code is not None:
        if exit_code == 0:
            phase = COMPLETED
        elif exit_code == 143:
            phase = HALTED
        else:
            phase = FAILED
        report = {
            "status": phase,
            "step": status.get("step", 0) if status else 0,
            "exit_code": exit_code,
            "time": now,
        }
        if status and "loss" in status:
            report["loss"] = status["loss"]
        return report
    if status is None:
        return None
    report = {"status": status["status"], "step": status["step"], "time": now}
    if "loss" in status:
        report["loss"] = status["loss"]
    return report


# ---------------------------------------------------------------------------
# log-collector
# ---------------------------------------------------------------------------


def make_log_collector_workload(platform, job_id, manifest):
    def workload(ctx):
        kernel = ctx.kernel
        mount = ctx.mounts["job"]
        offsets = {}
        collected = platform.metrics.counter(f"logs.{job_id}.lines")
        while not ctx.stopping:
            for ordinal in range(manifest.learners):
                path = layout.learner_log_file(ordinal)
                if not mount.exists(path):
                    continue
                fresh = mount.read_from(path, offsets.get(ordinal, 0))
                if fresh:
                    offsets[ordinal] = offsets.get(ordinal, 0) + len(fresh)
                    for line in fresh.splitlines():
                        mount.append_line(layout.COMBINED_LOG,
                                          f"learner-{ordinal}| {line}")
                        collected.inc()
            yield kernel.sleep(platform.config.log_collect_interval)
        return 0

    return workload


# ---------------------------------------------------------------------------
# store-results
# ---------------------------------------------------------------------------


def make_store_results_workload(platform, job_id, manifest):
    def workload(ctx):
        kernel = ctx.kernel
        mount = ctx.mounts["job"]
        if mount.exists(layout.CONTROL_STORE_DONE):
            yield from _idle_until_stopped(ctx)
            return 0
        # Wait for the controller's trigger.
        while not mount.exists(layout.CONTROL_STORE_TRIGGER):
            if ctx.stopping:
                return 0
            yield kernel.sleep(platform.config.controller_poll)
        mount.write_file("/helper/store-results.status", HELPER_RUNNING)
        log_text = ""
        if mount.exists(layout.COMBINED_LOG):
            log_text = mount.read_file(layout.COMBINED_LOG)
        model_mb = platform.model_size_mb(manifest)
        ctx.log(f"uploading trained model ({model_mb:.0f} MB) and logs")
        yield from platform.object_store.upload(
            manifest.results.bucket, f"{job_id}/model",
            manifest.results.credentials, size=int(model_mb * 1_000_000),
        )
        yield from platform.object_store.upload(
            manifest.results.bucket, f"{job_id}/logs",
            manifest.results.credentials, size=len(log_text),
            payload={"text": log_text},
        )
        mount.write_file(layout.CONTROL_STORE_DONE, "ok")
        mount.write_file("/helper/store-results.status", HELPER_DONE)
        yield from _idle_until_stopped(ctx)
        return 0

    return workload
