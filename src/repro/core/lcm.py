"""The Lifecycle Manager (paper §III.c–d).

"The LCM is responsible for the job from submission to
completion/failure, i.e., the deployment, monitoring, garbage
collection, and user-initiated termination of the job."

Deployment is delegated: the LCM's only deployment action is the quick,
single-step creation of a Guardian K8S Job. A reconcile loop also scans
MongoDB for QUEUED jobs, so submissions that arrived while the LCM was
down (or whose notify RPC was lost) are still deployed — the LCM keeps
no in-memory state it cannot rebuild.
"""

from ..cluster import ContainerSpec, Job, PodSpec, PodTemplate, RESTART_NEVER
from ..grpcnet import Client, Server
from ..grpcnet.errors import RpcError
from ..raftkv import EtcdClient
from ..sim import Reconciler, WatchSource
from . import layout
from .guardian import make_guardian_workload
from .states import HALTED, QUEUED, is_terminal


class LcmService:
    """One LCM instance (runs inside an LCM pod)."""

    def __init__(self, platform, address):
        self.platform = platform
        self.kernel = platform.kernel
        self.address = address
        self.mongo = platform.mongo_client(address, tracer=platform.tracer)
        self.etcd = EtcdClient(self.kernel, platform.network, platform.etcd,
                               client_id=address, history=platform.history)
        self.server = Server(self.kernel, platform.network, address)
        self.server.add_method("deploy_job", self._on_deploy_job)
        self.server.add_method("kill_job", self._on_kill_job)
        # Partitioned pool (lcm_slices > 0): this instance deploys/GCs
        # only the job-id slices it holds raftkv leases on.
        if platform.config.lcm_slices > 0:
            from .partitions import SliceManager

            self.slices = SliceManager(platform, address, self.etcd)
        else:
            self.slices = None

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------

    def _on_deploy_job(self, request):
        job_id = request["job_id"]
        # Partitioned pool: a notify that lands on the wrong partition
        # (round-robin balancer, stale ring) is forwarded to the slice
        # owner once. If the owner is unknown or unreachable we deploy
        # locally anyway — the Mongo QUEUED->DEPLOYING claim keeps
        # concurrent deploys exactly-once, so misrouting costs at most
        # a wasted claim attempt, never a duplicate Guardian.
        if (self.slices is not None and not request.get("forwarded")
                and not self.slices.owns(job_id)):
            owner = self.slices.owner_of(job_id)
            if owner is not None and owner != self.address:
                forward = Client(self.kernel, self.platform.network, owner,
                                 caller=self.address, retries=0)
                try:
                    response = yield from forward.call(
                        "deploy_job", {"job_id": job_id, "forwarded": True},
                        deadline=1.0)
                    return response
                except RpcError:
                    pass  # owner down; fall through to the local path
        deployed = yield from self.deploy_job(job_id)
        return {"deployed": deployed}

    def _on_kill_job(self, request):
        job_id = request["job_id"]
        # Fast path: a QUEUED job has no Guardian yet; halt it directly
        # (guarded by status so we never race a concurrent deploy).
        doc = yield from self.mongo.find_one_and_update(
            "jobs", {"job_id": job_id, "status": QUEUED},
            {"$set": {"status": HALTED},
             "$push": {"status_history": {"status": HALTED, "time": self.kernel.now}}},
        )
        if doc is not None:
            return {"halted": "immediately"}
        # Otherwise signal the Guardian through ETCD.
        yield from self.etcd.put(layout.halt_key(job_id), True)
        return {"halted": "signalled"}

    # ------------------------------------------------------------------
    # Deployment: create the Guardian (quick single step, §III.d)
    # ------------------------------------------------------------------

    def deploy_job(self, job_id):
        name = layout.guardian_job_name(job_id)
        if self.platform.k8s.api.exists("Job", name):
            return False

        tracer = self.platform.tracer
        span = tracer.start_span("lcm.deploy_job", component="lcm",
                                 parent=tracer.context_of(("job", job_id)),
                                 job=job_id)

        # Claim the job: QUEUED -> DEPLOYING exactly once, even with
        # concurrent LCM instances or notify+reconcile races.
        doc = yield from self.mongo.find_one_and_update(
            "jobs", {"job_id": job_id, "status": QUEUED},
            {"$set": {"status": "DEPLOYING"},
             "$push": {"status_history": {"status": "DEPLOYING",
                                          "time": self.kernel.now}}},
            ctx=span.context,
        )
        if doc is None:
            span.end("noop")
            return False

        # The Guardian (and everything it creates) parents on this span.
        tracer.bind(("job-deploy", job_id), span.context)
        platform = self.platform

        def spec_factory():
            return PodSpec(
                containers=[ContainerSpec(
                    "guardian", "dlaas/guardian",
                    workload=make_guardian_workload(platform, job_id),
                )],
                restart_policy=RESTART_NEVER,  # the K8S Job does the retrying
            )

        start = self.kernel.now
        self.platform.k8s.api.create(Job(
            name,
            PodTemplate(spec_factory, labels={"dlaas-job": job_id, "role": "guardian"}),
            backoff_limit=self.platform.config.guardian_backoff_limit,
            labels={"dlaas-job": job_id},
        ))
        self.platform.metrics.histogram("lcm.guardian_creation_seconds").observe(
            self.kernel.now - start
        )
        self.platform.tracer.emit("lcm", "guardian-created", job=job_id)
        self.platform.events.emit_event(
            "Normal", "GuardianCreated", "Job", job_id,
            message=f"guardian K8S job {name} created", job=job_id)
        span.end("ok")
        return True

    # ------------------------------------------------------------------
    # Reconcilers (started/stopped by the LCM pod workload)
    # ------------------------------------------------------------------

    def _tune_queue(self, reconciler):
        reconciler.queue.backoff_base = self.platform.config.reconciler_backoff_base
        reconciler.queue.backoff_max = self.platform.config.reconciler_backoff_max
        return reconciler

    def make_deploy_reconciler(self):
        """Deploy QUEUED jobs; the safety net behind lost notifies.

        MongoDB has no change stream in the simulation, so the API's
        notify RPC is the event path and this reconciler is resync-only:
        each start/resync relists QUEUED job ids from MongoDB and pushes
        them through the coalescing queue (a job id queued by relist and
        notify at once deploys exactly once; ``deploy_job`` is further
        guarded by the QUEUED->DEPLOYING status claim)."""

        def list_queued():
            docs = yield from self.mongo.find("jobs", {"status": QUEUED},
                                              projection=["job_id"])
            ids = [doc["job_id"] for doc in docs]
            if self.slices is not None:
                # Partitioned pool: resync only the owned slices. An
                # orphaned slice is invisible to everyone for at most
                # one lease TTL + tick, then its adopter relists it.
                ids = [job_id for job_id in ids if self.slices.owns(job_id)]
            return ids

        tracer = self.platform.tracer
        reconciler = Reconciler(
            self.kernel, f"deploy:{self.address}",
            self.deploy_job,
            resync_interval=self.platform.config.lcm_reconcile_interval,
            rewatch_delay=self.platform.config.watch_retry_delay,
            tracer=tracer,
            metrics=self.platform.metrics,
            key_context=lambda job_id: tracer.context_of(("job", job_id)),
        )
        reconciler.add_source(WatchSource("mongo-queued", list_keys=list_queued))
        return self._tune_queue(reconciler)

    def make_gc_reconciler(self):
        """Garbage-collect Guardian K8S Jobs of terminal DL jobs.

        Watch-driven: a Guardian K8S Job completing is a MODIFIED event
        on the API server, so collection is immediate instead of up to
        ``lcm_gc_interval`` late; the interval survives as the relist
        resync covering events lost across an LCM restart."""
        api = self.platform.k8s.api

        def owned(dlaas_job):
            return self.slices is None or self.slices.owns(dlaas_job)

        def job_names():
            return [job.metadata.name for job in api.list("Job")
                    if job.metadata.labels.get("dlaas-job")
                    and owned(job.metadata.labels["dlaas-job"])]

        def keys_of(event):
            _etype, resource = event
            dlaas_job = resource.metadata.labels.get("dlaas-job")
            if dlaas_job is None or not owned(dlaas_job):
                return ()
            return (resource.metadata.name,)

        reconciler = Reconciler(
            self.kernel, f"gc:{self.address}",
            self._gc_job,
            resync_interval=self.platform.config.lcm_gc_interval,
            rewatch_delay=self.platform.config.watch_retry_delay,
            tracer=self.platform.tracer,
            metrics=self.platform.metrics,
        )
        reconciler.watch_channel("k8s-jobs", subscribe=lambda: api.watch("Job"),
                                 keys_of=keys_of, list_keys=job_names)
        return self._tune_queue(reconciler)

    def _gc_job(self, name):
        api = self.platform.k8s.api
        job = api.get_or_none("Job", name)
        if job is None or not job.complete:
            return  # not collectable (yet); a later event/resync re-checks
        dlaas_job = job.metadata.labels.get("dlaas-job")
        if dlaas_job is None:
            return
        doc = yield from self.mongo.find_one("jobs", {"job_id": dlaas_job},
                                             projection=["status"])
        if doc is None or not is_terminal(doc["status"]):
            return
        if job.active_pod and api.exists("Pod", job.active_pod):
            pod = api.get("Pod", job.active_pod)
            pod.deletion_requested = True
            api.update(pod)
        api.delete("Job", job.metadata.name, job.metadata.namespace)
        self.platform.events.emit_event(
            "Normal", "GuardianCollected", "Job", dlaas_job,
            message=f"guardian K8S job {name} garbage-collected", job=dlaas_job)
