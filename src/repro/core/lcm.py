"""The Lifecycle Manager (paper §III.c–d).

"The LCM is responsible for the job from submission to
completion/failure, i.e., the deployment, monitoring, garbage
collection, and user-initiated termination of the job."

Deployment is delegated: the LCM's only deployment action is the quick,
single-step creation of a Guardian K8S Job. A reconcile loop also scans
MongoDB for QUEUED jobs, so submissions that arrived while the LCM was
down (or whose notify RPC was lost) are still deployed — the LCM keeps
no in-memory state it cannot rebuild.
"""

from ..cluster import ContainerSpec, Job, PodSpec, PodTemplate, RESTART_NEVER
from ..docstore import MongoClient
from ..grpcnet import Server
from ..raftkv import EtcdClient
from . import layout
from .guardian import make_guardian_workload
from .states import HALTED, QUEUED, is_terminal


class LcmService:
    """One LCM instance (runs inside an LCM pod)."""

    def __init__(self, platform, address):
        self.platform = platform
        self.kernel = platform.kernel
        self.address = address
        self.mongo = MongoClient(self.kernel, platform.network, platform.mongo,
                                 caller=address)
        self.etcd = EtcdClient(self.kernel, platform.network, platform.etcd,
                               client_id=address)
        self.server = Server(self.kernel, platform.network, address)
        self.server.add_method("deploy_job", self._on_deploy_job)
        self.server.add_method("kill_job", self._on_kill_job)

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------

    def _on_deploy_job(self, request):
        deployed = yield from self.deploy_job(request["job_id"])
        return {"deployed": deployed}

    def _on_kill_job(self, request):
        job_id = request["job_id"]
        # Fast path: a QUEUED job has no Guardian yet; halt it directly
        # (guarded by status so we never race a concurrent deploy).
        doc = yield from self.mongo.find_one_and_update(
            "jobs", {"job_id": job_id, "status": QUEUED},
            {"$set": {"status": HALTED},
             "$push": {"status_history": {"status": HALTED, "time": self.kernel.now}}},
        )
        if doc is not None:
            return {"halted": "immediately"}
        # Otherwise signal the Guardian through ETCD.
        yield from self.etcd.put(layout.halt_key(job_id), True)
        return {"halted": "signalled"}

    # ------------------------------------------------------------------
    # Deployment: create the Guardian (quick single step, §III.d)
    # ------------------------------------------------------------------

    def deploy_job(self, job_id):
        name = layout.guardian_job_name(job_id)
        if self.platform.k8s.api.exists("Job", name):
            return False

        # Claim the job: QUEUED -> DEPLOYING exactly once, even with
        # concurrent LCM instances or notify+reconcile races.
        doc = yield from self.mongo.find_one_and_update(
            "jobs", {"job_id": job_id, "status": QUEUED},
            {"$set": {"status": "DEPLOYING"},
             "$push": {"status_history": {"status": "DEPLOYING",
                                          "time": self.kernel.now}}},
        )
        if doc is None:
            return False

        platform = self.platform

        def spec_factory():
            return PodSpec(
                containers=[ContainerSpec(
                    "guardian", "dlaas/guardian",
                    workload=make_guardian_workload(platform, job_id),
                )],
                restart_policy=RESTART_NEVER,  # the K8S Job does the retrying
            )

        start = self.kernel.now
        self.platform.k8s.api.create(Job(
            name,
            PodTemplate(spec_factory, labels={"dlaas-job": job_id, "role": "guardian"}),
            backoff_limit=self.platform.config.guardian_backoff_limit,
            labels={"dlaas-job": job_id},
        ))
        self.platform.metrics.histogram("lcm.guardian_creation_seconds").observe(
            self.kernel.now - start
        )
        self.platform.tracer.emit("lcm", "guardian-created", job=job_id)
        return True

    # ------------------------------------------------------------------
    # Loops (run as processes inside the LCM pod workload)
    # ------------------------------------------------------------------

    def reconcile_loop(self, stop_event):
        """Deploy QUEUED jobs; the safety net behind lost notifies."""
        while not stop_event.triggered:
            try:
                docs = yield from self.mongo.find("jobs", {"status": QUEUED})
            except Exception:
                docs = []
            for doc in docs:
                if stop_event.triggered:
                    break
                yield from self.deploy_job(doc["job_id"])
            yield self.kernel.sleep(self.platform.config.lcm_reconcile_interval)

    def gc_loop(self, stop_event):
        """Garbage-collect Guardian K8S Jobs of terminal DL jobs."""
        while not stop_event.triggered:
            for job in list(self.platform.k8s.api.list("Job")):
                dlaas_job = job.metadata.labels.get("dlaas-job")
                if dlaas_job is None or not job.complete:
                    continue
                doc = yield from self.mongo.find_one("jobs", {"job_id": dlaas_job})
                if doc is not None and is_terminal(doc["status"]):
                    if job.active_pod and self.platform.k8s.api.exists("Pod", job.active_pod):
                        pod = self.platform.k8s.api.get("Pod", job.active_pod)
                        pod.deletion_requested = True
                        self.platform.k8s.api.update(pod)
                    self.platform.k8s.api.delete("Job", job.metadata.name,
                                                 job.metadata.namespace)
            yield self.kernel.sleep(self.platform.config.lcm_gc_interval)
