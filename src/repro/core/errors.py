"""Errors raised by the DLaaS core services."""


class DlaasError(Exception):
    """Base class for platform errors."""


class InvalidManifest(DlaasError):
    """Manifest validation failed; carries all problems found."""

    def __init__(self, problems):
        if isinstance(problems, str):
            problems = [problems]
        super().__init__("; ".join(problems))
        self.problems = list(problems)


class JobNotFound(DlaasError):
    """Unknown job id (or not visible to this tenant)."""


class ModelNotFound(DlaasError):
    """Unknown serving model id (or not visible to this tenant)."""


class ServingDisabled(DlaasError):
    """Serving endpoints called on a platform without the serving
    subsystem enabled (``PlatformConfig(serving=True)``)."""


class AuthError(DlaasError):
    """Missing, invalid, or insufficient credentials."""


class RateLimited(DlaasError):
    """Tenant exceeded its request budget."""


class QuotaExceeded(DlaasError):
    """Tenant at its concurrent-job quota (and the admission queue,
    if one is configured, could not absorb the submission)."""

    def __init__(self, message, reason="quota"):
        super().__init__(message)
        self.reason = reason  # "quota" | "queue_full" | "queue_timeout"


class IllegalTransition(DlaasError):
    """Job status update violated the lifecycle state machine."""

    def __init__(self, current, requested):
        super().__init__(f"cannot move job from {current} to {requested}")
        self.current = current
        self.requested = requested


class DeploymentFailed(DlaasError):
    """The Guardian exhausted its deployment attempts."""
