"""Per-job timelines: the debugging view the paper's users need.

§II: users rely on status timestamps "for job profiling and debugging".
This module merges everything the platform knows about one job — status
transitions, Kubernetes events for its pods, trace events from its
Guardian/controller/learners, injected faults — into one ordered,
human-readable timeline.
"""


def job_timeline(platform, job_id, status_doc=None):
    """All events concerning ``job_id`` as (time, source, text), sorted."""
    entries = []

    if status_doc is not None:
        for item in status_doc.get("status_history", []):
            entries.append((item["time"], "status", item["status"]))

    for record in platform.tracer.records:
        if record.fields.get("job") == job_id:
            detail = {k: v for k, v in record.fields.items() if k != "job"}
            text = record.kind + (f" {detail}" if detail else "")
            entries.append((record.time, record.component, text))
        elif record.component == "fault-injector" and \
                job_id in str(record.fields.get("target", "")):
            entries.append((record.time, "fault", str(record.fields["target"])))

    for event in platform.k8s.api.events:
        if job_id in event.name or job_id in event.message:
            entries.append((event.time, f"k8s:{event.kind.lower()}",
                            f"{event.reason} {event.name}"
                            + (f" ({event.message})" if event.message else "")))

    entries.sort(key=lambda item: item[0])
    return entries


def render_timeline(entries, limit=None):
    """Format timeline entries as aligned text lines.

    ``limit`` caps the number of real entries shown: the first
    ``limit // 2`` and the last ``limit - limit // 2`` survive, with a
    single elision marker between them counting what was dropped.
    """
    if limit is not None and limit >= 0 and len(entries) > limit:
        skipped = len(entries) - limit
        head_count = limit // 2
        # Positive tail index: entries[-(limit - head_count):] breaks
        # down at limit == 0, where -0 slices the whole list back in.
        tail_start = len(entries) - (limit - head_count)
        marker = (None, None, f"... {skipped} events elided ...")
        entries = entries[:head_count] + [marker] + entries[tail_start:]
    width = max((len(source) for _t, source, _x in entries if source), default=6)
    lines = []
    for time, source, text in entries:
        if time is None:
            lines.append(f"{'':>10}  {text}")
        else:
            lines.append(f"{time:>9.2f}s  {source:<{width}}  {text}")
    return "\n".join(lines)
