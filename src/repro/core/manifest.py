"""Training-job manifests: what users submit (paper §III.a).

"Job parameters, including the source of training data, credentials to
access training data, framework, number of learners, location where
results and logs should be stored, learning rate, etc., are specified
using a manifest file."
"""

from dataclasses import dataclass, field

from ..frameworks import FRAMEWORKS, GPU_CATALOGUE, MODEL_ZOO
from ..frameworks.models import training_memory_mb
from .errors import InvalidManifest


@dataclass
class DataStoreRef:
    """A bucket plus the credentials to reach it."""

    bucket: str
    credentials: dict

    @classmethod
    def from_dict(cls, raw, problems, label):
        if not isinstance(raw, dict):
            problems.append(f"{label}: expected an object")
            return None
        bucket = raw.get("bucket")
        credentials = raw.get("credentials")
        if not bucket or not isinstance(bucket, str):
            problems.append(f"{label}.bucket: required string")
        if not isinstance(credentials, dict) or not credentials:
            problems.append(f"{label}.credentials: required object")
        return cls(bucket=bucket, credentials=credentials or {})

    def to_dict(self):
        return {"bucket": self.bucket, "credentials": dict(self.credentials)}


@dataclass
class TrainingManifest:
    """A validated DL training job specification."""

    name: str
    framework: str
    model: str
    learners: int
    gpus_per_learner: int
    gpu_type: str
    target_steps: int
    data: DataStoreRef
    results: DataStoreRef
    batch_per_gpu: int = 0  # 0 -> model default
    priority: int = 0  # 0-100; higher may preempt lower-priority learners
    checkpoint_interval: float = 300.0
    dataset_size_mb: float = 1000.0
    learning_rate: float = 0.01
    memory_mb: int = 8192
    cpu_millicores: int = 4000
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, raw):
        """Validate and build; raises :class:`InvalidManifest` with a
        complete list of problems rather than failing one at a time."""
        if not isinstance(raw, dict):
            raise InvalidManifest("manifest must be an object")
        problems = []

        name = raw.get("name")
        if not name or not isinstance(name, str):
            problems.append("name: required string")

        framework = str(raw.get("framework", "")).lower()
        if framework not in FRAMEWORKS:
            problems.append(
                f"framework: {framework!r} not supported; have {sorted(FRAMEWORKS)}"
            )

        model = str(raw.get("model", "")).lower()
        if model not in MODEL_ZOO:
            problems.append(f"model: {model!r} unknown; have {sorted(MODEL_ZOO)}")

        learners = raw.get("learners", 1)
        if not isinstance(learners, int) or learners < 1:
            problems.append("learners: must be an integer >= 1")
        elif learners > 1 and framework in FRAMEWORKS \
                and not FRAMEWORKS[framework].supports_multi_node:
            problems.append(
                f"learners: framework {framework!r} does not support distributed training"
            )

        gpus = raw.get("gpus_per_learner", 1)
        if not isinstance(gpus, int) or not 1 <= gpus <= 8:
            problems.append("gpus_per_learner: must be an integer in [1, 8]")

        gpu_type = str(raw.get("gpu_type", "")).lower()
        if gpu_type not in GPU_CATALOGUE:
            problems.append(f"gpu_type: {gpu_type!r} unknown; have {sorted(GPU_CATALOGUE)}")

        target_steps = raw.get("target_steps")
        if not isinstance(target_steps, int) or target_steps < 1:
            problems.append("target_steps: required integer >= 1")

        checkpoint_interval = raw.get("checkpoint_interval", 300.0)
        if not isinstance(checkpoint_interval, (int, float)) or checkpoint_interval < 0:
            problems.append("checkpoint_interval: must be a number >= 0")

        batch = raw.get("batch_per_gpu", 0)
        if not isinstance(batch, int) or batch < 0:
            problems.append("batch_per_gpu: must be an integer >= 0 (0 = default)")

        priority = raw.get("priority", 0)
        if not isinstance(priority, int) or not 0 <= priority <= 100:
            problems.append("priority: must be an integer in [0, 100]")

        dataset_size_mb = raw.get("dataset_size_mb", 1000.0)
        if not isinstance(dataset_size_mb, (int, float)) or dataset_size_mb <= 0:
            problems.append("dataset_size_mb: must be a positive number")

        # GPU-memory fit: reject configurations that would OOM at the
        # first training step (model + chosen batch vs the card).
        if model in MODEL_ZOO and gpu_type in GPU_CATALOGUE \
                and isinstance(batch, int) and batch >= 0:
            spec = MODEL_ZOO[model]
            gpu = GPU_CATALOGUE[gpu_type]
            required = training_memory_mb(spec, batch)
            available = gpu.memory_gb * 1024.0
            if required > available:
                effective = batch or spec.default_batch_per_gpu
                problems.append(
                    f"batch_per_gpu: {model} with batch {effective} needs "
                    f"~{required:.0f}MB but {gpu_type} has {available:.0f}MB"
                )

        data = DataStoreRef.from_dict(raw.get("data"), problems, "data")
        results = DataStoreRef.from_dict(raw.get("results"), problems, "results")

        if problems:
            raise InvalidManifest(problems)
        return cls(
            name=name,
            framework=framework,
            model=model,
            learners=learners,
            gpus_per_learner=gpus,
            gpu_type=gpu_type,
            target_steps=target_steps,
            data=data,
            results=results,
            batch_per_gpu=batch,
            priority=priority,
            checkpoint_interval=float(checkpoint_interval),
            dataset_size_mb=float(dataset_size_mb),
            learning_rate=float(raw.get("learning_rate", 0.01)),
            memory_mb=int(raw.get("memory_mb", 8192)),
            cpu_millicores=int(raw.get("cpu_millicores", 4000)),
            extra=dict(raw.get("extra", {})),
        )

    def to_dict(self):
        return {
            "name": self.name,
            "framework": self.framework,
            "model": self.model,
            "learners": self.learners,
            "gpus_per_learner": self.gpus_per_learner,
            "gpu_type": self.gpu_type,
            "target_steps": self.target_steps,
            "batch_per_gpu": self.batch_per_gpu,
            "priority": self.priority,
            "checkpoint_interval": self.checkpoint_interval,
            "dataset_size_mb": self.dataset_size_mb,
            "learning_rate": self.learning_rate,
            "memory_mb": self.memory_mb,
            "cpu_millicores": self.cpu_millicores,
            "data": self.data.to_dict(),
            "results": self.results.to_dict(),
            "extra": dict(self.extra),
        }

    @property
    def total_gpus(self):
        return self.learners * self.gpus_per_learner
