"""Assembly of the whole DLaaS platform (Fig. 1 of the paper).

One object builds and wires every layer:

* platform layer — simulated Kubernetes cluster, 3-way-replicated ETCD
  (Raft), MongoDB replica set, shared NFS server, cloud object store,
  and the RPC fabric connecting them;
* core services — API and LCM, deployed as Kubernetes Deployments and
  registered into service load balancers;
* per-job machinery — Guardians (K8S Jobs), helper pods and learner
  StatefulSets are created at job-deployment time by the LCM/Guardian.
"""

from dataclasses import dataclass, field

from ..cluster import (
    ContainerSpec,
    Deployment,
    KubernetesCluster,
    PodSpec,
    PodTemplate,
    RESTART_ALWAYS,
)
from ..docstore import MongoReplicaSet
from ..frameworks import get_framework, get_model, FRAMEWORKS
from ..grpcnet import LatencyModel, LoadBalancer, Network
from ..monitoring import HealthRegistry, MonitoringStack, register_platform_probes
from ..nfs import NfsServer
from ..objectstore import ObjectStore
from ..raftkv import EtcdCluster
from ..sim import FaultInjector, Kernel, MetricsRegistry, Tracer
from .auth import TokenRegistry
from .client import DlaasClient
from .events import EventRecorder
from .services import make_api_workload, make_lcm_workload


@dataclass
class PlatformConfig:
    """Every tunable of the assembled platform, simulated seconds."""

    # Topology
    gpu_nodes: int = 4
    gpus_per_node: int = 4
    gpu_type: str = "k80"
    management_nodes: int = 3
    extra_gpu_pools: tuple = ()  # extra (count, gpus, gpu_type) pools
    api_replicas: int = 2
    lcm_replicas: int = 1
    etcd_size: int = 3
    mongo_size: int = 3

    # Service boot times (drive Fig. 4 recovery bands)
    api_init_time: float = 2.9
    lcm_init_time: float = 4.1
    guardian_init_time: float = 0.55
    helper_init_time: float = 1.8
    cos_bind_time: float = 2.5

    # Core-service behaviour
    api_service_time: float = 0.002
    api_rate_limit: float = 50.0
    api_rate_burst: float = 200.0
    lcm_reconcile_interval: float = 1.0  # deploy-queue resync (Mongo relist)
    lcm_gc_interval: float = 5.0  # GC resync (API-server relist)
    guardian_step_time: float = 0.15
    guardian_backoff_limit: int = 8
    max_deploy_attempts: int = 3
    gang_scheduling: bool = True
    monitor_interval: float = 1.0  # Guardian status resync (watch-driven between ticks)
    controller_poll: float = 0.5  # controller NFS resync + progress coalescing window

    # Reconciler runtime (event-driven control plane). Watches broken by
    # a crashed server are re-established after ``watch_retry_delay``
    # with a full relist; failed reconciles requeue with exponential
    # backoff between the two bounds. The ``guardian_*_resync`` knobs
    # are the level-triggered fallback cadences of the Guardian's
    # rollback/teardown waits (formerly hardcoded sleeps), and
    # ``guardian_event_coalesce`` batches progress-only etcd events so a
    # chatty learner does not cost one Mongo round-trip per step.
    watch_retry_delay: float = 0.2
    reconciler_backoff_base: float = 0.1
    reconciler_backoff_max: float = 5.0
    guardian_event_coalesce: float = 0.25
    guardian_rollback_resync: float = 0.2
    guardian_teardown_resync: float = 0.5
    # Hang detection (extension): a PROCESSING learner whose status file
    # has not changed for this long is reported STALLED and restarted by
    # the Guardian. 0 disables.
    stall_timeout: float = 90.0
    stall_restart_cooldown: float = 60.0
    log_collect_interval: float = 1.0
    progress_every: int = 20

    # Observability: causal span collection (flat trace records and
    # metrics stay on — they are load-bearing for tests and benchmarks).
    span_tracing: bool = True

    # Monitoring subsystem (scrape pipeline + health probes + SLO
    # alerting). Collection is pure in-memory observation and event
    # persistence bypasses the RPC fabric, so the simulated job
    # timeline is bit-identical with monitoring on or off. ``for:``
    # durations: service-level rules ride out a scrape hiccup;
    # pod-level dips (learner/guardian restarts) last well under a
    # second, so their rules are tighter.
    monitoring: bool = True
    scrape_interval: float = 1.0
    alert_eval_interval: float = 1.0
    event_flush_interval: float = 2.0
    series_retention: float = 600.0
    series_max_samples: int = 2048
    alert_service_for: float = 1.0
    alert_pod_for: float = 0.2
    # Optional bearer token gating GET /metrics and GET /healthz
    # (None = unauthenticated, the current behaviour).
    metrics_auth: str = None
    # Gray-failure detection (repro.monitoring.differential): the
    # DifferentialDetector scores each endpoint's windowed mean RPC
    # latency, error rate and served-vs-requested flow against the
    # median of its role peers (median + MAD robust z-score) and
    # publishes ``gray_divergence`` recording series that the
    # GrayFailure{Slow,Partition,DiskStall} alert rules threshold.
    # Pure consumer of scraped series — the simulated timeline is
    # bit-identical with detection on or off.
    gray_detection: bool = True
    gray_window: float = 8.0  # trailing stats window, seconds
    gray_min_count: int = 4  # min calls in window to score an endpoint
    gray_divergence_threshold: float = 3.0  # robust z-score that alerts
    gray_alert_for: float = 1.0  # GrayFailure* hold before firing
    # Consistency audit (repro.audit): record every raftkv client
    # operation in a flight recorder and check the per-key histories
    # for linearizability with a periodic in-sim auditor. Recording is
    # direct appends (no RPCs, no RNG), so the simulated timeline is
    # bit-identical with it on or off (gated by bench_consistency.py).
    history_recording: bool = False
    audit_interval: float = 5.0  # seconds between auditor passes
    audit_max_configs: int = 200_000  # checker search budget per key

    # Simulator fast path. On: cancellable timers with lazy heap
    # deletion, indexed docstore queries, and copy-elided reads behind
    # the Mongo servers' single send-boundary copy. Off replays the
    # unoptimized code paths; either way the simulated timeline is
    # bit-identical (asserted by tests/integration/test_fast_path_
    # equivalence.py), so the flag exists only for equivalence testing
    # and before/after benchmarking.
    sim_fast_path: bool = True
    # Debug assertion that no RPC handler mutates a request in place
    # (the contract that makes reference-passing payloads sound).
    rpc_debug_freeze: bool = False

    # Serving subsystem (repro.serving): inference Deployments with an
    # SLO-driven replica autoscaler, plus elastic batch inference. Off
    # by default — nothing serving-related is constructed, no extra
    # processes run, and the simulated training timeline is
    # bit-identical to a tree without the subsystem (gated by
    # bench_serving.py against the committed perf-smoke digest).
    serving: bool = False
    serving_replicas: int = 1  # manager (dlaas-serving) replicas
    serving_init_time: float = 3.2  # manager pod boot
    serving_replica_init_time: float = 2.0  # model load on a replica
    serving_reconcile_interval: float = 1.0  # model-registry resync
    serving_autoscale_interval: float = 2.0
    serving_scale_up_cooldown: float = 5.0
    serving_scale_down_cooldown: float = 60.0
    serving_queue_high: float = 16.0  # queued requests per replica
    serving_latency_window: float = 20.0  # rolling p99 window, seconds
    serving_service_jitter: float = 0.1  # fraction of service time
    # Elastic batch inference (repro.serving.batch)
    batchinfer_lease_timeout: float = 20.0
    batchinfer_renew_interval: float = 2.0
    batchinfer_monitor_interval: float = 2.0
    batchinfer_stall_threshold: float = 60.0  # BatchInferStalled alert

    # Fabric
    network_latency: float = 0.0008
    network_jitter: float = 0.0006

    # Sharded deployment (repro.core.sharded.ShardedPlatform): number
    # of platform cells, each a full control plane on its own kernel
    # shard owning a slice of the job space. 1 = today's single-cell
    # platform on one kernel — bit-identical, no shard machinery is
    # even constructed. Cross-cell traffic (federation RPCs) rides
    # boundary messages whose latency floor is ``shard_link_latency``;
    # that floor is also the conservative-lookahead window of the
    # sharded kernel, so raising it buys bigger parallel windows at the
    # price of staler federation state.
    shards: int = 1
    shard_link_latency: float = 0.25

    # Sharded control plane (ISSUE 10): every knob defaults to the
    # unsharded platform, and with the defaults none of the sharding
    # machinery runs a single extra simulation event — the timeline is
    # bit-identical to the pre-sharding tree (gated by the perf-smoke
    # digest in bench_scalability.py --check).
    #
    # api_ring_routing: the dlaas-api balancer grows a consistent-hash
    # ring and clients route by tenant, so one tenant's requests (and
    # its admission state) land on one replica with stable fail-over.
    api_ring_routing: bool = False
    # mongo_shards: N independent replica sets; ``jobs``/``models``
    # documents are hash-placed by their id, point ops hit one shard,
    # cross-shard queries scatter-gather (repro.docstore.sharding).
    mongo_shards: int = 1
    # lcm_slices: partition the job-id space into this many slices;
    # each LCM instance leases a subset via raftkv (TTL below) and
    # deploys/GCs only its own slice. A crashed partition's leases
    # expire and a survivor adopts the orphaned slice. 0 = every LCM
    # sees every job (today's behaviour).
    lcm_slices: int = 0
    lcm_lease_ttl: float = 3.0
    lcm_slice_tick: float = 0.5  # keepalive + claim-reconcile cadence

    # Admission control at the API tier (per-tenant isolation). The
    # token-bucket rate limit above (api_rate_limit/burst) is already
    # per tenant; these add a concurrent-job quota and a weighted-fair
    # queue for over-quota submissions. 0 quota = unlimited (off).
    tenant_quota_jobs: int = 0
    # Over-quota submissions: with a queue limit, up to this many per
    # tenant wait in the fair queue (granted in weighted deficit
    # round-robin order as capacity frees); 0 = reject immediately.
    admission_queue_limit: int = 0
    # Cap on queue wait — must stay under the client RPC deadline
    # (5 s) or a queued submit turns into client retry + duplicate.
    admission_max_wait: float = 3.0
    admission_pump_interval: float = 0.1
    tenant_weights: dict = None  # tenant -> fair-share weight (default 1)

    image_sizes: dict = field(default_factory=lambda: {
        "dlaas/api": 60.0,
        "dlaas/lcm": 55.0,
        "dlaas/guardian": 45.0,
        "dlaas/helper": 120.0,
    })


class DlaasPlatform:
    """The running platform: substrates + core services + user client."""

    def __init__(self, kernel=None, config=None, seed=0):
        self.config = config or PlatformConfig()
        if self.config.shards > 1:
            raise ValueError(
                f"PlatformConfig(shards={self.config.shards}) needs the "
                "partitioned assembly — use repro.core.sharded."
                "ShardedPlatform; DlaasPlatform is one cell")
        self.kernel = kernel or Kernel(
            seed=seed, timer_cancellation=self.config.sim_fast_path)
        self.tracer = Tracer(self.kernel,
                             span_tracing=self.config.span_tracing)
        self.metrics = MetricsRegistry()
        # The event recorder is always on: recording is pure in-memory
        # bookkeeping, so it cannot perturb the timeline, and tests can
        # assert on events regardless of the monitoring flag.
        self.events = EventRecorder(self.kernel, metrics=self.metrics)
        self.faults = FaultInjector(self.kernel, tracer=self.tracer,
                                    metrics=self.metrics, events=self.events)
        # Flight recorder for raftkv client histories; components pass
        # it to their EtcdClient so every KV op lands in one audit log.
        if self.config.history_recording:
            from ..audit import HistoryRecorder

            self.history = HistoryRecorder(self.kernel)
        else:
            self.history = None
        self.network = Network(
            self.kernel,
            latency=LatencyModel(self.config.network_latency,
                                 self.config.network_jitter),
            tracer=None,
            metrics=self.metrics,
            debug_freeze=self.config.rpc_debug_freeze,
        )
        self.nfs = NfsServer(self.kernel, metrics=self.metrics,
                             events=self.events)
        self.object_store = ObjectStore(self.kernel, metrics=self.metrics)
        self.k8s = KubernetesCluster(self.kernel, self.nfs, tracer=self.tracer,
                                     metrics=self.metrics, events=self.events)
        self.etcd = EtcdCluster(self.kernel, self.network,
                                size=self.config.etcd_size,
                                metrics=self.metrics, events=self.events)
        # mongo_shards=1 keeps the plain replica set (no shard-set
        # object at all); sharded platforms expose shard 0 as
        # ``self.mongo`` so member-level hooks (chaos, flusher, health)
        # keep their classic ``mongo-<i>`` targets.
        if self.config.mongo_shards > 1:
            from ..docstore import MongoShardSet

            self.mongo_shard_set = MongoShardSet(
                self.kernel, self.network, shards=self.config.mongo_shards,
                size=self.config.mongo_size, events=self.events,
                fast_path=self.config.sim_fast_path)
            self.mongo = self.mongo_shard_set.shards[0]
        else:
            self.mongo_shard_set = None
            self.mongo = MongoReplicaSet(self.kernel, self.network,
                                         size=self.config.mongo_size,
                                         events=self.events,
                                         fast_path=self.config.sim_fast_path)
        self.tokens = TokenRegistry()
        self.api_balancer = LoadBalancer("dlaas-api",
                                         ring=self.config.api_ring_routing)
        self.lcm_balancer = LoadBalancer("dlaas-lcm")
        # The serving data plane is platform-owned (it outlives manager
        # pods) and exists only when the subsystem is enabled — with the
        # flag off the training timeline must be bit-identical.
        if self.config.serving:
            from ..serving import ServingRuntime

            self.serving_balancer = LoadBalancer("dlaas-serving")
            self.serving = ServingRuntime(
                self.kernel, self.metrics, self.events,
                latency_window=self.config.serving_latency_window)
        else:
            self.serving_balancer = None
            self.serving = None
        self.health = HealthRegistry()
        register_platform_probes(self, self.health)
        self.monitoring = MonitoringStack(self) if self.config.monitoring else None
        self._build_topology()
        self._register_images()
        self._started = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_topology(self):
        for i in range(self.config.management_nodes):
            self.k8s.add_node(f"mgmt-{i}", gpus=0, labels={"pool": "management"})
        for i in range(self.config.gpu_nodes):
            self.k8s.add_node(f"gpu-{i}", gpus=self.config.gpus_per_node,
                              gpu_type=self.config.gpu_type,
                              labels={"pool": "gpu"})
        for pool_index, (count, gpus, gpu_type) in enumerate(self.config.extra_gpu_pools):
            for i in range(count):
                self.k8s.add_node(f"{gpu_type}-{pool_index}-{i}", gpus=gpus,
                                  gpu_type=gpu_type, labels={"pool": "gpu"})

    def _register_images(self):
        image_sizes = dict(self.config.image_sizes)
        if self.config.serving:
            image_sizes.setdefault("dlaas/serving", 55.0)
        for image, size in image_sizes.items():
            self.k8s.registry.register(image, size)
        for framework in FRAMEWORKS.values():
            self.k8s.registry.register(framework.image, framework.image_size_mb)
        # DaemonSet-style pre-pull of the small platform images on every
        # node: core services must restart fast (Fig. 4).
        for node_name in self.k8s.kubelets:
            for image in image_sizes:
                self.k8s.registry.prewarm(node_name, image)

    def framework_image(self, framework_name):
        return get_framework(framework_name).image

    def model_size_mb(self, manifest):
        return get_model(manifest.model).checkpoint_mb

    def model_default_batch(self, manifest):
        return get_model(manifest.model).default_batch_per_gpu

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def start(self, settle=True):
        """Boot every layer; with ``settle`` the clock advances until the
        control plane is ready (leader elected, API pods serving)."""
        if self._started:
            return self
        self._started = True
        self.k8s.start()
        self.etcd.start()
        if self.mongo_shard_set is not None:
            self.mongo_shard_set.start()
        else:
            self.mongo.start()
        self._create_indexes()
        self._deploy_core_services()
        if self.monitoring is not None:
            self.monitoring.start()
        if settle:
            self.kernel.run(until=self.kernel.now + 15.0)
        return self

    def _create_indexes(self):
        # Bootstrap-time schema setup, directly on the primary (the
        # replication stream mirrors collections created later). With
        # docstore sharding every shard gets the same schema.
        members = (list(self.mongo_shard_set.all_members())
                   if self.mongo_shard_set is not None
                   else self.mongo.members.values())
        for member in members:
            jobs = member.database.collection("jobs")
            jobs.create_index("job_id", unique=True)
            # Secondary equality indexes on the fields the LCM resync
            # ({status: QUEUED}), API listing ({tenant: ...}) and the
            # monitoring flusher/event queries ({job: ...}) hammer.
            jobs.create_index("status")
            jobs.create_index("tenant")
            member.database.collection("counters").create_index("_id_name", unique=True)
            events = member.database.collection("events")
            events.create_index("job")
            events.create_index("event_key")
            member.database.collection("metering").create_index("tenant")
            if self.config.serving:
                models = member.database.collection("models")
                models.create_index("model_id", unique=True)
                models.create_index("tenant")
                models.create_index("status")

    def _deploy_core_services(self):
        self.k8s.api.create(Deployment(
            "dlaas-api",
            PodTemplate(self._api_pod_spec, labels={"dlaas": "core", "app": "api"}),
            replicas=self.config.api_replicas,
        ))
        self.k8s.api.create(Deployment(
            "dlaas-lcm",
            PodTemplate(self._lcm_pod_spec, labels={"dlaas": "core", "app": "lcm"}),
            replicas=self.config.lcm_replicas,
        ))
        if self.config.serving:
            self.k8s.api.create(Deployment(
                "dlaas-serving",
                PodTemplate(self._serving_pod_spec,
                            labels={"dlaas": "core", "app": "serving"}),
                replicas=self.config.serving_replicas,
            ))

    def _api_pod_spec(self):
        return PodSpec(
            containers=[ContainerSpec("api", "dlaas/api",
                                      workload=make_api_workload(self))],
            restart_policy=RESTART_ALWAYS,
            node_selector={"pool": "management"},
        )

    def _lcm_pod_spec(self):
        return PodSpec(
            containers=[ContainerSpec("lcm", "dlaas/lcm",
                                      workload=make_lcm_workload(self))],
            restart_policy=RESTART_ALWAYS,
            node_selector={"pool": "management"},
        )

    def _serving_pod_spec(self):
        from .services import make_serving_workload

        return PodSpec(
            containers=[ContainerSpec("serving", "dlaas/serving",
                                      workload=make_serving_workload(self))],
            restart_policy=RESTART_ALWAYS,
            node_selector={"pool": "management"},
        )

    # ------------------------------------------------------------------
    # User-facing conveniences
    # ------------------------------------------------------------------

    def enable_autoscaler(self, min_nodes=0, max_nodes=8, boot_time=90.0,
                          idle_timeout=300.0, gpus=None, gpu_type=None):
        """Turn on GPU-pool elasticity (the paper's elasticity goal).

        New nodes match the platform's GPU pool shape unless overridden.
        Returns the started :class:`ClusterAutoscaler`.
        """
        from ..cluster import ClusterAutoscaler, NodeTemplate

        template = NodeTemplate(
            gpus=gpus or self.config.gpus_per_node,
            gpu_type=gpu_type or self.config.gpu_type,
        )
        autoscaler = ClusterAutoscaler(
            self.kernel, self.k8s, template=template, min_nodes=min_nodes,
            max_nodes=max_nodes, boot_time=boot_time, idle_timeout=idle_timeout,
        )
        self.k8s.controllers.append(autoscaler)
        if self._started:
            autoscaler.start()
        return autoscaler

    def mongo_client(self, caller, tracer=None, **kwargs):
        """A docstore client for ``caller`` — shard-routing when the
        platform runs with ``mongo_shards > 1``, the classic replica-set
        client otherwise. Every component goes through this factory so
        the two topologies are interchangeable."""
        if self.mongo_shard_set is not None:
            from ..docstore import ShardedMongoClient

            return ShardedMongoClient(self.kernel, self.network,
                                      self.mongo_shard_set, caller=caller,
                                      tracer=tracer, **kwargs)
        from ..docstore import MongoClient

        return MongoClient(self.kernel, self.network, self.mongo,
                           caller=caller, tracer=tracer, **kwargs)

    def client(self, tenant="default"):
        token = self.tokens.create_tenant(tenant)
        route_key = tenant if self.config.api_ring_routing else None
        return DlaasClient(self, token, route_key=route_key)

    def monitor(self, interval=5.0):
        """Start a :class:`ClusterMonitor` sampling utilization."""
        from .observability import ClusterMonitor

        return ClusterMonitor(self, interval=interval).start()

    def admin_report(self):
        """Process generator: cross-tenant platform rollup (admin view).

        Uses the document store's aggregation pipeline: jobs by tenant
        and status, plus total GPU-seconds from metering.
        """
        mongo = self.mongo_client("admin-report")
        jobs = yield from mongo.aggregate("jobs", [
            {"$group": {"_id": "$tenant",
                        "jobs": {"$count": 1},
                        "statuses": {"$push": "$status"}}},
            {"$sort": {"jobs": -1}},
        ])
        usage = yield from mongo.aggregate("metering", [
            {"$group": {"_id": "$tenant",
                        "gpu_seconds": {"$sum": "$gpu_seconds"},
                        "api_calls": {"$sum": "$api_calls_total"}}},
            {"$sort": {"gpu_seconds": -1}},
        ])
        return {"jobs_by_tenant": jobs, "usage_by_tenant": usage,
                "capacity": self.k8s.capacity_summary()}

    def seed_training_data(self, bucket, credentials, size_mb):
        """Create a bucket with a dataset object (what users stage to COS)."""
        if bucket not in self.object_store.bucket_names():
            self.object_store.create_bucket(bucket, credentials)
        self.object_store.put_object(bucket, "dataset", credentials,
                                     size=int(size_mb * 1_000_000))

    def ensure_results_bucket(self, bucket, credentials):
        if bucket not in self.object_store.bucket_names():
            self.object_store.create_bucket(bucket, credentials)

    def run_process(self, generator, limit=None):
        """Spawn a generator and run the simulation to its completion."""
        return self.kernel.run_until_complete(self.kernel.spawn(generator),
                                              limit=limit)

    def run_for(self, seconds):
        self.kernel.run(until=self.kernel.now + seconds)
