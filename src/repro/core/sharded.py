"""Sharded DLaaS deployment: platform cells on a partitioned kernel.

``PlatformConfig(shards=N)`` describes a deployment of N *cells*. Each
cell is a complete control plane — its own API/LCM replicas, etcd and
Mongo quorums, NFS, cluster slice — assembled as a stock
:class:`~repro.core.platform.DlaasPlatform` on a **private kernel
shard** (see :mod:`repro.sim.shard`), and owns a slice of the job
space. This is the FfDL-shaped scale-out of the paper's architecture:
nothing is shared between cells except explicit federation RPCs, which
cross the shard boundary as serialized single-copy messages with the
``shard_link_latency`` floor.

With ``shards=1`` nothing here is even constructed — ``DlaasPlatform``
is the single cell, bit-identical to every release before sharding
existed.

Determinism: the cell timelines plus the boundary-message log merge
into one fingerprint (:func:`repro.sim.shard.merged_digest`). The
merge is identical for any worker count — asserted by
``benchmarks/bench_perf.py`` and ``tests/property/
test_shard_determinism.py``.
"""

import hashlib
from dataclasses import replace

from ..grpcnet import Server
from ..sim import Kernel, ShardedKernel, merged_digest
from .platform import DlaasPlatform


def federation_address(cell_id):
    return f"dlaas-federation-{cell_id}"


def timeline_digest(platform, docs):
    """The canonical fingerprint of everything one platform decided:
    the full trace-record sequence, every job's status history, and the
    final simulated clock. Shared by the perf bench and the sharded
    merge so "bit-identical" means one thing everywhere."""
    trace = [(round(r.time, 9), r.component, r.kind) for r in
             platform.tracer.records]
    histories = [
        [(h["status"], round(h["time"], 9)) for h in doc["status_history"]]
        for doc in docs or ()
    ]
    blob = repr((trace, histories, round(platform.kernel.now, 9)))
    return hashlib.sha256(blob.encode()).hexdigest()


class FederationService:
    """A cell's inter-cell endpoint: peers report liveness and job
    completions here; everything received lands in the cell's trace
    (and therefore in the merged digest)."""

    def __init__(self, cell_id, platform):
        self.cell_id = cell_id
        self.platform = platform
        self.heartbeats = []
        self.announcements = []
        server = Server(platform.kernel, platform.network,
                        federation_address(cell_id))
        server.add_method("heartbeat", self._on_heartbeat)
        server.add_method("announce", self._on_announce)
        server.start()
        self.server = server

    def _on_heartbeat(self, request):
        self.heartbeats.append(
            (self.platform.kernel.now, request["cell"], request["completed"]))
        self.platform.tracer.emit(
            f"federation-{self.cell_id}", "federation-heartbeat",
            cell=request["cell"], completed=request["completed"])
        return {"ok": True}

    def _on_announce(self, request):
        jobs = tuple(request["jobs"])
        self.announcements.append(
            (self.platform.kernel.now, request["cell"], jobs))
        self.platform.tracer.emit(
            f"federation-{self.cell_id}", "federation-announce",
            cell=request["cell"], jobs=len(jobs))
        return {"ok": True, "known_cells": len(self.announcements)}


class PlatformShard:
    """One cell of a sharded deployment, plus the driver running its
    slice of the workload.

    Implements the shard-program protocol of :class:`repro.sim.shard.
    ShardedKernel`: ``kernel``/``port``/``done``/``settle_time()``/
    ``result()``. The ``driver`` is a module-level generator function
    ``driver(cell, *args)`` (module-level so multiprocessing workers
    can import it); it must leave the job documents in ``cell.docs``.
    """

    def __init__(self, slot, config, seed, driver, driver_args, settle):
        config = replace(config, shards=1)
        self.cell_id = slot.shard_id
        self.num_cells = slot.num_shards
        self.settle = settle
        # A solo cell keeps the plain seed: shards=1 must replay the
        # unsharded platform bit for bit. Real cells fork the seed so
        # no two cells run correlated RNG streams.
        cell_seed = seed if slot.num_shards == 1 else f"{seed}#cell{slot.shard_id}"
        self.kernel = Kernel(seed=cell_seed,
                             timer_cancellation=config.sim_fast_path)
        self.port = slot.bind(self.kernel)
        self.platform = DlaasPlatform(kernel=self.kernel, config=config)
        self.federation = None
        if self.num_cells > 1:
            network = self.platform.network
            network.bind_shard(self.port)
            self.federation = FederationService(self.cell_id, self.platform)
            for peer in self.peers:
                network.add_remote(federation_address(peer), peer)
        self.platform.start()
        self.docs = None
        self._driver_done_at = None
        self.driver_process = self.kernel.spawn(
            driver(self, *driver_args), name=f"cell-{self.cell_id}-driver")
        self.driver_process.add_callback(self._on_driver_done)

    @property
    def peers(self):
        return tuple(i for i in range(self.num_cells) if i != self.cell_id)

    def _on_driver_done(self, _process):
        self._driver_done_at = self.kernel.now

    # -- driver conveniences -------------------------------------------

    def broadcast(self, method, request):
        """Driver helper (generator): call ``method`` on every peer's
        federation endpoint, in cell order, awaiting each response."""
        responses = []
        for peer in self.peers:
            responses.append((yield self.platform.network.call(
                federation_address(peer), method, request,
                caller=federation_address(self.cell_id))))
        return responses

    def start_heartbeats(self, interval):
        """Periodic fire-and-forget liveness gossip to every peer until
        the driver finishes; steady cross-shard traffic that keeps the
        lookahead protocol honest under load."""
        if not self.peers or interval <= 0:
            return None

        def beat():
            network = self.platform.network
            while not self.driver_process.triggered:
                yield self.kernel.sleep(interval)
                if self.driver_process.triggered:
                    return
                completed = sum(
                    1 for d in (self.docs or ()) if d is not None)
                for peer in self.peers:
                    network.call(federation_address(peer), "heartbeat",
                                 {"cell": self.cell_id,
                                  "completed": completed},
                                 caller=federation_address(self.cell_id))

        return self.kernel.spawn(beat(), name=f"cell-{self.cell_id}-heartbeat")

    # -- shard-program protocol ----------------------------------------

    @property
    def done(self):
        return self.driver_process.triggered

    def settle_time(self):
        if self._driver_done_at is None:
            return None
        return self._driver_done_at + self.settle

    def result(self):
        docs = self.docs or []
        failure = None
        if self.driver_process.state == "failed":
            failure = repr(self.driver_process.exception)
        return {
            "cell": self.cell_id,
            "jobs": len(docs),
            "completed": sum(1 for d in docs
                             if d and d.get("status") == "COMPLETED"),
            "driver_done": None if self._driver_done_at is None
            else round(self._driver_done_at, 9),
            "now": round(self.kernel.now, 9),
            "events_processed": self.kernel.events_processed,
            "digest": timeline_digest(self.platform, docs),
            "driver_failed": failure,
            "heartbeats_received":
                len(self.federation.heartbeats) if self.federation else 0,
            "announcements_received":
                len(self.federation.announcements) if self.federation else 0,
            "boundary": self.port.counters(),
        }


def build_platform_shard(slot, config, seed, driver, driver_args, settle):
    """Module-level cell builder (multiprocessing workers import it)."""
    return PlatformShard(slot, config, seed, driver, driver_args, settle)


def cell_config(config, cells, cell_id):
    """The per-cell shape of an N-cell deployment: the GPU pool is
    divided across cells (remainder to the first ones); control-plane
    sizing stays as configured — every cell is a full control plane,
    that is the point of the sharded architecture."""
    base, remainder = divmod(config.gpu_nodes, cells)
    gpu_nodes = base + (1 if cell_id < remainder else 0)
    if gpu_nodes == 0:
        raise ValueError(
            f"{cells} cells over {config.gpu_nodes} GPU nodes leaves "
            f"cell {cell_id} empty")
    return replace(config, shards=1, gpu_nodes=gpu_nodes)


class ShardedPlatform:
    """An N-cell DLaaS deployment driven as one partitioned simulation.

    ``driver`` is the per-cell workload generator (see
    :class:`PlatformShard`); ``per_cell_args`` optionally overrides its
    arguments cell by cell. ``run()`` executes the whole federation —
    ``workers`` picks parallelism only and never changes the merged
    timeline.
    """

    def __init__(self, config, seed=0, driver=None, driver_args=(),
                 per_cell_args=None, settle=30.0):
        if driver is None:
            raise ValueError("ShardedPlatform needs a driver")
        cells = config.shards
        if cells < 1:
            raise ValueError(f"config.shards must be >= 1: {cells}")
        self.cells = cells
        self.lookahead = config.shard_link_latency
        self._specs = []
        for cell_id in range(cells):
            args = (per_cell_args[cell_id] if per_cell_args is not None
                    else driver_args)
            self._specs.append((
                build_platform_shard,
                (cell_config(config, cells, cell_id), seed, driver, args,
                 settle),
                {},
            ))
        self.sharded = None
        self.results = None
        self.digest = None

    def run(self, workers=None, executor="process", limit=None):
        sharded = ShardedKernel(self._specs, lookahead=self.lookahead,
                                workers=workers, executor=executor)
        sharded.run(limit=limit)
        self.sharded = sharded
        self.results = sharded.results
        self.digest = merged_digest(
            [r["digest"] for r in self.results], sharded.message_digest)
        return self

    @property
    def stats(self):
        return self.sharded.stats if self.sharded else None
