"""Component crash and gray-fault injection for the dependability
experiments.

The paper's Fig. 4 methodology: "manually crashing various components
(using the kubectl tool of K8S) and measuring time taken for the
component to restart." :class:`ComponentCrasher` provides those
crashes; recovery is observed through ``component-ready`` trace events
each component emits when it starts serving again.

:class:`GrayFailureInjector` covers the failure class the paper never
tested — faults that degrade a component *without* failing its health
probe: slow endpoints, asymmetric one-way partitions, probabilistic
packet loss/duplication, and disk stalls on etcd/mongo members. Each
helper maps a platform-level target to the fabric/member primitive and
routes the injection through ``platform.faults`` so the counter
metric, the ``FaultInjected`` event and the bounded injection ring all
record it.
"""

from . import layout
from .errors import DlaasError


class ComponentCrasher:
    """kubectl-driven crash injection against a running platform."""

    def __init__(self, platform):
        self.platform = platform
        self.kubectl = platform.k8s.kubectl

    def _one_pod(self, selector, description):
        pods = [p for p in self.kubectl.get_pods(selector=selector)
                if not p.is_terminal() and not p.deletion_requested]
        if not pods:
            raise DlaasError(f"no live pod for {description} ({selector})")
        return pods[0]

    # ------------------------------------------------------------------
    # Fig. 4's five components
    # ------------------------------------------------------------------

    def crash_api(self):
        """Kill one API pod; returns (crash_time, pod_name)."""
        pod = self._one_pod({"app": "api"}, "API")
        when = self.platform.kernel.now
        self.kubectl.delete_pod(pod.metadata.name, force=True)
        return when, pod.metadata.name

    def crash_lcm(self):
        pod = self._one_pod({"app": "lcm"}, "LCM")
        when = self.platform.kernel.now
        self.kubectl.delete_pod(pod.metadata.name, force=True)
        return when, pod.metadata.name

    def crash_guardian(self, job_id):
        pod = self._one_pod({"dlaas-job": job_id, "role": "guardian"},
                            f"guardian of {job_id}")
        when = self.platform.kernel.now
        self.kubectl.delete_pod(pod.metadata.name, force=True)
        return when, pod.metadata.name

    def crash_helper(self, job_id):
        pod = self._one_pod({"dlaas-job": job_id, "role": "helper"},
                            f"helper of {job_id}")
        when = self.platform.kernel.now
        self.kubectl.delete_pod(pod.metadata.name, force=True)
        return when, pod.metadata.name

    def crash_controller_container(self, job_id):
        """In-place controller container crash (restart policy applies)."""
        pod = self._one_pod({"dlaas-job": job_id, "role": "helper"},
                            f"helper of {job_id}")
        when = self.platform.kernel.now
        self.kubectl.crash_container(pod.metadata.name, "controller")
        return when, pod.metadata.name

    def crash_learner(self, job_id, ordinal=0):
        """Kill a learner pod (StatefulSet recreates it by name)."""
        name = layout.learner_pod_name(job_id, ordinal)
        when = self.platform.kernel.now
        self.kubectl.delete_pod(name, force=True)
        return when, name

    def crash_learner_container(self, job_id, ordinal=0):
        """In-place learner container crash (kubelet restarts it)."""
        name = layout.learner_pod_name(job_id, ordinal)
        when = self.platform.kernel.now
        self.kubectl.crash_container(name, "learner")
        return when, name

    def crash_node_of(self, job_id, ordinal=0):
        """Machine failure under a learner (paper §III.h)."""
        pod = self.kubectl.get_pod(layout.learner_pod_name(job_id, ordinal))
        when = self.platform.kernel.now
        self.platform.k8s.crash_node(pod.node_name)
        return when, pod.node_name

    # ------------------------------------------------------------------
    # Recovery observation
    # ------------------------------------------------------------------

    def recovery_time(self, component, crash_time, **match):
        """Seconds from ``crash_time`` to the component's next ready event.

        ``component`` is the tracer component name (``api``, ``lcm``,
        ``guardian``, ``controller``, ``learner-<n>``); extra kwargs
        filter on event fields (e.g. ``job=...``).
        """
        for record in self.platform.tracer.query(component=component,
                                                 kind="component-ready",
                                                 since=crash_time, **match):
            if record.time > crash_time:
                return record.time - crash_time
        return None


class GrayFailureInjector:
    """Gray faults against a running platform: degrade, don't crash.

    Every injection goes through ``platform.faults.inject_gray`` so the
    ``fault_injected_total{target,kind}`` counter, the ``FaultInjected``
    Warning event and the bounded injection ring record it; with a
    ``duration`` the fault reverts itself on schedule. Targets keep
    passing their health probes throughout — detection is the
    differential detector's job, not the liveness probes'.
    """

    def __init__(self, platform):
        self.platform = platform
        self.network = platform.network
        self.faults = platform.faults
        # Stacked disk stalls: holder (member/node) -> list of active
        # delays; the effective stall is their sum, recomputed on every
        # apply/revert so overlapping windows unwind cleanly.
        self._stall_layers = {}

    # ------------------------------------------------------------------
    # Target discovery
    # ------------------------------------------------------------------

    def api_endpoints(self):
        """Live API replica addresses, balancer order."""
        return list(self.platform.api_balancer.endpoints)

    def mongo_secondaries(self):
        primary = self.platform.mongo.primary_id()
        return [m for m in self.platform.mongo.member_ids
                if m != primary and self.platform.mongo.member(m).alive]

    def etcd_followers(self):
        leader = self.platform.etcd.leader()
        leader_id = leader.node_id if leader is not None else None
        return [n for n in self.platform.etcd.node_ids if n != leader_id]

    # ------------------------------------------------------------------
    # The four gray fault kinds
    # ------------------------------------------------------------------

    def slow_endpoint(self, address, extra_latency, duration=None):
        """Every message to ``address`` pays ``extra_latency`` seconds.

        The revert removes exactly the impairment layer this injection
        pushed, so overlapping injections against the same endpoint
        stack and unwind independently (in any revert order)."""
        layer = []

        def apply():
            layer.append(self.network.degrade(address,
                                              extra_latency=extra_latency))

        def revert():
            self.network.restore(address, layer.pop())

        self.faults.inject_gray(address, "slow", apply=apply, revert=revert,
                                duration=duration)
        return address

    def oneway_partition(self, src, dst, duration=None):
        """Block the ``src -> dst`` direction only."""
        self.faults.inject_gray(
            dst, "partition",
            apply=lambda: self.network.partition_oneway(src, dst),
            revert=lambda: self.network.heal_oneway(src, dst),
            duration=duration,
            reason=f"oneway:{src}")
        return dst

    def lossy_endpoint(self, address, loss=0.0, duplicate=0.0, duration=None):
        """Probabilistically drop and/or duplicate messages to ``address``.

        Stacks with other impairments on the endpoint; the revert
        removes only this injection's layer."""
        layer = []

        def apply():
            layer.append(self.network.degrade(address, loss=loss,
                                              duplicate=duplicate))

        def revert():
            self.network.restore(address, layer.pop())

        self.faults.inject_gray(address, "loss" if loss else "duplicate",
                                apply=apply, revert=revert, duration=duration)
        return address

    def _stall(self, holder, delay):
        layers = self._stall_layers.setdefault(holder, [])
        layers.append(delay)
        holder.disk_stall = sum(layers)

    def _unstall(self, holder, delay):
        layers = self._stall_layers.get(holder)
        if not layers:
            return
        if delay in layers:
            layers.remove(delay)
        holder.disk_stall = sum(layers)
        if not layers:
            del self._stall_layers[holder]

    def disk_stall_mongo(self, member_id, delay, duration=None):
        """Every write op on the member hangs ``delay`` s in "fsync".

        Keep ``delay`` under the replica set's 0.25 s replicate
        deadline or the stall degenerates into visible write errors.
        Overlapping stalls on the same member add up; each revert
        subtracts only its own delay.
        """
        member = self.platform.mongo.member(member_id)
        self.faults.inject_gray(
            member_id, "disk-stall",
            apply=lambda: self._stall(member, delay),
            revert=lambda: self._unstall(member, delay),
            duration=duration)
        return member_id

    def disk_stall_etcd(self, node_id, delay, duration=None):
        """Every log-carrying append on the node hangs ``delay`` s.

        Keep ``delay`` under the Raft rpc_timeout (0.06 s default) so
        the leader's appends still succeed — slowly — instead of
        timing out into crash-style errors. Overlapping stalls add up;
        each revert subtracts only its own delay.
        """
        node = self.platform.etcd.node(node_id)
        self.faults.inject_gray(
            node_id, "disk-stall",
            apply=lambda: self._stall(node, delay),
            revert=lambda: self._unstall(node, delay),
            duration=duration)
        return node_id
