"""Component crash injection for the dependability experiments.

The paper's Fig. 4 methodology: "manually crashing various components
(using the kubectl tool of K8S) and measuring time taken for the
component to restart." These helpers locate each component's pod and
crash it; recovery is observed through ``component-ready`` trace events
each component emits when it starts serving again.
"""

from . import layout
from .errors import DlaasError


class ComponentCrasher:
    """kubectl-driven crash injection against a running platform."""

    def __init__(self, platform):
        self.platform = platform
        self.kubectl = platform.k8s.kubectl

    def _one_pod(self, selector, description):
        pods = [p for p in self.kubectl.get_pods(selector=selector)
                if not p.is_terminal() and not p.deletion_requested]
        if not pods:
            raise DlaasError(f"no live pod for {description} ({selector})")
        return pods[0]

    # ------------------------------------------------------------------
    # Fig. 4's five components
    # ------------------------------------------------------------------

    def crash_api(self):
        """Kill one API pod; returns (crash_time, pod_name)."""
        pod = self._one_pod({"app": "api"}, "API")
        when = self.platform.kernel.now
        self.kubectl.delete_pod(pod.metadata.name, force=True)
        return when, pod.metadata.name

    def crash_lcm(self):
        pod = self._one_pod({"app": "lcm"}, "LCM")
        when = self.platform.kernel.now
        self.kubectl.delete_pod(pod.metadata.name, force=True)
        return when, pod.metadata.name

    def crash_guardian(self, job_id):
        pod = self._one_pod({"dlaas-job": job_id, "role": "guardian"},
                            f"guardian of {job_id}")
        when = self.platform.kernel.now
        self.kubectl.delete_pod(pod.metadata.name, force=True)
        return when, pod.metadata.name

    def crash_helper(self, job_id):
        pod = self._one_pod({"dlaas-job": job_id, "role": "helper"},
                            f"helper of {job_id}")
        when = self.platform.kernel.now
        self.kubectl.delete_pod(pod.metadata.name, force=True)
        return when, pod.metadata.name

    def crash_controller_container(self, job_id):
        """In-place controller container crash (restart policy applies)."""
        pod = self._one_pod({"dlaas-job": job_id, "role": "helper"},
                            f"helper of {job_id}")
        when = self.platform.kernel.now
        self.kubectl.crash_container(pod.metadata.name, "controller")
        return when, pod.metadata.name

    def crash_learner(self, job_id, ordinal=0):
        """Kill a learner pod (StatefulSet recreates it by name)."""
        name = layout.learner_pod_name(job_id, ordinal)
        when = self.platform.kernel.now
        self.kubectl.delete_pod(name, force=True)
        return when, name

    def crash_learner_container(self, job_id, ordinal=0):
        """In-place learner container crash (kubelet restarts it)."""
        name = layout.learner_pod_name(job_id, ordinal)
        when = self.platform.kernel.now
        self.kubectl.crash_container(name, "learner")
        return when, name

    def crash_node_of(self, job_id, ordinal=0):
        """Machine failure under a learner (paper §III.h)."""
        pod = self.kubectl.get_pod(layout.learner_pod_name(job_id, ordinal))
        when = self.platform.kernel.now
        self.platform.k8s.crash_node(pod.node_name)
        return when, pod.node_name

    # ------------------------------------------------------------------
    # Recovery observation
    # ------------------------------------------------------------------

    def recovery_time(self, component, crash_time, **match):
        """Seconds from ``crash_time`` to the component's next ready event.

        ``component`` is the tracer component name (``api``, ``lcm``,
        ``guardian``, ``controller``, ``learner-<n>``); extra kwargs
        filter on event fields (e.g. ``job=...``).
        """
        for record in self.platform.tracer.query(component=component,
                                                 kind="component-ready",
                                                 since=crash_time, **match):
            if record.time > crash_time:
                return record.time - crash_time
        return None
