"""The DL job lifecycle state machine.

Users rely on these statuses (with timestamps) for profiling and
debugging, so updates must be dependable and ordered (paper §II).
Transitions are strictly validated: a job can only move forward along
the lifecycle, or sideways into FAILED/HALTED.
"""

from .errors import IllegalTransition

QUEUED = "QUEUED"
DEPLOYING = "DEPLOYING"
DOWNLOADING = "DOWNLOADING"
PROCESSING = "PROCESSING"
STORING = "STORING"
COMPLETED = "COMPLETED"
FAILED = "FAILED"
HALTED = "HALTED"

ALL_STATUSES = (QUEUED, DEPLOYING, DOWNLOADING, PROCESSING, STORING,
                COMPLETED, FAILED, HALTED)

TERMINAL_STATUSES = frozenset({COMPLETED, FAILED, HALTED})

# Forward edges of the lifecycle. FAILED/HALTED are reachable from any
# non-terminal state; re-deployment after a crash may also legally move
# a job *backwards* from DOWNLOADING/PROCESSING to DEPLOYING (the
# Guardian rolled back a partial deployment and is trying again).
_TRANSITIONS = {
    QUEUED: {DEPLOYING},
    DEPLOYING: {DOWNLOADING, PROCESSING},
    DOWNLOADING: {PROCESSING, DEPLOYING},
    PROCESSING: {STORING, COMPLETED, DEPLOYING},
    STORING: {COMPLETED},
    COMPLETED: set(),
    FAILED: set(),
    HALTED: set(),
}

_RANK = {status: index for index, status in enumerate(ALL_STATUSES)}


def validate_transition(current, requested):
    """Raise :class:`IllegalTransition` unless current -> requested is legal."""
    if current == requested:
        return
    if current in TERMINAL_STATUSES:
        raise IllegalTransition(current, requested)
    if requested in (FAILED, HALTED):
        return
    if requested not in _TRANSITIONS.get(current, set()):
        raise IllegalTransition(current, requested)


def is_terminal(status):
    return status in TERMINAL_STATUSES


# How each terminal status is reported to the platform event log: a
# failed job is a Warning on the operator's dashboard, completion and
# user-requested halts are routine.
TERMINAL_EVENT_FOR = {
    COMPLETED: ("Normal", "JobCompleted"),
    FAILED: ("Warning", "JobFailed"),
    HALTED: ("Normal", "JobHalted"),
}


def aggregate_learner_statuses(statuses):
    """Combine per-learner statuses into a job-level status (§III.f).

    The Guardian reads each learner's status from ETCD and records the
    overall job status in MongoDB. A job is only as far along as its
    slowest learner; any failed learner fails the aggregate.
    """
    if not statuses:
        return DEPLOYING
    if any(s == FAILED for s in statuses):
        return FAILED
    if any(s == HALTED for s in statuses):
        return HALTED
    return min(statuses, key=lambda s: _RANK[s])


class StatusHistory:
    """An ordered status trail with timestamps (what users see)."""

    def __init__(self, initial=QUEUED, time=0.0):
        self.entries = [(initial, time)]

    @property
    def current(self):
        return self.entries[-1][0]

    def advance(self, status, time):
        """Record a transition (validated); no-op on same status."""
        if status == self.current:
            return False
        validate_transition(self.current, status)
        self.entries.append((status, time))
        return True

    def time_in(self, status):
        """Total time spent in ``status`` (until the next transition)."""
        total = 0.0
        for (state, start), (_next_state, end) in zip(self.entries, self.entries[1:]):
            if state == status:
                total += end - start
        return total

    def as_documents(self):
        return [{"status": status, "time": time} for status, time in self.entries]
