"""Kubernetes-style typed platform events (FfDL's operational record).

Every notable platform occurrence — deploy retries and rollbacks,
component crashes and restarts, leader elections, scheduling failures,
firing alerts — is recorded as a typed event (``Normal``/``Warning``)
against an involved object. Identical repeats *deduplicate*: the
existing record's count and last-seen time advance instead of the log
growing one entry per repeat, so a crash-looping pod costs one record,
not thousands.

The recorder is pure in-memory bookkeeping on the simulation kernel's
clock; it never issues RPCs, so recording (or not recording) events
cannot perturb the simulated timeline. Persistence to the docstore is
a separate concern (``repro.monitoring.stack.EventFlusher``), as is
querying over REST (``GET /events``, ``GET /jobs/{id}/events``).

``reason`` strings are a closed, static vocabulary: CamelCase tokens
registered below (or via :meth:`EventRecorder.register_reason`).
Free-form detail belongs in ``message``. The AST lint
``scripts/lint_event_reasons.py`` enforces this at check time, and the
recorder enforces it at runtime.
"""

import re

EVENT_NORMAL = "Normal"
EVENT_WARNING = "Warning"

_REASON_RE = re.compile(r"^[A-Z][A-Za-z0-9]*$")

# The registered reason vocabulary. scripts/lint_event_reasons.py
# parses this literal, so keep it a plain frozenset of string literals.
REASONS = frozenset({
    # Alerting engine (repro.monitoring.alerts)
    "AlertResolved",
    "ApiDown",
    "LcmDown",
    "GuardianDown",
    "HelperDown",
    "LearnerDown",
    "EtcdDegraded",
    "MongoDegraded",
    "NfsDown",
    "DeployFailureRatioHigh",
    "RpcLatencyHigh",
    "WorkqueueBacklog",
    # Guardian deploy / monitor / finish
    "DeployRetry",
    "DeployRollback",
    "DeployAttemptsExhausted",
    "Deployed",
    "JobCompleted",
    "JobFailed",
    "JobHalted",
    "LearnerStalled",
    # LCM
    "GuardianCreated",
    "GuardianCollected",
    # Partitioned LCM pool (repro.core.partitions)
    "SliceAssigned",
    "SliceAdopted",
    # Admission control (repro.core.admission)
    "TenantThrottled",
    "AdmissionSaturated",
    # Core-service pods
    "ComponentReady",
    "ComponentStopped",
    "ComponentCrashed",
    # Helper / learner exit paths (controller reports)
    "LearnerCompleted",
    "LearnerFailed",
    "DataStaged",
    "ResultsStored",
    # Cluster layer
    "Unschedulable",
    "Preempted",
    "ContainerRestarted",
    # Serving (repro.serving)
    "ServingModelCreated",
    "ServingModelDeleted",
    "ServingScaleUp",
    "ServingScaleDown",
    "ServingSLOBreach",
    "ServingDown",
    "BatchShardRequeued",
    "BatchInferCompleted",
    "BatchInferStalled",
    # Gray failures (repro.sim.faults / repro.monitoring.differential)
    "FaultInjected",
    "GrayFailureSlow",
    "GrayFailurePartition",
    "GrayFailureDiskStall",
    # Consistency audit (repro.audit)
    "ConsistencyViolation",
    # Substrates
    "LeaderElected",
    "MongoMemberDown",
    "MongoMemberUp",
    "NfsOutage",
    "NfsRestored",
})


class PlatformEvent:
    """One (deduplicated) event record."""

    __slots__ = ("type", "reason", "kind", "name", "message", "job",
                 "count", "first_time", "last_time", "seq")

    def __init__(self, type, reason, kind, name, message, job, time, seq):
        self.type = type
        self.reason = reason
        self.kind = kind
        self.name = name
        self.message = message
        self.job = job
        self.count = 1
        self.first_time = time
        self.last_time = time
        self.seq = seq

    @property
    def key(self):
        return (self.type, self.reason, self.kind, self.name)

    def to_doc(self):
        """Plain-dict form for docstore persistence and REST responses."""
        return {
            "event_key": "/".join(self.key),
            "type": self.type,
            "reason": self.reason,
            "kind": self.kind,
            "name": self.name,
            "message": self.message,
            "job": self.job,
            "count": self.count,
            "first_time": self.first_time,
            "last_time": self.last_time,
        }

    def __repr__(self):
        return (f"<{self.type} {self.reason} {self.kind}/{self.name} "
                f"x{self.count} @{self.last_time:.2f}>")


class EventRecorder:
    """In-memory event log with Kubernetes-style dedup."""

    def __init__(self, kernel, metrics=None):
        self.kernel = kernel
        self._events = []  # insertion order
        self._by_key = {}
        self._reasons = set(REASONS)
        self._dirty = {}  # key -> event, touched since last drain
        self._seq = 0
        if metrics is not None:
            self._m_events = metrics.counter(
                "platform_events_total", ("type", "reason"),
                help="Platform events emitted, including deduplicated repeats")
        else:
            self._m_events = None

    def register_reason(self, reason):
        """Admit a reason outside the built-in vocabulary (custom alert
        rules, tests). Still must be a static CamelCase token."""
        if not _REASON_RE.match(reason):
            raise ValueError(
                f"invalid event reason {reason!r}: reasons are static "
                "CamelCase tokens; put detail in the message")
        self._reasons.add(reason)
        return reason

    def emit_event(self, type, reason, kind, name, message="", job=None):
        """Record one event; repeats of the same (type, reason, kind,
        name) bump the existing record's count instead of appending."""
        if type not in (EVENT_NORMAL, EVENT_WARNING):
            raise ValueError(f"event type must be Normal or Warning, got {type!r}")
        if reason not in self._reasons:
            if not _REASON_RE.match(reason):
                raise ValueError(
                    f"invalid event reason {reason!r}: reasons are static "
                    "CamelCase tokens; put detail in the message")
            raise ValueError(
                f"unregistered event reason {reason!r}; add it to "
                "repro.core.events.REASONS or call register_reason()")
        if self._m_events is not None:
            self._m_events.labels(type=type, reason=reason).inc()
        key = (type, reason, kind, name)
        event = self._by_key.get(key)
        if event is not None:
            event.count += 1
            event.last_time = self.kernel.now
            event.message = message or event.message
            self._dirty[key] = event
            return event
        self._seq += 1
        event = PlatformEvent(type, reason, kind, name, message, job,
                              self.kernel.now, self._seq)
        self._events.append(event)
        self._by_key[key] = event
        self._dirty[key] = event
        return event

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def events(self, job=None, kind=None, name=None, reason=None, type=None):
        """Events in first-seen order, filtered by any combination."""
        out = []
        for event in self._events:
            if job is not None and event.job != job:
                continue
            if kind is not None and event.kind != kind:
                continue
            if name is not None and event.name != name:
                continue
            if reason is not None and event.reason != reason:
                continue
            if type is not None and event.type != type:
                continue
            out.append(event)
        return out

    def warnings(self, **filters):
        return self.events(type=EVENT_WARNING, **filters)

    def get(self, type, reason, kind, name):
        return self._by_key.get((type, reason, kind, name))

    def __len__(self):
        return len(self._events)

    # ------------------------------------------------------------------
    # Persistence hook (drained by the monitoring stack's flusher)
    # ------------------------------------------------------------------

    def drain_dirty(self):
        """Events created or re-counted since the last drain."""
        dirty = sorted(self._dirty.values(), key=lambda e: e.seq)
        self._dirty = {}
        return dirty
