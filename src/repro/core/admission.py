"""Admission control at the API tier (paper §III.c, multi-tenancy).

Three enforcement layers sit in front of job submission, all applied
before any cluster resources are touched:

1. **Rate limiting** — the existing per-tenant token bucket
   (:class:`~repro.core.auth.RateLimiter`), now instrumented: every
   request increments ``api_requests_total{tenant,method}`` and every
   throttle increments ``admission_rejected_total{tenant,reason="rate"}``.

2. **Concurrent-job quotas** — with ``tenant_quota_jobs > 0`` a tenant
   may hold at most that many non-terminal jobs. The authoritative
   count lives in MongoDB (indexed ``tenant`` query); short-lived
   in-memory *reservations* cover the window between admission and the
   durable insert so a burst of simultaneous submissions cannot slip
   past the quota between counts. Reservations are per-API-instance:
   with consistent-hash routing (``api_ring_routing``) a tenant's
   submissions land on one replica, making the local view effectively
   global; without it, transient over-admission is bounded by one
   in-flight submission per replica.

3. **Weighted fair queueing** — with ``admission_queue_limit > 0`` an
   over-quota submission waits (bounded by ``admission_max_wait``,
   which must stay under the client RPC deadline) instead of failing
   fast. A deficit-round-robin pump drains waiters as quota capacity
   frees, weighted by ``tenant_weights`` (default weight 1.0), so a
   heavy tenant queueing hundreds of submissions cannot starve a
   light tenant queueing one.

Digest neutrality: with the default config (quotas off) admission adds
*zero* kernel events — ``admit_submission`` returns without yielding
and no pump process ever starts — so default-config timelines are
bit-identical to the pre-admission platform. Metric increments and
event-recorder emissions are digest-neutral by construction.
"""

from collections import deque

from ..sim import AnyOf
from .errors import QuotaExceeded, RateLimited
from .states import TERMINAL_STATUSES


class AdmissionController:
    """Per-API-instance admission: rate, quota, and fair queueing."""

    def __init__(self, api):
        platform = api.platform
        config = platform.config
        self.platform = platform
        self.kernel = platform.kernel
        self.api = api
        self.mongo = api.mongo
        self.quota = config.tenant_quota_jobs
        self.queue_limit = config.admission_queue_limit
        self.max_wait = config.admission_max_wait
        self.pump_interval = config.admission_pump_interval
        self.weights = dict(config.tenant_weights or {})
        metrics = platform.metrics
        self._m_requests = metrics.counter(
            "api_requests_total", ("tenant", "method"),
            help="API requests received, by tenant and method")
        self._m_rejected = metrics.counter(
            "admission_rejected_total", ("tenant", "reason"),
            help="submissions rejected at admission "
                 "(reason: rate|quota|queue_full|queue_timeout)")
        self._g_queue = metrics.gauge(
            "admission_queue_depth", ("tenant",),
            help="over-quota submissions waiting in the admission queue")
        self._reserved = {}   # tenant -> admitted-but-not-yet-inserted count
        self._queues = {}     # tenant -> deque[Event] of parked submissions
        self._deficit = {}    # tenant -> accumulated DRR credit
        self._pump = None     # lazily spawned, exits when queues drain

    # ------------------------------------------------------------------
    # layer 1: every API call
    # ------------------------------------------------------------------

    def check_call(self, tenant, method):
        """Synchronous per-request gate: count it, then rate-limit it."""
        self._m_requests.labels(tenant=tenant, method=method).inc()
        try:
            self.api.ratelimiter.check(tenant)
        except RateLimited:
            self._m_rejected.labels(tenant=tenant, reason="rate").inc()
            self.platform.events.emit_event(
                "Warning", "TenantThrottled", "Tenant", tenant,
                message=f"tenant {tenant} over its request rate limit")
            raise

    # ------------------------------------------------------------------
    # layers 2+3: submission quota with fair queueing
    # ------------------------------------------------------------------

    def admit_submission(self, tenant):
        """Admit one job submission or raise :class:`QuotaExceeded`.

        On success one reservation is held for the tenant; the caller
        MUST :meth:`settle` it once the job document is durable (or the
        submission failed), or the slot leaks until pod restart.
        """
        if self.quota <= 0:
            return  # quotas disabled: no yields, digest-identical
        while True:
            if (yield from self._try_reserve(tenant)):
                return
            if self.queue_limit <= 0:
                self._reject(tenant, "quota",
                             f"tenant {tenant} at its quota of "
                             f"{self.quota} concurrent jobs")
            queue = self._queues.setdefault(tenant, deque())
            if len(queue) >= self.queue_limit:
                self._reject(tenant, "queue_full",
                             f"tenant {tenant} admission queue full "
                             f"({self.queue_limit} waiting)")
            waiter = self.kernel.event(f"admission:{tenant}")
            queue.append(waiter)
            self._g_queue.labels(tenant=tenant).set(len(queue))
            self._ensure_pump()
            timer = self.kernel.sleep(self.max_wait)
            yield AnyOf(self.kernel, (waiter, timer))
            if waiter.triggered:
                # Granted — the pump reserved on our behalf (even if the
                # timer fired in the same instant, the slot is ours).
                if not timer.triggered:
                    timer.cancel()
                return
            # Timed out while still parked: withdraw and reject.
            try:
                queue.remove(waiter)
            except ValueError:
                pass
            waiter.cancel()
            self._g_queue.labels(tenant=tenant).set(len(queue))
            self._reject(tenant, "queue_timeout",
                         f"tenant {tenant} submission waited "
                         f"{self.max_wait}s without a quota slot")

    def settle(self, tenant):
        """Release one reservation (job durable, or submission failed)."""
        held = self._reserved.get(tenant, 0)
        if held <= 1:
            self._reserved.pop(tenant, None)
        else:
            self._reserved[tenant] = held - 1

    def queue_depth(self, tenant):
        return len(self._queues.get(tenant, ()))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _try_reserve(self, tenant):
        """Count active jobs; reserve a slot if under quota.

        The reservation read-modify-write is synchronous after the
        count resumes, so concurrent submissions serialize correctly:
        whoever resumes first takes the slot, later ones see it held.
        """
        active = yield from self.mongo.count("jobs", {
            "tenant": tenant,
            "status": {"$nin": sorted(TERMINAL_STATUSES)},
        })
        held = self._reserved.get(tenant, 0)
        if active + held >= self.quota:
            return False
        self._reserved[tenant] = held + 1
        return True

    def _reject(self, tenant, reason, message):
        self._m_rejected.labels(tenant=tenant, reason=reason).inc()
        self.platform.events.emit_event(
            "Warning", "TenantThrottled", "Tenant", tenant, message=message)
        raise QuotaExceeded(message, reason=reason)

    def _ensure_pump(self):
        if self._pump is None:
            self._pump = self.kernel.spawn(
                self._pump_loop(), name=f"admission-pump:{self.api.address}")

    def _pump_loop(self):
        # Lives only while submissions are parked: spawned on first
        # enqueue, exits when every queue drains (the emptiness check
        # and the return are atomic — no yield between them — so a
        # racing enqueue either sees the live pump or respawns one).
        try:
            while True:
                yield self.kernel.sleep(self.pump_interval)
                yield from self._grant_round()
                if not any(self._queues.values()):
                    return
        finally:
            self._pump = None

    def _grant_round(self):
        """One deficit-round-robin pass over tenants with waiters.

        Each pass a waiting tenant earns credit equal to its weight;
        grants spend one credit each and are capped by the tenant's
        free quota, so capacity freed while several tenants queue is
        split by weight rather than won by whoever queues hardest.
        """
        waiting = sorted(t for t, q in self._queues.items() if q)
        for tenant in waiting:
            self._deficit[tenant] = (self._deficit.get(tenant, 0.0)
                                     + self.weights.get(tenant, 1.0))
        for tenant in waiting:
            queue = self._queues.get(tenant)
            if not queue:
                continue
            active = yield from self.mongo.count("jobs", {
                "tenant": tenant,
                "status": {"$nin": sorted(TERMINAL_STATUSES)},
            })
            free = self.quota - active - self._reserved.get(tenant, 0)
            grants = min(len(queue), max(0, free),
                         int(self._deficit.get(tenant, 0.0)))
            for _ in range(grants):
                waiter = queue.popleft()
                # Reserve on the waiter's behalf *at grant time* so two
                # granted waiters cannot double-spend one free slot.
                self._reserved[tenant] = self._reserved.get(tenant, 0) + 1
                self._deficit[tenant] -= 1.0
                waiter.succeed()
            if grants:
                self._g_queue.labels(tenant=tenant).set(len(queue))
            if not queue:
                # Idle tenants must not bank credit for later bursts.
                self._deficit.pop(tenant, None)
