"""Shared naming conventions: NFS paths, ETCD keys, resource names.

Every component (Guardian, controller, learners, helpers, LCM) reads
and writes the same layout; keeping it in one module keeps them honest.
"""

# ---------------------------------------------------------------------------
# Kubernetes resource names, per job
# ---------------------------------------------------------------------------


def guardian_job_name(job_id):
    return f"guardian-{job_id}"


def learner_set_name(job_id):
    return f"{job_id}-learner"


def helper_deployment_name(job_id):
    return f"{job_id}-helper"


def pvc_name(job_id):
    return f"{job_id}-vol"


def network_policy_name(job_id):
    return f"{job_id}-isolation"


def learner_pod_name(job_id, ordinal):
    return f"{learner_set_name(job_id)}-{ordinal}"


# ---------------------------------------------------------------------------
# Shared NFS volume layout, per job
# ---------------------------------------------------------------------------

DATA_READY = "/data/READY"
DATA_DIR = "/data"
CONTROL_STORE_TRIGGER = "/control/store-results.trigger"
CONTROL_STORE_DONE = "/control/store-results.done"
COMBINED_LOG = "/logs/combined.log"
RESULTS_DIR = "/results"


def learner_dir(ordinal):
    return f"/learners/learner-{ordinal}"


def learner_status_file(ordinal):
    return f"{learner_dir(ordinal)}/status"


def learner_exit_file(ordinal):
    return f"{learner_dir(ordinal)}/exit-code"


def learner_log_file(ordinal):
    return f"{learner_dir(ordinal)}/training.log"


# ---------------------------------------------------------------------------
# ETCD key layout
# ---------------------------------------------------------------------------


def job_prefix(job_id):
    return f"jobs/{job_id}/"


def learner_status_key(job_id, ordinal):
    return f"jobs/{job_id}/learners/learner-{ordinal}/status"


def learner_status_prefix(job_id):
    return f"jobs/{job_id}/learners/"


def helper_status_key(job_id, helper):
    return f"jobs/{job_id}/helper/{helper}"


def halt_key(job_id):
    return f"jobs/{job_id}/halt"


def guardian_prefix(job_id):
    return f"guardian/{job_id}/"


def guardian_attempt_key(job_id):
    return f"guardian/{job_id}/attempt"


def guardian_complete_key(job_id):
    return f"guardian/{job_id}/deploy-complete"


def guardian_deployed_key(job_id, resource):
    return f"guardian/{job_id}/deployed/{resource}"


def guardian_deployed_prefix(job_id):
    return f"guardian/{job_id}/deployed/"
