"""Event-driven waits on the job's shared NFS volume.

The paper's intra-job coordination (§III.e) is file-based: learners and
helpers signal each other by writing files on the shared volume. These
helpers replace the old ``sleep(poll)`` spin-waits with NFS change
subscriptions: the waiter wakes the instant the file it cares about is
written. There is no missed-write window — the condition check and the
subscription happen in the same simulated instant, and nothing can
interleave in the DES kernel.
"""


def wait_for_condition(ctx, mount, prefix, cond):
    """Block until ``cond()`` holds or the container stops.

    Wakes on any change under ``prefix``; returns True when the
    condition was met, False when the container is stopping.
    """
    kernel = ctx.kernel
    while not cond():
        if ctx.stopping:
            return False
        wakeup = kernel.event(name=f"nfs-wait:{prefix}")
        subscription = mount.subscribe(
            prefix, lambda _path: None if wakeup.triggered else wakeup.succeed()
        )
        try:
            yield kernel.any_of([wakeup, ctx.stop_event])
        finally:
            subscription.cancel()
    return True


def wait_for_file(ctx, mount, path):
    """Block until ``path`` exists or the container stops."""
    result = yield from wait_for_condition(
        ctx, mount, path, lambda: mount.exists(path)
    )
    return result
