"""Platform observability: utilization and job-state time series.

Operating a shared GPU platform (the paper's economic motivation, §I)
requires knowing how well the expensive hardware is utilized. The
monitor samples cluster and job state on a fixed cadence into in-memory
time series and produces operator summaries — the simulated analogue of
a Prometheus + Grafana pair.
"""


class ClusterMonitor:
    """Periodic sampler of GPU utilization and job states."""

    def __init__(self, platform, interval=5.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.platform = platform
        self.kernel = platform.kernel
        self.interval = interval
        self.samples = []
        self._proc = None
        self.running = False
        # Each sample also updates the shared registry so the REST
        # /metrics endpoint exposes the same numbers operators would
        # scrape from a real cluster.
        metrics = platform.metrics
        self._g_gpus_total = metrics.gauge(
            "cluster_gpus_total", help="GPUs in the cluster")
        self._g_gpus_allocated = metrics.gauge(
            "cluster_gpus_allocated", help="GPUs currently allocated to pods")
        self._g_nodes = metrics.gauge(
            "cluster_nodes", help="Schedulable nodes")
        self._g_pods = metrics.gauge(
            "cluster_pods", ("phase",), help="Pods by phase")
        self._g_jobs = metrics.gauge(
            "cluster_jobs", ("status",), help="DL jobs by status")
        # Label values seen so far; counts that drop to zero must be
        # written as 0, not left at their last value.
        self._seen_phases = set()
        self._seen_statuses = set()

    def start(self):
        if self.running:
            return self
        self.running = True
        self._proc = self.kernel.spawn(self._loop(), name="cluster-monitor")
        return self

    def stop(self):
        self.running = False
        if self._proc is not None:
            self._proc.kill("monitor stopped")
            self._proc = None
        return self

    def _loop(self):
        mongo = self.platform.mongo_client("cluster-monitor")
        while self.running:
            capacity = self.platform.k8s.capacity_summary()
            pods = self.platform.k8s.api.list("Pod")
            phases = {}
            for pod in pods:
                phases[pod.phase] = phases.get(pod.phase, 0) + 1
            try:
                jobs = yield from mongo.find("jobs", {}, projection=["status"])
            except Exception:
                jobs = []
            statuses = {}
            for job in jobs:
                statuses[job["status"]] = statuses.get(job["status"], 0) + 1
            self.samples.append({
                "time": self.kernel.now,
                "gpus_total": capacity["gpus_total"],
                "gpus_allocated": capacity["gpus_allocated"],
                "nodes": capacity["nodes"],
                "pods": phases,
                "jobs": statuses,
            })
            self._publish(capacity, phases, statuses)
            yield self.kernel.sleep(self.interval)

    def _publish(self, capacity, phases, statuses):
        self._g_gpus_total.set(capacity["gpus_total"])
        self._g_gpus_allocated.set(capacity["gpus_allocated"])
        self._g_nodes.set(capacity["nodes"])
        self._seen_phases.update(phases)
        for phase in self._seen_phases:
            self._g_pods.labels(phase=phase).set(phases.get(phase, 0))
        self._seen_statuses.update(statuses)
        for status in self._seen_statuses:
            self._g_jobs.labels(status=status).set(statuses.get(status, 0))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def utilization_series(self):
        """(time, fraction-of-GPUs-allocated) points."""
        return [
            (s["time"], s["gpus_allocated"] / s["gpus_total"])
            for s in self.samples if s["gpus_total"]
        ]

    def summary(self):
        series = self.utilization_series()
        if not series:
            return {"samples": 0, "mean_utilization": 0.0, "peak_utilization": 0.0}
        values = [value for _time, value in series]
        return {
            "samples": len(series),
            "mean_utilization": sum(values) / len(values),
            "peak_utilization": max(values),
            "window_seconds": series[-1][0] - series[0][0],
        }

    def report(self, width=50):
        """Text sparkline of GPU utilization over the sampled window."""
        series = self.utilization_series()
        if not series:
            return "no samples"
        blocks = " ▁▂▃▄▅▆▇█"
        step = max(1, len(series) // width)
        cells = []
        for i in range(0, len(series), step):
            chunk = [v for _t, v in series[i:i + step]]
            level = sum(chunk) / len(chunk)
            cells.append(blocks[min(8, int(level * 8 + 0.5))])
        summary = self.summary()
        return (
            f"GPU utilization over {summary['window_seconds']:.0f}s "
            f"(mean {summary['mean_utilization']:.0%}, "
            f"peak {summary['peak_utilization']:.0%})\n"
            f"[{''.join(cells)}]"
        )
