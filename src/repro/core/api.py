"""The DLaaS API microservice (paper §III.c).

Exposes the user-facing operations (submit, status, list, halt, logs,
metering) over the RPC fabric — standing in for the REST and GRPC
endpoints of the real system. Instances register into the platform's
service load balancer (the K8S service registry), which provides
fail-over for incoming requests.

Durability rule: "When a job deployment request arrives, the API layer
stores all the metadata in MongoDB before acknowledging the request.
This ensures that submitted jobs are never lost." The LCM notify after
the store is best-effort; the LCM's reconcile loop covers its loss.
"""

from ..grpcnet import Client, Server
from ..grpcnet.errors import RpcError
from ..raftkv import EtcdClient
from ..sim.tracing import extract_context
from . import layout
from .admission import AdmissionController
from .auth import Metering, RateLimiter
from .errors import JobNotFound, ModelNotFound, ServingDisabled
from .manifest import TrainingManifest
from .states import QUEUED, is_terminal


class ApiService:
    """One API instance (runs inside an API pod)."""

    def __init__(self, platform, address):
        self.platform = platform
        self.kernel = platform.kernel
        self.address = address
        self.mongo = platform.mongo_client(address, tracer=platform.tracer)
        self.etcd = EtcdClient(self.kernel, platform.network, platform.etcd,
                               client_id=address, history=platform.history)
        self.metering = Metering(self.mongo)
        self.ratelimiter = RateLimiter(self.kernel,
                                       rate=platform.config.api_rate_limit,
                                       burst=platform.config.api_rate_burst)
        self.admission = AdmissionController(self)
        self.lcm = Client(self.kernel, platform.network, platform.lcm_balancer,
                          caller=address, retries=1, retry_backoff=0.2)
        if platform.serving_balancer is not None:
            self.serving_manager = Client(self.kernel, platform.network,
                                          platform.serving_balancer,
                                          caller=address, retries=1,
                                          retry_backoff=0.2)
        else:
            self.serving_manager = None
        self.server = Server(self.kernel, platform.network, address,
                             service_time=platform.config.api_service_time)
        for method in ("submit", "status", "list_jobs", "halt", "logs", "usage",
                       "events", "job_events",
                       "create_model", "get_model", "list_models",
                       "delete_model"):
            self.server.add_method(method, getattr(self, f"_on_{method}"))
        # The RESTful surface shares the same handlers (§III.c: "both a
        # RESTful API as well as a GRPC API endpoint").
        from .rest import RestGateway

        self.server.add_method("http", RestGateway(self).handle)

    def _authenticate(self, request, method):
        tenant = self.platform.tokens.authenticate(request.get("token"))
        self.admission.check_call(tenant, method)
        yield from self.metering.record_api_call(tenant, method)
        return tenant

    # ------------------------------------------------------------------
    # submit
    # ------------------------------------------------------------------

    def _on_submit(self, request):
        # The root of the job's causal trace: everything downstream
        # (LCM, Guardian, helpers, learners) parents back to this span,
        # via RPC metadata or the ("job", job_id) binding.
        span = self.platform.tracer.start_span(
            "api.submit", component="api", parent=extract_context(request))
        try:
            tenant = yield from self._authenticate(request, "submit")
            manifest = TrainingManifest.from_dict(request.get("manifest"))

            # Quota/fair-queue gate: raises QuotaExceeded, or returns
            # holding one reservation that the finally below settles
            # once the job document is durable (or the insert failed).
            yield from self.admission.admit_submission(tenant)
            try:
                seq = yield from self._next_sequence()
                job_id = f"job-{seq:05d}"
                span.set_attribute("job", job_id)
                self.platform.tracer.bind(("job", job_id), span.context)
                document = {
                    "job_id": job_id,
                    "tenant": tenant,
                    "name": manifest.name,
                    "manifest": manifest.to_dict(),
                    "status": QUEUED,
                    "status_history": [{"status": QUEUED,
                                        "time": self.kernel.now}],
                    "created_at": self.kernel.now,
                    "completed_at": None,
                }
                # Metadata is durable in MongoDB BEFORE the request is
                # acknowledged — submitted jobs are never lost.
                yield from self.mongo.insert_one("jobs", document,
                                                 ctx=span.context)
                yield from self.metering.record_submission(
                    tenant, manifest.total_gpus)
            finally:
                self.admission.settle(tenant)

            # Best-effort LCM notify; the reconcile loop is the safety net.
            try:
                yield from self.lcm.call("deploy_job", {"job_id": job_id},
                                         deadline=1.0, ctx=span.context)
            except RpcError:
                pass
        except BaseException:
            span.end("error")
            raise
        span.end("ok")
        return {"job_id": job_id, "status": QUEUED}

    def _next_sequence(self, counter="job-seq"):
        doc = yield from self.mongo.find_one_and_update(
            "counters", {"_id_name": counter}, {"$inc": {"seq": 1}}, return_new=True
        )
        if doc is None:
            try:
                yield from self.mongo.insert_one(
                    "counters", {"_id_name": counter, "seq": 0}
                )
            except Exception:
                pass  # another API instance won the race
            doc = yield from self.mongo.find_one_and_update(
                "counters", {"_id_name": counter}, {"$inc": {"seq": 1}},
                return_new=True,
            )
        return doc["seq"]

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _load_job(self, tenant, job_id, projection=None):
        doc = yield from self.mongo.find_one("jobs", {"job_id": job_id,
                                                      "tenant": tenant},
                                             projection=projection)
        if doc is None:
            raise JobNotFound(f"{job_id} (tenant {tenant})")
        return doc

    def _on_status(self, request):
        tenant = yield from self._authenticate(request, "status")
        # Everything the response needs except the (large) manifest.
        doc = yield from self._load_job(
            tenant, request["job_id"],
            projection=["job_id", "name", "status", "status_history",
                        "created_at", "completed_at", "metrics"])
        learners = yield from self.etcd.get_range(
            layout.learner_status_prefix(request["job_id"])
        )
        return {
            "job_id": doc["job_id"],
            "name": doc["name"],
            "status": doc["status"],
            "status_history": doc["status_history"],
            "learners": {key.rsplit("/", 2)[-2]: value for key, value in learners},
            "created_at": doc["created_at"],
            "completed_at": doc["completed_at"],
            "metrics": doc.get("metrics"),
        }

    def _on_list_jobs(self, request):
        tenant = yield from self._authenticate(request, "list_jobs")
        docs = yield from self.mongo.find(
            "jobs", {"tenant": tenant}, sort=[("created_at", 1)],
            projection=["job_id", "name", "status", "created_at"])
        return [{"job_id": d["job_id"], "name": d["name"], "status": d["status"]}
                for d in docs]

    def _on_logs(self, request):
        """Reliable log access regardless of job stage (paper §II).

        While the job's NFS volume exists, tail the combined log from
        there; after teardown, fall back to the archived copy in the
        object store.
        """
        tenant = yield from self._authenticate(request, "logs")
        doc = yield from self._load_job(tenant, request["job_id"],
                                        projection=["job_id", "manifest"])
        job_id = doc["job_id"]
        tail = request.get("tail")
        volume_name = f"pv-default-{layout.pvc_name(job_id)}"
        text = None
        try:
            volume = self.platform.nfs.volume(volume_name)
            if volume.exists(layout.COMBINED_LOG):
                text = volume.read_file(layout.COMBINED_LOG)
        except Exception:
            text = None
        if text is None:
            manifest = doc["manifest"]
            try:
                obj = self.platform.object_store.head_object(
                    manifest["results"]["bucket"], f"{job_id}/logs",
                    manifest["results"]["credentials"],
                )
                text = (obj.payload or {}).get("text", "")
            except Exception:
                text = ""
        lines = text.splitlines()
        if tail is not None:
            lines = lines[-int(tail):]
        return {"lines": lines}

    @staticmethod
    def _event_body(doc):
        return {k: v for k, v in doc.items() if k not in ("_id", "event_key")}

    def _on_events(self, request):
        """Platform-wide event log (operator view), read from MongoDB
        where the monitoring stack's flusher persists it."""
        yield from self._authenticate(request, "events")
        query = {}
        for field in ("reason", "type", "kind"):
            if request.get(field) is not None:
                query[field] = request[field]
        docs = yield from self.mongo.find("events", query,
                                          sort=[("first_time", 1)])
        return [self._event_body(d) for d in docs]

    def _on_job_events(self, request):
        """Events involving one job, tenancy-checked like status."""
        tenant = yield from self._authenticate(request, "job_events")
        doc = yield from self._load_job(tenant, request["job_id"],
                                        projection=["job_id"])
        docs = yield from self.mongo.find("events", {"job": doc["job_id"]},
                                          sort=[("first_time", 1)])
        return [self._event_body(d) for d in docs]

    def _on_usage(self, request):
        tenant = yield from self._authenticate(request, "usage")
        report = yield from self.metering.report(tenant)
        report.pop("_id", None)
        return report

    # ------------------------------------------------------------------
    # halt
    # ------------------------------------------------------------------

    def _on_halt(self, request):
        tenant = yield from self._authenticate(request, "halt")
        doc = yield from self._load_job(tenant, request["job_id"],
                                        projection=["job_id", "status"])
        if is_terminal(doc["status"]):
            return {"job_id": doc["job_id"], "status": doc["status"]}
        response = yield from self.lcm.call("kill_job", {"job_id": doc["job_id"]},
                                            deadline=2.0)
        return {"job_id": doc["job_id"], "halt": response["halted"]}

    # ------------------------------------------------------------------
    # Serving models (the second workload class, repro.serving)
    # ------------------------------------------------------------------

    def _require_serving(self):
        if self.serving_manager is None:
            raise ServingDisabled(
                "serving endpoints need PlatformConfig(serving=True)")

    def _notify_serving(self, model_id):
        # Best-effort like the LCM notify; the ServingManager's resync
        # relist is the safety net for a lost RPC.
        try:
            yield from self.serving_manager.call(
                "reconcile_model", {"model_id": model_id}, deadline=1.0)
        except RpcError:
            pass

    def _load_model(self, tenant, model_id, projection=None):
        doc = yield from self.mongo.find_one(
            "models", {"model_id": model_id, "tenant": tenant},
            projection=projection)
        if doc is None:
            raise ModelNotFound(f"{model_id} (tenant {tenant})")
        return doc

    def _on_create_model(self, request):
        self._require_serving()
        tenant = yield from self._authenticate(request, "create_model")
        from ..serving import MODEL_ACTIVE, ServingManifest

        manifest = ServingManifest.from_dict(request.get("manifest"))
        seq = yield from self._next_sequence("model-seq")
        model_id = f"model-{seq:04d}"
        document = {
            "model_id": model_id,
            "tenant": tenant,
            "name": manifest.name,
            "manifest": manifest.to_dict(),
            "replicas": manifest.min_replicas,
            "status": MODEL_ACTIVE,
            "created_at": self.kernel.now,
            "deleted_at": None,
        }
        # Same durability rule as jobs: the registry entry is in
        # MongoDB before the request is acknowledged.
        yield from self.mongo.insert_one("models", document)
        yield from self._notify_serving(model_id)
        return {"model_id": model_id, "status": MODEL_ACTIVE}

    def _on_get_model(self, request):
        self._require_serving()
        tenant = yield from self._authenticate(request, "get_model")
        doc = yield from self._load_model(
            tenant, request["model_id"],
            projection=["model_id", "name", "status", "replicas",
                        "created_at", "deleted_at"])
        response = {
            "model_id": doc["model_id"],
            "name": doc["name"],
            "status": doc["status"],
            "replicas": doc.get("replicas"),
            "created_at": doc["created_at"],
            "deleted_at": doc.get("deleted_at"),
        }
        runtime = self.platform.serving
        if runtime is not None and doc["model_id"] in runtime.model_ids():
            stats = runtime.stats(doc["model_id"])
            response["ready_replicas"] = stats["replicas"]
            response["queue_depth"] = stats["queue_depth"]
            response["window_p99"] = stats["window_p99"]
        return response

    def _on_list_models(self, request):
        self._require_serving()
        tenant = yield from self._authenticate(request, "list_models")
        docs = yield from self.mongo.find(
            "models", {"tenant": tenant}, sort=[("created_at", 1)],
            projection=["model_id", "name", "status", "replicas"])
        return [{"model_id": d["model_id"], "name": d["name"],
                 "status": d["status"], "replicas": d.get("replicas")}
                for d in docs]

    def _on_delete_model(self, request):
        self._require_serving()
        tenant = yield from self._authenticate(request, "delete_model")
        from ..serving import MODEL_ACTIVE, MODEL_DELETING

        doc = yield from self.mongo.find_one_and_update(
            "models",
            {"model_id": request["model_id"], "tenant": tenant,
             "status": MODEL_ACTIVE},
            {"$set": {"status": MODEL_DELETING}}, return_new=True)
        if doc is None:
            # Not ACTIVE: distinguish "never existed / wrong tenant"
            # from "already deleting/deleted" (idempotent delete).
            doc = yield from self._load_model(
                tenant, request["model_id"], projection=["model_id", "status"])
            return {"model_id": doc["model_id"], "status": doc["status"]}
        yield from self._notify_serving(doc["model_id"])
        return {"model_id": doc["model_id"], "status": doc["status"]}
