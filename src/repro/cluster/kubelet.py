"""The kubelet: runs pods on one node.

Provisions volumes, pulls images, starts container workloads as kernel
processes, enforces restart policies with crash-loop backoff, reports
pod phase, and heartbeats node liveness. Crashing the kubelet's node
kills every container on it instantly and silently — detection is the
node controller's job, exactly as in the real system.
"""

from ..sim.errors import ProcessKilled
from .resources.pod import (
    FAILED,
    RESTART_ALWAYS,
    RESTART_NEVER,
    RESTART_ON_FAILURE,
    RUNNING,
    SUCCEEDED,
)

KILLED_EXIT_CODE = 137


class KubeletConfig:
    """Tunable timing parameters, all simulated seconds."""

    def __init__(self, sync_interval=0.1, heartbeat_interval=0.5,
                 container_start_overhead=0.4, volume_bind_time=0.8,
                 restart_backoff_base=0.2, restart_backoff_max=10.0,
                 pvc_wait_interval=0.1):
        self.sync_interval = sync_interval
        self.heartbeat_interval = heartbeat_interval
        self.container_start_overhead = container_start_overhead
        self.volume_bind_time = volume_bind_time
        self.restart_backoff_base = restart_backoff_base
        self.restart_backoff_max = restart_backoff_max
        self.pvc_wait_interval = pvc_wait_interval


class ContainerContext:
    """What a container workload sees: its little world."""

    def __init__(self, kernel, pod, container, node_name, mounts, log_sink):
        self.kernel = kernel
        self.pod = pod
        self.container = container
        self.node_name = node_name
        self.mounts = mounts
        self.env = dict(container.env)
        self.stop_event = kernel.event(name=f"stop:{pod.metadata.name}/{container.name}")
        self._log_sink = log_sink

    @property
    def stopping(self):
        return self.stop_event.triggered

    def log(self, line):
        self._log_sink(self.kernel.now, line)


def release_pod_resources(api, pod):
    """Give the pod's node back its resources; idempotent."""
    if getattr(pod, "_resources_released", False) or pod.node_name is None:
        return
    pod._resources_released = True
    node = api.get_or_none("Node", pod.node_name, namespace="")
    if node is not None:
        node.release(pod.spec)


class Kubelet:
    """Node agent: one per cluster node."""

    def __init__(self, kernel, api, node, nfs_server, registry, cluster,
                 config=None):
        self.kernel = kernel
        self.api = api
        self.node = node
        self.nfs = nfs_server
        self.registry = registry
        self.cluster = cluster  # for the shared container-log sink
        self.config = config or KubeletConfig()
        self.alive = False
        self._procs = set()
        self._pod_workers = {}  # pod uid -> worker process
        self._container_procs = {}  # (pod uid, container) -> (process, ctx)
        self._supervisors = {}  # (pod uid, container) -> supervisor process
        self._terminating = set()  # pod uids with an active terminate process

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        if self.alive:
            return self
        self.alive = True
        self.node.last_heartbeat = self.kernel.now
        self._spawn(self._heartbeat_loop(), "heartbeat")
        self._spawn(self._sync_loop(), "sync")
        return self

    def crash(self):
        """The machine dies: every container and loop stops instantly."""
        if not self.alive:
            return self
        self.alive = False
        procs, self._procs = self._procs, set()
        for proc in procs:
            proc.kill(f"node {self.node.metadata.name} crashed")
        self._pod_workers.clear()
        self._container_procs.clear()
        self._supervisors.clear()
        self._terminating.clear()
        return self

    restart = start

    def _spawn(self, generator, label):
        process = self.kernel.spawn(
            generator, name=f"kubelet:{self.node.metadata.name}:{label}"
        )
        self._procs.add(process)
        process.add_callback(lambda _ev: self._procs.discard(process))
        return process

    # ------------------------------------------------------------------
    # Loops
    # ------------------------------------------------------------------

    def _heartbeat_loop(self):
        while self.alive:
            self.node.last_heartbeat = self.kernel.now
            yield self.kernel.sleep(self.config.heartbeat_interval)

    def _sync_loop(self):
        while self.alive:
            for pod in self.api.list("Pod"):
                if pod.node_name != self.node.metadata.name:
                    continue
                uid = pod.metadata.uid
                if pod.deletion_requested:
                    if uid in self._terminating:
                        continue
                    if uid in self._pod_workers:
                        self._terminating.add(uid)
                        self._spawn(self._terminate_pod(pod, graceful=True),
                                    f"terminate:{pod.metadata.name}")
                    else:
                        self._finalize_deletion(pod)
                    continue
                if pod.is_terminal():
                    continue
                if uid not in self._pod_workers:
                    worker = self._spawn(self._run_pod(pod), f"pod:{pod.metadata.name}")
                    self._pod_workers[uid] = worker
            yield self.kernel.sleep(self.config.sync_interval)

    # ------------------------------------------------------------------
    # Pod execution
    # ------------------------------------------------------------------

    def _run_pod(self, pod):
        uid = pod.metadata.uid
        try:
            mounts = yield from self._provision_volumes(pod)
            if mounts is None:
                return  # pod deleted while waiting on PVCs
            pull_procs = [
                self._spawn(self.registry.pull(self.node.metadata.name, c.image),
                            f"pull:{c.image}")
                for c in pod.spec.containers
            ]
            yield self.kernel.all_of(pull_procs)
            yield self.kernel.sleep(self.config.container_start_overhead)

            supervisors = []
            for container in pod.spec.containers:
                supervisor = self._spawn(
                    self._container_supervisor(pod, container, mounts),
                    f"ctr:{pod.metadata.name}/{container.name}",
                )
                self._supervisors[(uid, container.name)] = supervisor
                supervisors.append(supervisor)

            pod.phase = RUNNING
            pod.start_time = self.kernel.now
            self._safe_update(pod)
            self.api.record_event("Pod", pod.metadata.name, "Started",
                                  f"on {self.node.metadata.name}")

            exit_codes = yield self.kernel.all_of(supervisors)
            # Only reached when every container reached a terminal state
            # under its restart policy.
            pod.phase = SUCCEEDED if all(code == 0 for code in exit_codes) else FAILED
            pod.finish_time = self.kernel.now
            release_pod_resources(self.api, pod)
            self._safe_update(pod)
            self.api.record_event("Pod", pod.metadata.name, pod.phase)
        finally:
            self._pod_workers.pop(uid, None)

    def _provision_volumes(self, pod):
        mounts = {}
        for logical_name, claim_name in pod.spec.volumes.items():
            while True:
                if pod.deletion_requested:
                    return None
                pvc = self.api.get_or_none(
                    "PersistentVolumeClaim", claim_name, pod.metadata.namespace
                )
                if pvc is not None and pvc.bound:
                    break
                yield self.kernel.sleep(self.config.pvc_wait_interval)
            yield self.kernel.sleep(self.config.volume_bind_time)
            mounts[logical_name] = self.nfs.mount(pvc.bound_volume)
        return mounts

    def _container_supervisor(self, pod, container, mounts):
        status = pod.container_statuses[container.name]
        backoff = self.config.restart_backoff_base
        while True:
            ctx = ContainerContext(
                self.kernel, pod, container, self.node.metadata.name, mounts,
                self.cluster.log_sink(pod, container.name),
            )
            status.state = "running"
            status.started_at = self.kernel.now
            status.exit_code = None
            run = self.kernel.spawn(
                self._run_workload(container, ctx),
                name=f"workload:{pod.metadata.name}/{container.name}",
            )
            key = (pod.metadata.uid, container.name)
            self._container_procs[key] = (run, ctx)
            self._procs.add(run)
            run.add_callback(lambda _ev, p=run: self._procs.discard(p))
            try:
                exit_code = yield run
            except ProcessKilled:
                exit_code = KILLED_EXIT_CODE
            finally:
                self._container_procs.pop(key, None)
            status.state = "terminated"
            status.exit_code = exit_code
            status.finished_at = self.kernel.now

            # No restarts for a pod being torn down or a dead node;
            # without this check, catching ProcessKilled above would
            # resurrect containers that were deliberately killed.
            if not self.alive or pod.deletion_requested:
                self._supervisors.pop(key, None)
                return exit_code

            policy = pod.spec.restart_policy
            if policy == RESTART_NEVER:
                self._supervisors.pop(key, None)
                return exit_code
            if policy == RESTART_ON_FAILURE and exit_code == 0:
                self._supervisors.pop(key, None)
                return 0
            # Restart (Always, or OnFailure after a failure).
            status.restart_count += 1
            self.api.record_event("Pod", pod.metadata.name, "ContainerRestart",
                                  f"{container.name} exited {exit_code}")
            if self.cluster.events is not None and exit_code != 0:
                # Crash-looping containers deduplicate into one record
                # with a rising count (the helper/learner exit path).
                self.cluster.events.emit_event(
                    "Warning", "ContainerRestarted", "Pod", pod.metadata.name,
                    message=f"{container.name} exited {exit_code}",
                    job=pod.metadata.labels.get("dlaas-job"))
            if exit_code == 0 and policy == RESTART_ALWAYS:
                yield self.kernel.sleep(self.config.restart_backoff_base)
                backoff = self.config.restart_backoff_base
            else:
                yield self.kernel.sleep(backoff)
                backoff = min(backoff * 2, self.config.restart_backoff_max)

    def _run_workload(self, container, ctx):
        if container.workload is None:
            yield self.kernel.event()  # pause container: runs until killed
            return 0
        try:
            result = yield from container.workload(ctx)
        except ProcessKilled:
            raise
        except Exception as exc:
            ctx.log(f"container crashed: {exc!r}")
            return 1
        if result is None:
            return 0
        return int(result)

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------

    def _terminate_pod(self, pod, graceful):
        uid = pod.metadata.uid
        try:
            if graceful:
                for (pod_uid, _name), (_proc, ctx) in list(self._container_procs.items()):
                    if pod_uid == uid and not ctx.stop_event.triggered:
                        ctx.stop_event.succeed()
                yield self.kernel.sleep(pod.spec.termination_grace)
            self.kill_pod_containers(pod)
            self._finalize_deletion(pod)
        finally:
            self._terminating.discard(uid)
        return None

    def kill_pod_containers(self, pod):
        """SIGKILL every process belonging to ``pod`` (force/crash path)."""
        uid = pod.metadata.uid
        worker = self._pod_workers.pop(uid, None)
        if worker is not None:
            worker.kill("pod terminated")
        for (pod_uid, name), supervisor in list(self._supervisors.items()):
            if pod_uid == uid:
                supervisor.kill("pod terminated")
                self._supervisors.pop((pod_uid, name), None)
        for (pod_uid, name), (proc, _ctx) in list(self._container_procs.items()):
            if pod_uid == uid:
                proc.kill("pod terminated")
                self._container_procs.pop((pod_uid, name), None)
                status = pod.container_statuses[name]
                status.state = "terminated"
                status.exit_code = KILLED_EXIT_CODE
                status.finished_at = self.kernel.now

    def crash_container(self, pod, container_name):
        """Kill one container's process; the supervisor restarts it per
        policy. This is the fault-injection primitive behind Fig. 4."""
        entry = self._container_procs.get((pod.metadata.uid, container_name))
        if entry is None:
            return False
        process, _ctx = entry
        process.kill("injected container crash")
        return True

    def _finalize_deletion(self, pod):
        release_pod_resources(self.api, pod)
        if self.api.exists("Pod", pod.metadata.name, pod.metadata.namespace):
            self.api.delete("Pod", pod.metadata.name, pod.metadata.namespace)

    def _safe_update(self, pod):
        if self.api.exists("Pod", pod.metadata.name, pod.metadata.namespace):
            self.api.update(pod)

    def has_worker_for(self, pod):
        return pod.metadata.uid in self._pod_workers
