"""The GPU-aware pod scheduler.

Reconcile loop: finds unbound pending pods, filters nodes by readiness,
GPU type, node selector and free resources, then bin-packs onto the
most-allocated feasible node (consolidating GPU fragments so large
multi-GPU jobs can still place — the paper's platform layer must place
1–4 GPU learners densely).
"""


class Scheduler:
    """Binds pending pods to nodes."""

    STRATEGIES = ("binpack", "spread")

    def __init__(self, kernel, api, interval=0.1, tracer=None, strategy="binpack",
                 preemption=True, metrics=None, events=None):
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.kernel = kernel
        self.api = api
        self.events = events
        self.interval = interval
        self.tracer = tracer
        self.strategy = strategy
        self.preemption = preemption
        self.alive = False
        self._proc = None
        self.scheduled_count = 0
        self.preemptions = 0
        if metrics is not None:
            self._m_pending = metrics.gauge(
                "scheduler_pending_pods",
                help="Unbound pending pods at the last scheduling pass")
            self._m_placement = metrics.histogram(
                "scheduler_placement_latency_seconds",
                help="Pod creation to node binding")
            self._m_scheduled = metrics.counter(
                "scheduler_scheduled_pods_total", help="Pods bound to nodes")
            self._m_preempted = metrics.counter(
                "scheduler_preemptions_total", help="Pods evicted by priority")
        else:
            self._m_pending = self._m_placement = None
            self._m_scheduled = self._m_preempted = None

    def start(self):
        if self.alive:
            return self
        self.alive = True
        self._proc = self.kernel.spawn(self._loop(), name="scheduler")
        return self

    def stop(self):
        self.alive = False
        if self._proc is not None:
            self._proc.kill("scheduler stopped")
            self._proc = None
        return self

    def _loop(self):
        while self.alive:
            self.schedule_once()
            yield self.kernel.sleep(self.interval)

    def schedule_once(self):
        """One reconcile pass; returns how many pods were bound.

        Gang-aware: pods sharing ``spec.gang`` are bound all-or-nothing
        when a full gang (``gang_size`` members) is pending together.
        A partially-pending gang (e.g. one crashed learner being
        replaced while its siblings run) schedules member-by-member.
        """
        pending = [
            pod for pod in self.api.list("Pod")
            if pod.phase == "Pending" and pod.node_name is None
            and not pod.deletion_requested
        ]
        if self._m_pending is not None:
            self._m_pending.set(len(pending))
        if not pending:
            return 0
        pending.sort(key=lambda p: (-p.spec.priority, p.metadata.creation_time or 0.0))
        nodes = self.api.list("Node", namespace="")
        gang_members = {}
        for pod in pending:
            if pod.spec.gang is not None:
                gang_members.setdefault(pod.spec.gang, []).append(pod)

        bound = 0
        scheduled_gangs = set()
        for pod in pending:
            gang = pod.spec.gang
            if gang is not None and len(gang_members[gang]) >= pod.spec.gang_size:
                if gang in scheduled_gangs:
                    continue
                scheduled_gangs.add(gang)
                bound += self._bind_gang(gang_members[gang], nodes)
                continue
            bound += self._bind_one(pod, nodes)
        return bound

    def _bind_gang(self, pods, nodes):
        """Place every member or none; rolls back on any failure."""
        placed = []
        for pod in pods:
            node = self._pick_node(pod, nodes)
            if node is None:
                for bound_pod, bound_node in placed:
                    bound_node.release(bound_pod.spec)
                self.api.record_event(
                    "Pod", pods[0].metadata.name, "FailedScheduling",
                    f"gang {pods[0].spec.gang!r} needs {len(pods)} slots together",
                )
                if self.events is not None:
                    self.events.emit_event(
                        "Warning", "Unschedulable", "Pod", pods[0].metadata.name,
                        message=f"gang {pods[0].spec.gang!r} needs "
                                f"{len(pods)} slots together",
                        job=pods[0].metadata.labels.get("dlaas-job"))
                return 0
            node.allocate(pod.spec)
            placed.append((pod, node))
        for pod, node in placed:
            self._commit_bind(pod, node)
        return len(placed)

    def _bind_one(self, pod, nodes):
        node = self._pick_node(pod, nodes)
        if node is None:
            if self.preemption and pod.spec.priority > 0:
                self._try_preempt(pod, nodes)
            self.api.record_event("Pod", pod.metadata.name, "FailedScheduling",
                                  "no node with sufficient resources")
            if self.events is not None:
                self.events.emit_event(
                    "Warning", "Unschedulable", "Pod", pod.metadata.name,
                    message="no node with sufficient resources",
                    job=pod.metadata.labels.get("dlaas-job"))
            return 0
        node.allocate(pod.spec)
        self._commit_bind(pod, node)
        return 1

    # ------------------------------------------------------------------
    # Preemption
    # ------------------------------------------------------------------

    def _try_preempt(self, pod, nodes):
        """Evict lower-priority GPU pods to make room for ``pod``.

        Chooses the feasible node needing the fewest victims; victims
        are the node's lowest-priority GPU pods. Eviction only requests
        deletion — the pod binds on a later pass once the victims have
        actually terminated (and they resume elsewhere/later from their
        checkpoints, which is why preemption is safe on this platform).
        """
        best = None  # (victim_count, node, victims)
        for node in nodes:
            if node.condition != "Ready" or node.unschedulable:
                continue
            if pod.spec.gpu_type and pod.spec.gpu_type != node.capacity.gpu_type:
                continue
            if not all(node.metadata.labels.get(k) == v
                       for k, v in pod.spec.node_selector.items()):
                continue
            if pod.spec.total_gpus > node.capacity.gpus:
                continue
            victims = self._victims_on(node, pod)
            if victims is None:
                continue
            if best is None or len(victims) < len(best[2]):
                best = (len(victims), node, victims)
        if best is None:
            return False
        _count, node, victims = best
        for victim in victims:
            victim.deletion_requested = True
            self.api.update(victim)
            self.api.record_event("Pod", victim.metadata.name, "Preempted",
                                  f"by {pod.metadata.name} "
                                  f"(priority {pod.spec.priority})")
            if self.events is not None:
                self.events.emit_event(
                    "Warning", "Preempted", "Pod", victim.metadata.name,
                    message=f"evicted by {pod.metadata.name} "
                            f"(priority {pod.spec.priority})",
                    job=victim.metadata.labels.get("dlaas-job"))
            self.preemptions += 1
            if self._m_preempted is not None:
                self._m_preempted.inc()
        return True

    def _victims_on(self, node, pod):
        """Cheapest set of lower-priority GPU pods freeing enough room,
        or None if even evicting all of them would not fit."""
        residents = []
        terminating_gpus = 0
        for p in self.api.list("Pod"):
            if p.node_name != node.metadata.name or p.is_terminal():
                continue
            if p.deletion_requested:
                # Already on its way out (e.g. a previous preemption
                # pass): count its GPUs as freeing, evict nothing new.
                terminating_gpus += p.spec.total_gpus
            elif p.spec.priority < pod.spec.priority and p.spec.total_gpus > 0:
                residents.append(p)
        residents.sort(key=lambda p: (p.spec.priority,
                                      -p.spec.total_gpus))
        freed = node.free_gpus + terminating_gpus
        victims = []
        for resident in residents:
            if freed >= pod.spec.total_gpus:
                break
            victims.append(resident)
            freed += resident.spec.total_gpus
        if freed < pod.spec.total_gpus:
            return None
        return victims

    def _pick_node(self, pod, nodes):
        """Feasible node per strategy, or None (does not allocate)."""
        feasible = [node for node in nodes if node.can_fit(pod.spec)]
        if not feasible:
            return None
        if self.strategy == "binpack":
            # Prefer the node with the fewest free GPUs that still
            # fits, then fewest free CPU millicores: consolidates
            # fragments so large multi-GPU pods keep placing.
            return min(
                feasible,
                key=lambda n: (n.free_gpus,
                               n.capacity.cpu_millicores - n.allocated_cpu,
                               n.metadata.name),
            )
        # Spread: the ablation baseline — most free GPUs first.
        return max(
            feasible,
            key=lambda n: (n.free_gpus,
                           n.capacity.cpu_millicores - n.allocated_cpu,
                           n.metadata.name),
        )

    def _commit_bind(self, pod, node):
        """Record an already-allocated placement (allocation done by caller)."""
        pod.node_name = node.metadata.name
        pod._resources_released = False
        self.api.update(pod)
        self.api.record_event("Pod", pod.metadata.name, "Scheduled",
                              f"bound to {node.metadata.name}")
        if self.tracer is not None:
            self.tracer.emit("scheduler", "bind", pod=pod.metadata.name,
                             node=node.metadata.name)
        self.scheduled_count += 1
        if self._m_scheduled is not None:
            self._m_scheduled.inc()
            created = pod.metadata.creation_time
            if created is not None:
                self._m_placement.observe(self.kernel.now - created)
