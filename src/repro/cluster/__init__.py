"""Simulated Kubernetes: the DLaaS platform layer.

Implements the Kubernetes semantics the paper's dependability design
builds on: Jobs run to completion with automatic restart (Guardians),
StatefulSets give learners stable identity across crashes, Deployments
keep core services and helpers at replica count, the scheduler
bin-packs GPU pods, kubelets enforce restart policies, and the node
controller evicts pods from dead machines.
"""

from .apiserver import ApiServer, ClusterEvent
from .autoscaler import ClusterAutoscaler, NodeTemplate
from .cluster import KubernetesCluster
from .controllers import (
    DeploymentController,
    JobController,
    NodeController,
    PvcController,
    StatefulSetController,
)
from .errors import (
    ClusterError,
    ConflictError,
    InvalidResource,
    NotFoundError,
    UnschedulableError,
)
from .images import ImageRegistry
from .kubectl import Kubectl
from .kubelet import ContainerContext, Kubelet, KubeletConfig, KILLED_EXIT_CODE
from .resources.meta import ObjectMeta, selector_matches
from .resources.node import NOT_READY, READY, Node, NodeResources
from .resources.pod import (
    FAILED,
    PENDING,
    RESTART_ALWAYS,
    RESTART_NEVER,
    RESTART_ON_FAILURE,
    RUNNING,
    SUCCEEDED,
    ContainerSpec,
    ContainerStatus,
    Pod,
    PodSpec,
)
from .resources.workloads import (
    Deployment,
    Job,
    NetworkPolicy,
    PersistentVolumeClaim,
    PodTemplate,
    Service,
    StatefulSet,
)
from .scheduler import Scheduler

__all__ = [
    "ApiServer",
    "ClusterAutoscaler",
    "ClusterError",
    "ClusterEvent",
    "NodeTemplate",
    "ConflictError",
    "ContainerContext",
    "ContainerSpec",
    "ContainerStatus",
    "Deployment",
    "DeploymentController",
    "FAILED",
    "ImageRegistry",
    "InvalidResource",
    "Job",
    "JobController",
    "KILLED_EXIT_CODE",
    "Kubectl",
    "Kubelet",
    "KubeletConfig",
    "KubernetesCluster",
    "NOT_READY",
    "NetworkPolicy",
    "Node",
    "NodeController",
    "NodeResources",
    "NotFoundError",
    "ObjectMeta",
    "PENDING",
    "PersistentVolumeClaim",
    "Pod",
    "PodSpec",
    "PodTemplate",
    "PvcController",
    "READY",
    "RESTART_ALWAYS",
    "RESTART_NEVER",
    "RESTART_ON_FAILURE",
    "RUNNING",
    "SUCCEEDED",
    "Scheduler",
    "Service",
    "StatefulSet",
    "StatefulSetController",
    "UnschedulableError",
    "selector_matches",
]
