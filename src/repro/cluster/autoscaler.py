"""Cluster autoscaler: the platform's elasticity mechanism.

The paper names elasticity as a first-class platform property ("handles
the scheduling, orchestration, elasticity and resilience of deep
learning jobs"). This controller watches for unschedulable pods and
provisions new GPU nodes (with a cloud-realistic boot delay), and
retires nodes that have sat idle, within [min_nodes, max_nodes].
"""

from .controllers import Controller


class NodeTemplate:
    """Shape of nodes the autoscaler provisions."""

    def __init__(self, gpus=4, gpu_type="k80", cpu_millicores=16000,
                 memory_mb=65536, labels=None):
        self.gpus = gpus
        self.gpu_type = gpu_type
        self.cpu_millicores = cpu_millicores
        self.memory_mb = memory_mb
        self.labels = dict(labels or {"pool": "gpu", "autoscaled": "true"})


class ClusterAutoscaler(Controller):
    """Scale the autoscaled GPU pool with demand."""

    name = "cluster-autoscaler"

    def __init__(self, kernel, cluster, template=None, min_nodes=0, max_nodes=8,
                 boot_time=90.0, idle_timeout=300.0, pending_grace=3.0,
                 interval=1.0):
        super().__init__(kernel, cluster.api, interval=interval)
        if min_nodes < 0 or max_nodes < min_nodes:
            raise ValueError("need 0 <= min_nodes <= max_nodes")
        self.cluster = cluster
        self.template = template or NodeTemplate()
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.boot_time = boot_time
        self.idle_timeout = idle_timeout
        self.pending_grace = pending_grace
        self._booting = 0
        self._node_counter = 0
        self._idle_since = {}
        self.scale_ups = 0
        self.scale_downs = 0

    # ------------------------------------------------------------------

    def _pool_nodes(self):
        return [
            node for node in self.api.list("Node", namespace="")
            if node.metadata.labels.get("autoscaled") == "true"
        ]

    def _unschedulable_demand(self):
        """Pending pods the current cluster cannot place, old enough to
        not be mid-scheduling churn."""
        now = self.kernel.now
        demand = []
        for pod in self.api.list("Pod"):
            if pod.phase != "Pending" or pod.node_name is not None \
                    or pod.deletion_requested:
                continue
            created = pod.metadata.creation_time or 0.0
            if now - created < self.pending_grace:
                continue
            if pod.spec.gpu_type and pod.spec.gpu_type != self.template.gpu_type:
                continue
            demand.append(pod)
        return demand

    def reconcile(self):
        self._maybe_scale_up()
        self._maybe_scale_down()

    # ------------------------------------------------------------------

    def _maybe_scale_up(self):
        demand = self._unschedulable_demand()
        if not demand:
            return
        # Only the autoscaled pool counts against the budget; fixed
        # nodes are outside this controller's jurisdiction.
        pool_size = len(self._pool_nodes()) + self._booting
        if pool_size >= self.max_nodes:
            return
        gpus_needed = sum(p.spec.total_gpus for p in demand)
        nodes_needed = max(1, -(-gpus_needed // max(1, self.template.gpus)))
        to_boot = min(nodes_needed, self.max_nodes - pool_size)
        for _ in range(to_boot):
            self._booting += 1
            self.scale_ups += 1
            self.kernel.spawn(self._boot_node(), name="autoscaler:boot")
        self.api.record_event("Autoscaler", self.name, "ScaleUp",
                              f"provisioning {to_boot} node(s) for "
                              f"{len(demand)} pending pod(s)")

    def _boot_node(self):
        yield self.kernel.sleep(self.boot_time)
        self._node_counter += 1
        name = f"autoscale-{self._node_counter}"
        self.cluster.add_node(
            name, gpus=self.template.gpus, gpu_type=self.template.gpu_type,
            cpu_millicores=self.template.cpu_millicores,
            memory_mb=self.template.memory_mb, labels=dict(self.template.labels),
        )
        self._booting -= 1
        self.api.record_event("Autoscaler", self.name, "NodeProvisioned", name)

    # ------------------------------------------------------------------

    def _maybe_scale_down(self):
        now = self.kernel.now
        pool = self._pool_nodes()
        removable = len(pool) - self.min_nodes
        for node in pool:
            busy = node.allocated_gpus > 0 or node.allocated_cpu > 0
            name = node.metadata.name
            if busy:
                self._idle_since.pop(name, None)
                continue
            self._idle_since.setdefault(name, now)
            if removable <= 0:
                continue
            if now - self._idle_since[name] >= self.idle_timeout:
                self._retire(node)
                removable -= 1

    def _retire(self, node):
        name = node.metadata.name
        self._idle_since.pop(name, None)
        self.cluster.remove_node(name)
        self.scale_downs += 1
        self.api.record_event("Autoscaler", self.name, "NodeRetired", name)
