"""Assembly of the full simulated Kubernetes cluster.

One object wiring the API server, scheduler, controllers, image
registry, NFS provisioner and per-node kubelets — the "DLaaS Platform
Layer" of the paper (Docker + Kubernetes + the stores ride on top).
"""

from .apiserver import ApiServer
from .controllers import (
    DeploymentController,
    JobController,
    NodeController,
    PvcController,
    StatefulSetController,
)
from .images import ImageRegistry
from .kubectl import Kubectl
from .kubelet import Kubelet, KubeletConfig
from .resources.meta import selector_matches
from .resources.node import Node, NodeResources
from .scheduler import Scheduler


class KubernetesCluster:
    """The platform layer: nodes, control plane, image registry."""

    def __init__(self, kernel, nfs_server, tracer=None, kubelet_config=None,
                 eviction_timeout=3.0, metrics=None, events=None):
        self.kernel = kernel
        self.nfs = nfs_server
        self.tracer = tracer
        self.events = events
        self.api = ApiServer(kernel, tracer=tracer)
        self.registry = ImageRegistry(kernel)
        self.scheduler = Scheduler(kernel, self.api, tracer=tracer,
                                   metrics=metrics, events=events)
        self.kubelet_config = kubelet_config or KubeletConfig()
        self.controllers = [
            JobController(kernel, self.api),
            StatefulSetController(kernel, self.api),
            DeploymentController(kernel, self.api),
            NodeController(kernel, self.api, eviction_timeout=eviction_timeout),
            PvcController(kernel, self.api, nfs_server),
        ]
        self.kubelets = {}
        self._logs = {}
        self.kubectl = Kubectl(self)
        self._started = False

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def add_node(self, name, gpus=0, gpu_type=None, cpu_millicores=16000,
                 memory_mb=65536, labels=None):
        node = Node(name, NodeResources(gpus=gpus, gpu_type=gpu_type,
                                        cpu_millicores=cpu_millicores,
                                        memory_mb=memory_mb), labels=labels)
        self.api.create(node)
        kubelet = Kubelet(self.kernel, self.api, node, self.nfs, self.registry,
                          self, config=self.kubelet_config)
        self.kubelets[name] = kubelet
        if self._started:
            kubelet.start()
        return node

    def kubelet_for(self, node_name):
        return self.kubelets.get(node_name)

    def remove_node(self, name):
        """Retire an empty node: stop its kubelet, drop the resource.

        Only safe for nodes without running pods (the autoscaler checks
        before retiring); any stragglers are killed like a shutdown.
        """
        kubelet = self.kubelets.pop(name, None)
        if kubelet is not None:
            kubelet.crash()
        if self.api.exists("Node", name, namespace=""):
            self.api.delete("Node", name, namespace="")

    def start(self):
        if self._started:
            return self
        self._started = True
        self.scheduler.start()
        for controller in self.controllers:
            controller.start()
        for kubelet in self.kubelets.values():
            kubelet.start()
        return self

    # ------------------------------------------------------------------
    # Node fault injection
    # ------------------------------------------------------------------

    def crash_node(self, node_name):
        """Machine failure: containers die silently; the node controller
        notices via heartbeat staleness and evicts."""
        kubelet = self.kubelets[node_name]
        kubelet.crash()
        return kubelet

    def restart_node(self, node_name):
        kubelet = self.kubelets[node_name]
        kubelet.restart()
        return kubelet

    # ------------------------------------------------------------------
    # Container logs (docker log driver)
    # ------------------------------------------------------------------

    def log_sink(self, pod, container_name):
        key = (pod.metadata.namespace, pod.metadata.name, container_name)
        buffer = self._logs.setdefault(key, [])
        return lambda time, line: buffer.append((time, line))

    def container_logs_for(self, pod_name, container=None, namespace="default"):
        out = []
        for (ns, name, ctr), lines in self._logs.items():
            if ns == namespace and name == pod_name and (container is None or ctr == container):
                out.extend(lines)
        out.sort(key=lambda entry: entry[0])
        return out

    # ------------------------------------------------------------------
    # Network policy evaluation
    # ------------------------------------------------------------------

    def network_allowed(self, src_labels, dst_labels, namespace="default"):
        """May a pod with ``src_labels`` talk to one with ``dst_labels``?

        Default-allow until some NetworkPolicy selects the destination;
        then only sources matching an allow-list selector get through —
        Kubernetes semantics, and the isolation mechanism DLaaS applies
        to learner pods.
        """
        policies = [
            p for p in self.api.list("NetworkPolicy", namespace=namespace)
            if selector_matches(p.pod_selector, dst_labels)
        ]
        if not policies:
            return True
        return any(
            selector_matches(allow, src_labels)
            for policy in policies
            for allow in policy.allow_from_selectors
        )

    # ------------------------------------------------------------------
    # Capacity overview (for benchmarks)
    # ------------------------------------------------------------------

    def capacity_summary(self):
        nodes = self.api.list("Node", namespace="")
        return {
            "nodes": len(nodes),
            "gpus_total": sum(n.capacity.gpus for n in nodes),
            "gpus_allocated": sum(n.allocated_gpus for n in nodes),
        }
