"""Reconciling controllers: Job, StatefulSet, Deployment, Node, PVC.

Each controller is an independent loop that compares desired state
(the workload resource) against observed state (pods, node heartbeats)
and acts — the control-plane structure whose loose coupling the paper's
dependability argument relies on (§IV: "each component can fail
independently of the other").
"""

from .kubelet import release_pod_resources
from .resources.node import NOT_READY, READY
from .resources.pod import FAILED, Pod


class Controller:
    """Base reconcile loop."""

    name = "controller"

    def __init__(self, kernel, api, interval=0.2):
        self.kernel = kernel
        self.api = api
        self.interval = interval
        self.alive = False
        self._proc = None

    def start(self):
        if self.alive:
            return self
        self.alive = True
        self._proc = self.kernel.spawn(self._loop(), name=self.name)
        return self

    def stop(self):
        self.alive = False
        if self._proc is not None:
            self._proc.kill(f"{self.name} stopped")
            self._proc = None
        return self

    def _loop(self):
        while self.alive:
            try:
                self.reconcile()
            except Exception as exc:
                # A real controller logs and retries; one bad resource
                # must never kill the reconcile loop.
                self.api.record_event("Controller", self.name, "ReconcileError",
                                      repr(exc))
            yield self.kernel.sleep(self.interval)

    def reconcile(self):
        raise NotImplementedError


class JobController(Controller):
    """K8S Jobs: run each to completion exactly once, with retries.

    This is the abstraction that guarantees Guardian restart (paper
    §III.d): if the Job's pod dies for any reason, a replacement pod is
    created, up to ``backoff_limit`` failures, after which the Job is
    marked failed.
    """

    name = "job-controller"

    def reconcile(self):
        for job in self.api.list("Job"):
            if job.complete:
                continue
            pod = None
            if job.active_pod is not None:
                pod = self.api.get_or_none("Pod", job.active_pod,
                                           job.metadata.namespace)
            if pod is None:
                self._create_pod(job)
                continue
            if pod.phase == "Succeeded":
                job.succeeded = True
                job.completion_time = self.kernel.now
                self.api.update(job)
                self.api.record_event("Job", job.metadata.name, "Completed")
            elif pod.phase == "Failed":
                job.failures += 1
                if self.api.exists("Pod", pod.metadata.name, pod.metadata.namespace):
                    pod.deletion_requested = True
                    self.api.update(pod)
                job.active_pod = None
                if job.failures > job.backoff_limit:
                    job.failed = True
                    job.completion_time = self.kernel.now
                    self.api.record_event("Job", job.metadata.name, "BackoffLimitExceeded")
                self.api.update(job)

    def _create_pod(self, job):
        pod_name = f"{job.metadata.name}-r{job.failures}"
        if self.api.exists("Pod", pod_name, job.metadata.namespace):
            # Previous incarnation still terminating; wait for it.
            return
        labels = dict(job.template.labels)
        labels.setdefault("job-name", job.metadata.name)
        pod = Pod(pod_name, job.template.make_spec(),
                  namespace=job.metadata.namespace, labels=labels,
                  owner=("Job", job.metadata.name))
        self.api.create(pod)
        job.active_pod = pod_name
        self.api.update(job)
        self.api.record_event("Job", job.metadata.name, "PodCreated", pod_name)


class StatefulSetController(Controller):
    """Stable-identity replicas: learner-0..learner-(n-1).

    A failed or lost ordinal pod is replaced by a new pod *with the same
    name*, which is how crashed learners rejoin distributed training
    with their identity intact (paper §III.e, §III.h).
    """

    name = "statefulset-controller"

    def reconcile(self):
        for sset in self.api.list("StatefulSet"):
            if sset.deletion_requested:
                self._tear_down(sset)
                continue
            for ordinal in range(sset.replicas):
                pod_name = sset.pod_name(ordinal)
                pod = self.api.get_or_none("Pod", pod_name, sset.metadata.namespace)
                if pod is None:
                    self._create_pod(sset, ordinal)
                elif pod.is_terminal() and not pod.deletion_requested:
                    # Replace: request deletion; next pass recreates.
                    pod.deletion_requested = True
                    self.api.update(pod)
            # Scale down: remove ordinals >= replicas.
            for pod in self.api.list("Pod", namespace=sset.metadata.namespace,
                                     owner=("StatefulSet", sset.metadata.name)):
                ordinal = self._ordinal_of(sset, pod.metadata.name)
                if ordinal is not None and ordinal >= sset.replicas \
                        and not pod.deletion_requested:
                    pod.deletion_requested = True
                    self.api.update(pod)

    @staticmethod
    def _ordinal_of(sset, pod_name):
        prefix = sset.metadata.name + "-"
        if not pod_name.startswith(prefix):
            return None
        try:
            return int(pod_name[len(prefix):])
        except ValueError:
            return None

    def _create_pod(self, sset, ordinal):
        labels = dict(sset.template.labels)
        labels.setdefault("statefulset", sset.metadata.name)
        labels["ordinal"] = str(ordinal)
        spec = sset.template.make_spec()
        pod = Pod(sset.pod_name(ordinal), spec,
                  namespace=sset.metadata.namespace, labels=labels,
                  owner=("StatefulSet", sset.metadata.name))
        for container in spec.containers:
            container.env.setdefault("ORDINAL", str(ordinal))
        self.api.create(pod)
        self.api.record_event("StatefulSet", sset.metadata.name, "PodCreated",
                              pod.metadata.name)

    def _tear_down(self, sset):
        remaining = 0
        for pod in self.api.list("Pod", namespace=sset.metadata.namespace,
                                 owner=("StatefulSet", sset.metadata.name)):
            remaining += 1
            if not pod.deletion_requested:
                pod.deletion_requested = True
                self.api.update(pod)
        if remaining == 0:
            self.api.delete("StatefulSet", sset.metadata.name, sset.metadata.namespace)


class DeploymentController(Controller):
    """Interchangeable replicas for services and helper pods."""

    name = "deployment-controller"

    def reconcile(self):
        for deployment in self.api.list("Deployment"):
            owned = self.api.list(
                "Pod", namespace=deployment.metadata.namespace,
                owner=("Deployment", deployment.metadata.name))
            if deployment.deletion_requested:
                for pod in owned:
                    if not pod.deletion_requested:
                        pod.deletion_requested = True
                        self.api.update(pod)
                if not owned:
                    self.api.delete("Deployment", deployment.metadata.name,
                                    deployment.metadata.namespace)
                continue
            live = [p for p in owned if not p.is_terminal() and not p.deletion_requested]
            for pod in owned:
                if pod.is_terminal() and not pod.deletion_requested:
                    pod.deletion_requested = True
                    self.api.update(pod)
            for _ in range(deployment.replicas - len(live)):
                self._create_pod(deployment)
            for pod in live[deployment.replicas:]:
                pod.deletion_requested = True
                self.api.update(pod)

    def _create_pod(self, deployment):
        labels = dict(deployment.template.labels)
        labels.setdefault("deployment", deployment.metadata.name)
        pod = Pod(deployment.next_pod_name(), deployment.template.make_spec(),
                  namespace=deployment.metadata.namespace, labels=labels,
                  owner=("Deployment", deployment.metadata.name))
        self.api.create(pod)
        self.api.record_event("Deployment", deployment.metadata.name, "PodCreated",
                              pod.metadata.name)


class NodeController(Controller):
    """Detects dead nodes by heartbeat staleness and evicts their pods."""

    name = "node-controller"

    def __init__(self, kernel, api, interval=0.5, eviction_timeout=3.0):
        super().__init__(kernel, api, interval=interval)
        self.eviction_timeout = eviction_timeout

    def reconcile(self):
        now = self.kernel.now
        for node in self.api.list("Node", namespace=""):
            stale = now - node.last_heartbeat > self.eviction_timeout
            if stale and node.condition == READY:
                node.condition = NOT_READY
                self.api.record_event("Node", node.metadata.name, "NodeNotReady")
                self._evict_pods(node)
            elif not stale and node.condition == NOT_READY:
                node.condition = READY
                self.api.record_event("Node", node.metadata.name, "NodeReady")
        self._gc_orphaned_deletions()

    def _gc_orphaned_deletions(self):
        """Finalize deletions no kubelet can perform.

        A pod whose node is dead (or that was never bound) has no
        kubelet to tear it down; without this, StatefulSet replacements
        would wait forever on a pod stuck terminating on a lost machine.
        """
        for pod in self.api.list("Pod"):
            if not pod.deletion_requested:
                continue
            if pod.node_name is None:
                orphaned = True
            else:
                node = self.api.get_or_none("Node", pod.node_name, namespace="")
                orphaned = node is None or node.condition == NOT_READY
            if orphaned:
                release_pod_resources(self.api, pod)
                self.api.delete("Pod", pod.metadata.name, pod.metadata.namespace)
                self.api.record_event("Pod", pod.metadata.name, "ForceDeleted",
                                      "node unavailable")

    def _evict_pods(self, node):
        for pod in self.api.list("Pod"):
            if pod.node_name != node.metadata.name or pod.is_terminal():
                continue
            pod.phase = FAILED
            pod.message = "node lost"
            pod.finish_time = self.kernel.now
            release_pod_resources(self.api, pod)
            self.api.update(pod)
            self.api.record_event("Pod", pod.metadata.name, "Evicted",
                                  f"node {node.metadata.name} lost")


class PvcController(Controller):
    """Binds PersistentVolumeClaims to fresh NFS volumes."""

    name = "pvc-controller"

    def __init__(self, kernel, api, nfs_server, interval=0.1, bind_delay=0.2):
        super().__init__(kernel, api, interval=interval)
        self.nfs = nfs_server
        self.bind_delay = bind_delay
        self._binding = set()

    def reconcile(self):
        for pvc in self.api.list("PersistentVolumeClaim"):
            if pvc.bound or pvc.metadata.uid in self._binding:
                continue
            self._binding.add(pvc.metadata.uid)
            self.kernel.spawn(self._bind(pvc), name=f"pvc-bind:{pvc.metadata.name}")

    def _bind(self, pvc):
        yield self.kernel.sleep(self.bind_delay)
        volume_name = f"pv-{pvc.metadata.namespace}-{pvc.metadata.name}"
        self.nfs.create_volume(volume_name, exist_ok=True)
        pvc.bound_volume = volume_name
        self._binding.discard(pvc.metadata.uid)
        if self.api.exists("PersistentVolumeClaim", pvc.metadata.name,
                           pvc.metadata.namespace):
            self.api.update(pvc)
            self.api.record_event("PersistentVolumeClaim", pvc.metadata.name, "Bound",
                                  volume_name)
