"""Errors for the Kubernetes simulator."""


class ClusterError(Exception):
    """Base class for cluster errors."""


class NotFoundError(ClusterError):
    """No such resource."""


class ConflictError(ClusterError):
    """Create collided with an existing resource, or a stale update."""


class UnschedulableError(ClusterError):
    """No node can satisfy the pod's resource requests."""


class InvalidResource(ClusterError):
    """Resource specification failed validation."""
