"""Docker image registry with per-node pull caches.

DLaaS maintains a Docker image per DL framework (paper §III.a). The
framework images are gigabytes (Caffe/TensorFlow with CUDA), while the
GoLang microservice images are tens of megabytes — a major reason
learners take longest to recover in Fig. 4: a cold restart on a new
node re-pulls a large image.
"""

from .errors import NotFoundError


class ImageRegistry:
    """Image catalogue plus pull-time model and node caches."""

    def __init__(self, kernel, pull_bandwidth_mb=200.0, cached_check_time=0.05):
        self.kernel = kernel
        self.pull_bandwidth_mb = pull_bandwidth_mb
        self.cached_check_time = cached_check_time
        self._images = {}
        self._node_caches = {}
        self.pulls = 0
        self.cache_hits = 0

    def register(self, name, size_mb):
        if size_mb <= 0:
            raise ValueError(f"image size must be positive: {size_mb}")
        self._images[name] = size_mb
        return self

    def size_of(self, name):
        if name not in self._images:
            raise NotFoundError(f"image {name!r} not in registry")
        return self._images[name]

    def is_cached(self, node_name, image):
        return image in self._node_caches.get(node_name, set())

    def pull(self, node_name, image):
        """Process generator: pull (or confirm cached) an image."""
        size = self.size_of(image)
        cache = self._node_caches.setdefault(node_name, set())
        if image in cache:
            self.cache_hits += 1
            yield self.kernel.sleep(self.cached_check_time)
            return
        self.pulls += 1
        yield self.kernel.sleep(self.cached_check_time + size / self.pull_bandwidth_mb)
        cache.add(image)

    def evict_node_cache(self, node_name):
        """E.g. after a machine re-image, pulls start cold again."""
        self._node_caches.pop(node_name, None)

    def prewarm(self, node_name, image):
        """Mark an image already present (DaemonSet-style pre-pull)."""
        self.size_of(image)  # validate
        self._node_caches.setdefault(node_name, set()).add(image)
