"""kubectl-style operational facade.

The paper's Fig. 4 methodology is "manually crashing various components
(using the kubectl tool of K8S) and measuring time taken for the
component to restart" — this module is that tool.
"""

from .errors import NotFoundError


class Kubectl:
    """Operator commands against the simulated cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.api = cluster.api

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get_pods(self, namespace="default", selector=None):
        return self.api.list("Pod", namespace=namespace, selector=selector)

    def get_pod(self, name, namespace="default"):
        return self.api.get("Pod", name, namespace)

    def get_nodes(self):
        return self.api.list("Node", namespace="")

    def get_events(self, kind=None, name=None):
        out = self.api.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if name is not None:
            out = [e for e in out if e.name == name]
        return out

    def logs(self, pod_name, container=None, namespace="default"):
        return self.cluster.container_logs_for(pod_name, container, namespace)

    def describe_pod(self, name, namespace="default"):
        """kubectl describe pod: spec, status and recent events as text."""
        pod = self.api.get("Pod", name, namespace)
        lines = [
            f"Name:         {pod.metadata.name}",
            f"Namespace:    {pod.metadata.namespace}",
            f"Labels:       {pod.metadata.labels}",
            f"Node:         {pod.node_name or '<unscheduled>'}",
            f"Phase:        {pod.phase}",
            f"Priority:     {pod.spec.priority}",
            f"Restarts:     {pod.restart_count}",
            "Containers:",
        ]
        for container in pod.spec.containers:
            status = pod.container_statuses[container.name]
            lines.append(
                f"  {container.name}: image={container.image} "
                f"gpus={container.gpus} state={status.state} "
                f"exit={status.exit_code} restarts={status.restart_count}"
            )
        events = self.get_events(kind="Pod", name=name)[-8:]
        if events:
            lines.append("Events:")
            for event in events:
                lines.append(f"  {event.time:9.2f}s  {event.reason}  {event.message}")
        return "\n".join(lines)

    def top_nodes(self):
        """kubectl top nodes: per-node allocation table as text."""
        lines = [f"{'NODE':<16} {'STATUS':<10} {'GPUS':>9} {'CPU(m)':>13} "
                 f"{'MEM(MB)':>15}"]
        for node in self.get_nodes():
            lines.append(
                f"{node.metadata.name:<16} {node.condition:<10} "
                f"{node.allocated_gpus:>4}/{node.capacity.gpus:<4} "
                f"{node.allocated_cpu:>6}/{node.capacity.cpu_millicores:<6} "
                f"{node.allocated_memory:>7}/{node.capacity.memory_mb:<7}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Pod destruction (the Fig. 4 crash hammer)
    # ------------------------------------------------------------------

    def delete_pod(self, name, namespace="default", force=False):
        """``kubectl delete pod``; ``force`` is --grace-period=0."""
        pod = self.api.get("Pod", name, namespace)
        pod.deletion_requested = True
        self.api.update(pod)
        if force:
            kubelet = self.cluster.kubelet_for(pod.node_name)
            if kubelet is not None and kubelet.alive:
                kubelet.kill_pod_containers(pod)
                kubelet._finalize_deletion(pod)
            else:
                from .kubelet import release_pod_resources

                release_pod_resources(self.api, pod)
                if self.api.exists("Pod", name, namespace):
                    self.api.delete("Pod", name, namespace)
        return pod

    def crash_container(self, pod_name, container_name, namespace="default"):
        """Kill one container process in place (restart policy applies)."""
        pod = self.api.get("Pod", pod_name, namespace)
        kubelet = self.cluster.kubelet_for(pod.node_name)
        if kubelet is None or not kubelet.alive:
            raise NotFoundError(f"no live kubelet for pod {pod_name}")
        return kubelet.crash_container(pod, container_name)

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------

    def cordon(self, node_name):
        node = self.api.get("Node", node_name, namespace="")
        node.unschedulable = True
        self.api.update(node)

    def uncordon(self, node_name):
        node = self.api.get("Node", node_name, namespace="")
        node.unschedulable = False
        self.api.update(node)

    def drain(self, node_name):
        """Cordon plus graceful eviction of every pod on the node."""
        self.cordon(node_name)
        for pod in self.api.list("Pod"):
            if pod.node_name == node_name and not pod.is_terminal():
                pod.deletion_requested = True
                self.api.update(pod)
