"""The cluster API server: resource stores, watches, events.

Controllers and kubelets coordinate exclusively through here, mirroring
the real architecture: declarative resources in a store, reconciled by
loops that never talk to each other directly.
"""

from ..sim.channels import Channel
from .errors import ConflictError, NotFoundError


class ResourceWatch(Channel):
    """A watch subscription: a channel of ``(event_type, resource)``.

    Behaves exactly like a :class:`Channel` (so existing drain-style
    consumers keep working) but knows how to deregister itself —
    watchers that die without cancelling used to leak in the API
    server's ``_watchers`` list forever.
    """

    def __init__(self, api, kind):
        super().__init__(api.kernel, name=f"watch:{kind}")
        self._api = api
        self.kind = kind

    def cancel(self):
        """Deregister and close; idempotent."""
        self._api.unwatch(self)


class ClusterEvent:
    """A recorded cluster event (kubectl get events)."""

    __slots__ = ("time", "kind", "name", "reason", "message")

    def __init__(self, time, kind, name, reason, message):
        self.time = time
        self.kind = kind
        self.name = name
        self.reason = reason
        self.message = message

    def __repr__(self):
        return f"<Event {self.time:.2f} {self.kind}/{self.name} {self.reason}>"


class ApiServer:
    """Typed, namespaced resource stores with watch channels."""

    def __init__(self, kernel, tracer=None):
        self.kernel = kernel
        self.tracer = tracer
        self._stores = {}
        # Per-kind list() cache, sorted by (creation_time, name). Both
        # sort-key fields are immutable after create, so updates never
        # reorder it; creates append (monotone clock) and deletes remove
        # in place. None = rebuild on next list().
        self._sorted = {}
        # (namespace, selector) list() results, cached per kind. Labels
        # and namespace are set only at construction (no call site
        # mutates them afterwards), so membership changes only on
        # create/delete — updates leave every filtered list valid.
        self._filtered = {}
        self._watchers = {}
        self.events = []

    def _store(self, kind):
        return self._stores.setdefault(kind, {})

    # ------------------------------------------------------------------
    # CRUD
    # ------------------------------------------------------------------

    def create(self, resource):
        store = self._store(resource.kind)
        key = resource.metadata.key
        if key in store:
            raise ConflictError(f"{resource.kind} {key} already exists")
        resource.metadata.creation_time = self.kernel.now
        resource.metadata.resource_version = 1
        store[key] = resource
        cache = self._sorted.get(resource.kind)
        if cache is not None:
            if not cache or (
                (cache[-1].metadata.creation_time or 0.0, cache[-1].metadata.name)
                <= (resource.metadata.creation_time or 0.0, resource.metadata.name)
            ):
                cache.append(resource)
            else:
                self._sorted[resource.kind] = None
        self._filtered.pop(resource.kind, None)
        self._notify(resource.kind, "ADDED", resource)
        return resource

    def get(self, kind, name, namespace="default"):
        resource = self._store(kind).get((namespace, name))
        if resource is None:
            raise NotFoundError(f"{kind} {namespace}/{name}")
        return resource

    def get_or_none(self, kind, name, namespace="default"):
        return self._store(kind).get((namespace, name))

    def list(self, kind, namespace=None, selector=None, owner=None):
        cache = self._sorted.get(kind)
        if cache is None:
            cache = sorted(
                self._store(kind).values(),
                key=lambda r: (r.metadata.creation_time or 0.0, r.metadata.name),
            )
            self._sorted[kind] = cache
        # Filtering a pre-sorted list equals sorting the filtered list:
        # the stable sort keeps insertion order within key ties either
        # way. Always return a fresh list; the caches are private.
        if namespace is None and selector is None and owner is None:
            return list(cache)
        filter_key = (namespace,
                      tuple(sorted(selector.items())) if selector else None,
                      owner)
        filtered = self._filtered.setdefault(kind, {})
        out = filtered.get(filter_key)
        if out is None:
            out = []
            for resource in cache:
                metadata = resource.metadata
                if namespace is not None and metadata.namespace != namespace:
                    continue
                if owner is not None and metadata.owner != owner:
                    continue
                if selector is not None:
                    labels = metadata.labels
                    matched = True
                    for key, value in selector.items():
                        if labels.get(key) != value:
                            matched = False
                            break
                    if not matched:
                        continue
                out.append(resource)
            filtered[filter_key] = out
        return list(out)

    def update(self, resource):
        store = self._store(resource.kind)
        key = resource.metadata.key
        if key not in store:
            raise NotFoundError(f"{resource.kind} {key}")
        resource.metadata.resource_version += 1
        self._notify(resource.kind, "MODIFIED", resource)
        return resource

    def delete(self, kind, name, namespace="default"):
        store = self._store(kind)
        resource = store.pop((namespace, name), None)
        if resource is None:
            raise NotFoundError(f"{kind} {namespace}/{name}")
        cache = self._sorted.get(kind)
        if cache is not None:
            try:
                cache.remove(resource)
            except ValueError:
                self._sorted[kind] = None
        self._filtered.pop(kind, None)
        self._notify(kind, "DELETED", resource)
        return resource

    def exists(self, kind, name, namespace="default"):
        return (namespace, name) in self._store(kind)

    # ------------------------------------------------------------------
    # Watches & events
    # ------------------------------------------------------------------

    def watch(self, kind):
        """A :class:`ResourceWatch` receiving (event_type, resource)
        for ``kind``; call ``cancel()`` when done watching."""
        channel = ResourceWatch(self, kind)
        self._watchers.setdefault(kind, []).append(channel)
        return channel

    def unwatch(self, channel):
        """Deregister a watch channel and close it; idempotent."""
        registered = self._watchers.get(getattr(channel, "kind", None), [])
        try:
            registered.remove(channel)
        except ValueError:
            pass
        if not channel.closed:
            channel.close()

    def watcher_count(self, kind=None):
        """Live watch registrations (observability + leak tests)."""
        if kind is not None:
            return len(self._watchers.get(kind, []))
        return sum(len(channels) for channels in self._watchers.values())

    def _notify(self, kind, event_type, resource):
        channels = self._watchers.get(kind)
        if not channels:
            return
        live = [c for c in channels if not c.closed]
        if len(live) != len(channels):
            # Prune channels closed without cancel() (crashed watchers).
            self._watchers[kind] = live
        for channel in live:
            channel.put((event_type, resource))

    def record_event(self, kind, name, reason, message=""):
        event = ClusterEvent(self.kernel.now, kind, name, reason, message)
        self.events.append(event)
        if self.tracer is not None:
            self.tracer.emit("apiserver", "k8s-event", resource=kind, name=name,
                             reason=reason, message=message)
        return event
