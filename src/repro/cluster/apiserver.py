"""The cluster API server: resource stores, watches, events.

Controllers and kubelets coordinate exclusively through here, mirroring
the real architecture: declarative resources in a store, reconciled by
loops that never talk to each other directly.
"""

from ..sim.channels import Channel
from .errors import ConflictError, NotFoundError


class ResourceWatch(Channel):
    """A watch subscription: a channel of ``(event_type, resource)``.

    Behaves exactly like a :class:`Channel` (so existing drain-style
    consumers keep working) but knows how to deregister itself —
    watchers that die without cancelling used to leak in the API
    server's ``_watchers`` list forever.
    """

    def __init__(self, api, kind):
        super().__init__(api.kernel, name=f"watch:{kind}")
        self._api = api
        self.kind = kind

    def cancel(self):
        """Deregister and close; idempotent."""
        self._api.unwatch(self)


class ClusterEvent:
    """A recorded cluster event (kubectl get events)."""

    __slots__ = ("time", "kind", "name", "reason", "message")

    def __init__(self, time, kind, name, reason, message):
        self.time = time
        self.kind = kind
        self.name = name
        self.reason = reason
        self.message = message

    def __repr__(self):
        return f"<Event {self.time:.2f} {self.kind}/{self.name} {self.reason}>"


class ApiServer:
    """Typed, namespaced resource stores with watch channels."""

    def __init__(self, kernel, tracer=None):
        self.kernel = kernel
        self.tracer = tracer
        self._stores = {}
        self._watchers = {}
        self.events = []

    def _store(self, kind):
        return self._stores.setdefault(kind, {})

    # ------------------------------------------------------------------
    # CRUD
    # ------------------------------------------------------------------

    def create(self, resource):
        store = self._store(resource.kind)
        key = resource.metadata.key
        if key in store:
            raise ConflictError(f"{resource.kind} {key} already exists")
        resource.metadata.creation_time = self.kernel.now
        resource.metadata.resource_version = 1
        store[key] = resource
        self._notify(resource.kind, "ADDED", resource)
        return resource

    def get(self, kind, name, namespace="default"):
        resource = self._store(kind).get((namespace, name))
        if resource is None:
            raise NotFoundError(f"{kind} {namespace}/{name}")
        return resource

    def get_or_none(self, kind, name, namespace="default"):
        return self._store(kind).get((namespace, name))

    def list(self, kind, namespace=None, selector=None):
        out = []
        for resource in self._store(kind).values():
            if namespace is not None and resource.metadata.namespace != namespace:
                continue
            if selector is not None and not all(
                resource.metadata.labels.get(k) == v for k, v in selector.items()
            ):
                continue
            out.append(resource)
        out.sort(key=lambda r: (r.metadata.creation_time or 0.0, r.metadata.name))
        return out

    def update(self, resource):
        store = self._store(resource.kind)
        key = resource.metadata.key
        if key not in store:
            raise NotFoundError(f"{resource.kind} {key}")
        resource.metadata.resource_version += 1
        self._notify(resource.kind, "MODIFIED", resource)
        return resource

    def delete(self, kind, name, namespace="default"):
        store = self._store(kind)
        resource = store.pop((namespace, name), None)
        if resource is None:
            raise NotFoundError(f"{kind} {namespace}/{name}")
        self._notify(kind, "DELETED", resource)
        return resource

    def exists(self, kind, name, namespace="default"):
        return (namespace, name) in self._store(kind)

    # ------------------------------------------------------------------
    # Watches & events
    # ------------------------------------------------------------------

    def watch(self, kind):
        """A :class:`ResourceWatch` receiving (event_type, resource)
        for ``kind``; call ``cancel()`` when done watching."""
        channel = ResourceWatch(self, kind)
        self._watchers.setdefault(kind, []).append(channel)
        return channel

    def unwatch(self, channel):
        """Deregister a watch channel and close it; idempotent."""
        registered = self._watchers.get(getattr(channel, "kind", None), [])
        try:
            registered.remove(channel)
        except ValueError:
            pass
        if not channel.closed:
            channel.close()

    def watcher_count(self, kind=None):
        """Live watch registrations (observability + leak tests)."""
        if kind is not None:
            return len(self._watchers.get(kind, []))
        return sum(len(channels) for channels in self._watchers.values())

    def _notify(self, kind, event_type, resource):
        channels = self._watchers.get(kind)
        if not channels:
            return
        live = [c for c in channels if not c.closed]
        if len(live) != len(channels):
            # Prune channels closed without cancel() (crashed watchers).
            self._watchers[kind] = live
        for channel in live:
            channel.put((event_type, resource))

    def record_event(self, kind, name, reason, message=""):
        event = ClusterEvent(self.kernel.now, kind, name, reason, message)
        self.events.append(event)
        if self.tracer is not None:
            self.tracer.emit("apiserver", "k8s-event", resource=kind, name=name,
                             reason=reason, message=message)
        return event
