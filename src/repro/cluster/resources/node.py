"""Cluster nodes: GPU-bearing machines."""

from .meta import ObjectMeta

READY = "Ready"
NOT_READY = "NotReady"


class NodeResources:
    """Allocatable capacity of a node."""

    def __init__(self, gpus=0, gpu_type=None, cpu_millicores=16000, memory_mb=65536):
        self.gpus = gpus
        self.gpu_type = gpu_type
        self.cpu_millicores = cpu_millicores
        self.memory_mb = memory_mb


class Node:
    """One machine in the cluster."""

    kind = "Node"

    def __init__(self, name, resources=None, labels=None):
        self.metadata = ObjectMeta(name, namespace="", labels=labels)
        self.capacity = resources or NodeResources()
        self.condition = READY
        self.unschedulable = False  # cordon
        self.last_heartbeat = 0.0
        # name -> pod resource totals currently bound here
        self.allocated_gpus = 0
        self.allocated_cpu = 0
        self.allocated_memory = 0

    def can_fit(self, pod_spec):
        if self.condition != READY or self.unschedulable:
            return False
        if pod_spec.gpu_type and pod_spec.gpu_type != self.capacity.gpu_type:
            return False
        if not all(self.metadata.labels.get(k) == v
                   for k, v in pod_spec.node_selector.items()):
            return False
        return (
            self.allocated_gpus + pod_spec.total_gpus <= self.capacity.gpus
            and self.allocated_cpu + pod_spec.total_cpu <= self.capacity.cpu_millicores
            and self.allocated_memory + pod_spec.total_memory <= self.capacity.memory_mb
        )

    def allocate(self, pod_spec):
        self.allocated_gpus += pod_spec.total_gpus
        self.allocated_cpu += pod_spec.total_cpu
        self.allocated_memory += pod_spec.total_memory

    def release(self, pod_spec):
        self.allocated_gpus -= pod_spec.total_gpus
        self.allocated_cpu -= pod_spec.total_cpu
        self.allocated_memory -= pod_spec.total_memory

    @property
    def free_gpus(self):
        return self.capacity.gpus - self.allocated_gpus

    def __repr__(self):
        return (f"<Node {self.metadata.name} {self.condition} "
                f"gpus={self.allocated_gpus}/{self.capacity.gpus}>")
