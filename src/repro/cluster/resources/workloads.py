"""Controller-managed workload resources: Job, StatefulSet, Deployment.

These are the three Kubernetes abstractions DLaaS builds on (paper
§III): the Guardian is a K8S *Job* (run to completion, restarted on
crash), learners are a *StatefulSet* (stable identity, auto-restart),
and helpers plus core services are *Deployments* (replica maintenance).
"""

from ..errors import InvalidResource
from .meta import ObjectMeta


class PodTemplate:
    """Spec + labels stamped onto every pod a controller creates."""

    def __init__(self, spec_factory, labels=None):
        if not callable(spec_factory):
            raise InvalidResource("PodTemplate needs a zero-arg spec factory")
        self._spec_factory = spec_factory
        self.labels = dict(labels or {})

    def make_spec(self):
        """A fresh PodSpec per pod — container workloads must not be shared."""
        return self._spec_factory()


class Job:
    """Run-to-completion semantics with retries (the Guardian's home)."""

    kind = "Job"

    def __init__(self, name, template, namespace="default", backoff_limit=6,
                 labels=None):
        if backoff_limit < 0:
            raise InvalidResource("backoff_limit must be >= 0")
        self.metadata = ObjectMeta(name, namespace=namespace, labels=labels)
        self.template = template
        self.backoff_limit = backoff_limit
        self.succeeded = False
        self.failed = False
        self.failures = 0
        self.active_pod = None
        self.completion_time = None

    @property
    def complete(self):
        return self.succeeded or self.failed


class StatefulSet:
    """N replicas with stable ordinal identity (the learners' home)."""

    kind = "StatefulSet"

    def __init__(self, name, template, replicas, namespace="default", labels=None):
        if replicas < 0:
            raise InvalidResource("replicas must be >= 0")
        self.metadata = ObjectMeta(name, namespace=namespace, labels=labels)
        self.template = template
        self.replicas = replicas
        self.deletion_requested = False

    def pod_name(self, ordinal):
        return f"{self.metadata.name}-{ordinal}"


class Deployment:
    """Keep N interchangeable replicas alive (core services, helpers)."""

    kind = "Deployment"

    def __init__(self, name, template, replicas=1, namespace="default", labels=None):
        if replicas < 0:
            raise InvalidResource("replicas must be >= 0")
        self.metadata = ObjectMeta(name, namespace=namespace, labels=labels)
        self.template = template
        self.replicas = replicas
        self.deletion_requested = False
        self._pod_counter = 0

    def next_pod_name(self):
        self._pod_counter += 1
        return f"{self.metadata.name}-{self._pod_counter}"


class Service:
    """A virtual name selecting pods by label; backs load balancing."""

    kind = "Service"

    def __init__(self, name, selector, namespace="default", labels=None):
        self.metadata = ObjectMeta(name, namespace=namespace, labels=labels)
        self.selector = dict(selector)


class NetworkPolicy:
    """Isolation: which peers may talk to the selected pods.

    DLaaS applies these to learner pods so arbitrary user code cannot
    reach platform services or other tenants (paper §II, §III.d).
    """

    kind = "NetworkPolicy"

    def __init__(self, name, pod_selector, allow_from_selectors=(), namespace="default"):
        self.metadata = ObjectMeta(name, namespace=namespace)
        self.pod_selector = dict(pod_selector)
        self.allow_from_selectors = [dict(s) for s in allow_from_selectors]


class PersistentVolumeClaim:
    """A claim the provisioner binds to an NFS volume."""

    kind = "PersistentVolumeClaim"

    def __init__(self, name, namespace="default", size_mb=10240):
        self.metadata = ObjectMeta(name, namespace=namespace)
        self.size_mb = size_mb
        self.bound_volume = None  # NFS volume name once provisioned

    @property
    def bound(self):
        return self.bound_volume is not None
