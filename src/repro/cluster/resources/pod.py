"""Pods and containers — the unit of scheduling and execution."""

from ..errors import InvalidResource
from .meta import ObjectMeta

PENDING = "Pending"
RUNNING = "Running"
SUCCEEDED = "Succeeded"
FAILED = "Failed"

RESTART_ALWAYS = "Always"
RESTART_ON_FAILURE = "OnFailure"
RESTART_NEVER = "Never"

_RESTART_POLICIES = frozenset({RESTART_ALWAYS, RESTART_ON_FAILURE, RESTART_NEVER})


class ContainerSpec:
    """One container: an image plus a simulated workload.

    ``workload`` is a generator *function* taking a
    :class:`~repro.cluster.kubelet.ContainerContext`; it is invoked
    fresh on every (re)start of the container. Returning an int sets
    the exit code (None means 0); raising means exit code 1; a kill
    (crash, eviction) reports 137.
    """

    def __init__(self, name, image, workload=None, gpus=0, cpu_millicores=100,
                 memory_mb=256, env=None):
        if gpus < 0 or cpu_millicores < 0 or memory_mb < 0:
            raise InvalidResource(f"negative resource request on container {name!r}")
        self.name = name
        self.image = image
        self.workload = workload
        self.gpus = gpus
        self.cpu_millicores = cpu_millicores
        self.memory_mb = memory_mb
        self.env = dict(env or {})


class ContainerStatus:
    """Runtime status of one container within a pod."""

    def __init__(self, name):
        self.name = name
        self.state = "waiting"  # waiting | running | terminated
        self.exit_code = None
        self.restart_count = 0
        self.started_at = None
        self.finished_at = None


class PodSpec:
    """What to run and where it may run."""

    def __init__(self, containers, restart_policy=RESTART_ALWAYS, volumes=None,
                 node_selector=None, gpu_type=None, priority=0,
                 termination_grace=0.5, gang=None, gang_size=0):
        if not containers:
            raise InvalidResource("a pod needs at least one container")
        names = [c.name for c in containers]
        if len(set(names)) != len(names):
            raise InvalidResource(f"duplicate container names: {names}")
        if restart_policy not in _RESTART_POLICIES:
            raise InvalidResource(f"bad restart policy {restart_policy!r}")
        self.containers = list(containers)
        self.restart_policy = restart_policy
        # volumes: logical name -> PVC claim name
        self.volumes = dict(volumes or {})
        self.node_selector = dict(node_selector or {})
        self.gpu_type = gpu_type
        self.priority = priority
        self.termination_grace = termination_grace
        # Gang scheduling: pods sharing a gang name are placed
        # all-or-nothing when gang_size of them are pending together —
        # partial placement of a synchronous distributed job would hold
        # GPUs at the MPI wire-up barrier forever.
        if gang is not None and gang_size < 2:
            raise InvalidResource("gang scheduling needs gang_size >= 2")
        self.gang = gang
        self.gang_size = gang_size

    @property
    def total_gpus(self):
        return sum(c.gpus for c in self.containers)

    @property
    def total_cpu(self):
        return sum(c.cpu_millicores for c in self.containers)

    @property
    def total_memory(self):
        return sum(c.memory_mb for c in self.containers)


class Pod:
    """A scheduled, running (or finished) instance of a PodSpec."""

    kind = "Pod"

    def __init__(self, name, spec, namespace="default", labels=None, owner=None):
        self.metadata = ObjectMeta(name, namespace=namespace, labels=labels, owner=owner)
        self.spec = spec
        self.phase = PENDING
        self.node_name = None
        self.container_statuses = {c.name: ContainerStatus(c.name) for c in spec.containers}
        self.start_time = None
        self.finish_time = None
        self.deletion_requested = False
        self.message = ""

    @property
    def restart_count(self):
        return sum(cs.restart_count for cs in self.container_statuses.values())

    def is_terminal(self):
        return self.phase in (SUCCEEDED, FAILED)

    def __repr__(self):
        return f"<Pod {self.metadata.namespace}/{self.metadata.name} {self.phase}>"
