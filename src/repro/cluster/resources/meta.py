"""Object metadata, labels and selectors."""

import itertools

_uid_counter = itertools.count(1)


class ObjectMeta:
    """Name/namespace/labels/uid for every cluster resource."""

    def __init__(self, name, namespace="default", labels=None, annotations=None,
                 owner=None):
        if not name:
            raise ValueError("resources need a name")
        self.name = name
        self.namespace = namespace
        self.labels = dict(labels or {})
        self.annotations = dict(annotations or {})
        self.owner = owner  # (kind, name) of the controller that made this
        self.uid = f"uid-{next(_uid_counter)}"
        self.creation_time = None  # stamped by the API server
        self.resource_version = 0

    @property
    def key(self):
        return (self.namespace, self.name)

    def __repr__(self):
        return f"<ObjectMeta {self.namespace}/{self.name}>"


def selector_matches(selector, labels):
    """True if every (k, v) in ``selector`` appears in ``labels``."""
    return all(labels.get(key) == value for key, value in selector.items())
