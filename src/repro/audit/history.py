"""Flight recorder for raftkv client operations.

Jepsen-style consistency checking needs a complete *client-side*
history: for every operation the invocation time, the response time,
and one of four outcomes —

* ``ok``    — the client saw a successful response,
* ``fail``  — the operation definitely did not take effect (a read
  that never completed, or a write whose every attempt was rejected
  before reaching a log),
* ``info``  — the outcome is unknown: some attempt reached the wire
  and may have applied even though the client saw no response
  (timeouts, retry-budget exhaustion, the client process dying
  mid-call),
* ``invoke`` — still pending.

The recorder is a plain in-memory append log fed by direct method
calls from :class:`repro.raftkv.client.EtcdClient` — no RPCs, no
kernel events, no RNG draws — so with recording enabled and no fault
injected the simulated timeline is bit-identical to a run without it
(the digest identity gated by ``benchmarks/bench_consistency.py``).

Two bookkeeping sets narrow the checker's model to what it can verify:
keys ever written with a lease attached (the lease sweeper deletes
them outside any client history) and prefixes hit by ``delete_prefix``
are marked *unauditable* and skipped by the
:class:`~repro.audit.auditor.ConsistencyAuditor`.
"""

__all__ = ["HistoryRecorder", "OpRecord"]


class OpRecord:
    """One client operation, from invocation to (maybe) response."""

    __slots__ = ("client", "op", "key", "args", "op_id", "status",
                 "result", "error", "invoke_time", "invoke_seq",
                 "response_time", "response_seq", "attempts")

    def __init__(self, client, op, key, args, op_id, invoke_time,
                 invoke_seq):
        self.client = client
        self.op = op
        self.key = key
        self.args = args
        self.op_id = op_id
        self.status = "invoke"
        self.result = None
        self.error = None
        self.invoke_time = invoke_time
        self.invoke_seq = invoke_seq
        self.response_time = None
        self.response_seq = None
        self.attempts = 0

    @property
    def pending(self):
        return self.status == "invoke"

    def to_doc(self):
        return {
            "client": self.client, "op": self.op, "key": self.key,
            "args": self.args, "op_id": self.op_id, "status": self.status,
            "result": self.result, "error": self.error,
            "invoke_time": self.invoke_time, "invoke_seq": self.invoke_seq,
            "response_time": self.response_time,
            "response_seq": self.response_seq, "attempts": self.attempts,
        }

    def __repr__(self):
        return (f"OpRecord({self.client} #{self.op_id} {self.op}"
                f"({self.key!r}) {self.status} @"
                f"[{self.invoke_time}, {self.response_time}])")


class HistoryRecorder:
    """Append-only log of client operations, indexed per key.

    Sequence numbers (``invoke_seq`` / ``response_seq``) give the
    checker an exact happened-before order: the simulation is
    single-threaded, so *A precedes B* iff A's response was recorded
    before B's invocation — strictly finer than comparing simulated
    timestamps, which collide freely at the same kernel tick.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.records = []
        self._by_key = {}
        self._next_seq = 0
        self._leased_keys = set()
        self._unmodeled_prefixes = []

    # ------------------------------------------------------------------
    # Recording (called by EtcdClient; no RPCs, no kernel interaction)
    # ------------------------------------------------------------------

    def _seq(self):
        seq = self._next_seq
        self._next_seq = seq + 1
        return seq

    def invoke(self, client, op, key, args, op_id=None):
        record = OpRecord(client, op, key, args, op_id,
                          self.kernel.now, self._seq())
        self.records.append(record)
        self._by_key.setdefault(key, []).append(record)
        return record

    def _finish(self, record, status):
        if not record.pending:
            raise RuntimeError(f"operation completed twice: {record!r}")
        record.status = status
        record.response_time = self.kernel.now
        record.response_seq = self._seq()

    def complete(self, record, result):
        """The operation succeeded with a definite result."""
        record.result = result
        self._finish(record, "ok")

    def fail(self, record, error=None):
        """The operation definitely did not take effect."""
        record.error = repr(error) if error is not None else None
        self._finish(record, "fail")

    def info(self, record, error=None):
        """Outcome unknown: the operation *may* have taken effect."""
        record.error = repr(error) if error is not None else None
        self._finish(record, "info")

    # ------------------------------------------------------------------
    # Model scope
    # ------------------------------------------------------------------

    def mark_leased(self, key):
        """Lease-attached keys expire outside any client op; skip them."""
        self._leased_keys.add(key)

    def mark_prefix(self, prefix):
        """``delete_prefix`` mutates many keys in one op; skip them."""
        if prefix not in self._unmodeled_prefixes:
            self._unmodeled_prefixes.append(prefix)

    def auditable(self, key):
        if key in self._leased_keys:
            return False
        return not any(key.startswith(p) for p in self._unmodeled_prefixes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def keys(self):
        return self._by_key.keys()

    def ops_for_key(self, key):
        """The append-only per-key record list (do not mutate)."""
        return self._by_key.get(key, ())

    def counts(self):
        out = {"ok": 0, "fail": 0, "info": 0, "invoke": 0}
        for record in self.records:
            out[record.status] += 1
        return out

    def __len__(self):
        return len(self.records)
