"""Linearizability checker for the raftkv register/CAS/delete model.

Given a recorded client history (see :mod:`repro.audit.history`), the
checker decides whether the operations on each key can be arranged in
a single total order that (a) respects real-time precedence — if A's
response was recorded before B's invocation, A comes first — and
(b) steps a sequential register model (``put`` / ``get`` / ``cas`` /
``delete`` over one value-or-absent cell) through exactly the observed
results. This is the Wing & Gong search with the usual refinements:

* **per-key partitioning** — keys are independent registers, so each
  is checked on its own (exponentially smaller search spaces);
* **memoized configurations** — the search explores ``(done-set,
  state)`` pairs, with the done-set packed into an int bitmask, and
  never revisits one (Jepsen's "just-in-time linearization" cache);
* **maybe-applied ops** — ``info`` outcomes (timeouts, killed
  clients) have no response edge, may linearize anywhere after their
  invocation, *or never* — a complete linearization only has to place
  every ``ok`` op; ``fail`` ops and indeterminate reads are dropped
  before the search (a lost read constrains nothing).

Precedence comes from recorder *sequence numbers*, not timestamps:
the simulation is single-threaded, so the append order of the history
log is the exact real-time order and never collides.

On failure the checker reports a witness: a minimal sub-history (greedy
delta-debugging — any recorded op whose removal keeps the history
failing is dropped) plus the longest linearizable prefix found and a
per-op explanation of why nothing can linearize next.
``render_witness`` turns that into the counterexample text printed by
``scripts/audit_report.py``.
"""

__all__ = [
    "CheckBudgetExceeded", "CheckResult", "KeyOutcome",
    "check_history", "check_operations", "render_witness",
]

_INF = float("inf")

DEFAULT_MAX_CONFIGS = 200_000

# Witnesses above this size skip the delta-debugging pass (quadratic
# in history length); the failing key's history is reported whole.
_MINIMIZE_CAP = 200


class CheckBudgetExceeded(RuntimeError):
    """The search visited more configurations than the budget allows."""


class KeyOutcome:
    """Verdict for one key's operations."""

    __slots__ = ("ok", "final_states", "witness", "ops_considered")

    def __init__(self, ok, final_states=None, witness=None,
                 ops_considered=0):
        self.ok = ok
        self.final_states = final_states
        self.witness = witness
        self.ops_considered = ops_considered


class CheckResult:
    """Verdict for a whole history (all keys)."""

    __slots__ = ("ok", "ops_checked", "keys_checked", "violations")

    def __init__(self):
        self.ok = True
        self.ops_checked = 0
        self.keys_checked = 0
        self.violations = []


# ----------------------------------------------------------------------
# Sequential model: one register holding a string value, or absent
# ----------------------------------------------------------------------

def _droppable(record):
    """Ops that constrain nothing: definite failures, and reads whose
    outcome was never observed (an unapplied read has no effect; an
    applied-but-unobserved one permits every state)."""
    if record.status == "fail":
        return True
    return record.status in ("info", "invoke") and record.op == "get"


def _transitions(state, record):
    """Possible next states when linearizing ``record`` at ``state``.

    Empty tuple = infeasible here. ``ok`` ops must reproduce the
    observed result; maybe-applied mutations transition freely (their
    output was never observed, so only the state change constrains).
    """
    op = record.op
    if record.status != "ok":  # maybe-applied mutation
        if op == "put":
            return (record.args,)
        if op == "delete":
            return (None,)
        if op == "cas":
            expected, new = record.args
            return (new,) if state == expected else (state,)
        return ()
    result = record.result
    if op == "put":
        if isinstance(result, dict) and not result.get("ok", True):
            return ()  # rejected (e.g. unknown lease): no state change
        return (record.args,)
    if op == "get":
        return (state,) if state == result else ()
    if op == "delete":
        deleted = bool(result.get("deleted")) if isinstance(result, dict) \
            else bool(result)
        return (None,) if deleted == (state is not None) else ()
    if op == "cas":
        expected, new = record.args
        if isinstance(result, dict) and not result.get("ok", True):
            # observed failure must match the model state
            if state != expected and result.get("actual", state) == state:
                return (state,)
            return ()
        return (new,) if state == expected else ()
    raise ValueError(f"unmodeled operation in history: {record!r}")


def _explain(state, record):
    """Why ``record`` cannot linearize at ``state`` (for the witness)."""
    op, result = record.op, record.result
    if op == "get":
        return (f"get observed {result!r} but the register holds "
                f"{state!r} in every reachable linearization")
    if op == "delete":
        return (f"delete observed deleted={result.get('deleted')!r} "
                f"but the register {'holds ' + repr(state) if state is not None else 'is empty'}")
    if op == "cas":
        expected, new = record.args
        if isinstance(result, dict) and not result.get("ok", True):
            return (f"cas(expected={expected!r}) observed failure with "
                    f"actual={result.get('actual')!r} but the register "
                    f"holds {state!r}")
        return (f"cas(expected={expected!r} -> {new!r}) succeeded but "
                f"the register holds {state!r}")
    return f"{op} result {result!r} is impossible from state {state!r}"


def _freeze(value):
    """Hashable canonical form of a register value, for the visited
    set and final-state dedup. Platform clients store dicts/lists in
    etcd; the model compares raw values but hashes frozen ones."""
    if isinstance(value, dict):
        return ("__dict__", tuple(sorted(
            (k, _freeze(v)) for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return ("__seq__", tuple(_freeze(v) for v in value))
    return value


# ----------------------------------------------------------------------
# Wing & Gong search
# ----------------------------------------------------------------------

def _search(ops, initial_states, collect_final, max_configs):
    """Explore (done-mask, state) configurations depth-first.

    Returns ``(ok, final_states, best_path, best_state)`` where
    ``best_path`` is the longest linearization order reached (a list of
    op indices) and ``best_state`` the register value it ends in.
    """
    n = len(ops)
    required_mask = 0
    for i, record in enumerate(ops):
        if record.status == "ok":
            required_mask |= 1 << i
    full_mask = (1 << n) - 1
    inv = [record.invoke_seq for record in ops]
    resp = [record.response_seq if record.status == "ok" else _INF
            for record in ops]

    def expand(mask, state):
        pending = [i for i in range(n) if not mask >> i & 1]
        if not pending:
            return
        min_resp = min(resp[i] for i in pending)
        for i in pending:
            if inv[i] >= min_resp:
                continue  # someone responded before this was invoked
            for next_state in _transitions(state, ops[i]):
                yield i, next_state

    visited = set()
    finals = {}  # frozen state -> raw state (dedup, insertion-ordered)
    best_path, best_state = [], None
    ok = required_mask == 0 and not collect_final

    for start_state in initial_states:
        if not best_path:
            best_state = start_state
        root = (0, _freeze(start_state))
        if root in visited:
            continue
        visited.add(root)
        if collect_final and n == 0:
            finals.setdefault(root[1], start_state)
            continue
        stack = [(0, start_state, expand(0, start_state))]
        path = []
        while stack:
            mask, state, branches = stack[-1]
            advanced = False
            for i, next_state in branches:
                next_mask = mask | 1 << i
                config = (next_mask, _freeze(next_state))
                if config in visited:
                    continue
                visited.add(config)
                if len(visited) > max_configs:
                    raise CheckBudgetExceeded(
                        f"linearizability search exceeded {max_configs} "
                        f"configurations over {n} operations")
                path.append(i)
                if len(path) > len(best_path):
                    best_path = list(path)
                    best_state = next_state
                if next_mask & required_mask == required_mask:
                    ok = True
                    if not collect_final:
                        return True, None, best_path, best_state
                    if next_mask == full_mask:
                        finals.setdefault(config[1], next_state)
                stack.append((next_mask, next_state,
                              expand(next_mask, next_state)))
                advanced = True
                break
            if not advanced:
                stack.pop()
                if path:
                    path.pop()
    if collect_final:
        return bool(finals), tuple(finals.values()), best_path, best_state
    return ok, None, best_path, best_state


def check_operations(ops, initial_states=(None,), collect_final=False,
                     max_configs=DEFAULT_MAX_CONFIGS, minimize=True):
    """Check one key's operations against the register model.

    ``initial_states`` is the set of values the register may hold
    before the first op (the auditor chains segment outcomes through
    it). With ``collect_final`` the search is exhaustive and the
    outcome carries every reachable end state — only meaningful for
    fully-completed segments, and required by the auditor's
    compaction.
    """
    ops = sorted((record for record in ops if not _droppable(record)),
                 key=lambda record: record.invoke_seq)
    considered = len(ops)
    if collect_final and any(record.status != "ok" for record in ops):
        raise ValueError("collect_final requires a fully-ok segment")
    ok, finals, best_path, best_state = _search(
        ops, initial_states, collect_final, max_configs)
    if ok:
        return KeyOutcome(True, final_states=finals,
                          ops_considered=considered)
    if minimize and len(ops) <= _MINIMIZE_CAP:
        ops = _minimize(ops, initial_states, max_configs)
        _, _, best_path, best_state = _search(
            ops, initial_states, False, max_configs)
    witness = _build_witness(ops, initial_states, best_path, best_state)
    return KeyOutcome(False, witness=witness, ops_considered=considered)


def check_history(history, max_configs=DEFAULT_MAX_CONFIGS):
    """Check every auditable key of a :class:`HistoryRecorder` (or any
    object with ``keys()`` / ``ops_for_key()`` / ``auditable()``)."""
    result = CheckResult()
    for key in sorted(history.keys()):
        if not history.auditable(key):
            continue
        outcome = check_operations(history.ops_for_key(key),
                                   max_configs=max_configs)
        result.keys_checked += 1
        result.ops_checked += outcome.ops_considered
        if not outcome.ok:
            result.ok = False
            result.violations.append(outcome.witness)
    return result


# ----------------------------------------------------------------------
# Witness construction
# ----------------------------------------------------------------------

def _minimize(ops, initial_states, max_configs):
    """Greedy delta-debugging: drop any op whose removal keeps the
    history non-linearizable. Sub-histories of a linearizable history
    are linearizable, so the surviving subset is a genuine witness."""

    def fails(subset):
        try:
            return not _search(subset, initial_states, False,
                               max_configs)[0]
        except CheckBudgetExceeded:
            return False  # keep the op rather than overclaim

    current = list(ops)
    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for record in list(current):
            trial = [op for op in current if op is not record]
            if fails(trial):
                current = trial
                shrunk = True
    return current


def _summarize(record):
    doc = record.to_doc()
    if record.op == "get" and record.status == "ok":
        doc["observed"] = record.result
    return doc


def _build_witness(ops, initial_states, best_path, best_state):
    linearized = [ops[i] for i in best_path]
    done = set(best_path)
    stuck = []
    for i, record in enumerate(ops):
        if i in done or _droppable(record) or record.status != "ok":
            continue
        stuck.append({"op": _summarize(record),
                      "reason": _explain(best_state, record)})
    key = ops[0].key if ops else None
    return {
        "key": key,
        "initial_states": sorted(initial_states,
                                 key=lambda v: (v is not None, str(v))),
        "ops": [_summarize(record) for record in ops],
        "linearized": [_summarize(record) for record in linearized],
        "final_state": best_state,
        "stuck": stuck,
        "message": (f"history for key {key!r} is not linearizable: "
                    f"{len(linearized)}/{len(ops)} ops linearize, then "
                    f"every continuation contradicts an observed result"),
    }


def _fmt_op(doc):
    op, args = doc["op"], doc["args"]
    if op == "put":
        call = f"put({args!r})"
    elif op == "cas":
        call = f"cas({args[0]!r} -> {args[1]!r})"
    elif op == "delete":
        call = "delete()"
    else:
        call = "get()"
    outcome = doc["status"]
    if doc["status"] == "ok" and op == "get":
        outcome = f"ok = {doc['result']!r}"
    elif doc["status"] == "ok" and isinstance(doc["result"], dict):
        interesting = {k: v for k, v in doc["result"].items()
                       if k in ("ok", "deleted", "actual")}
        if interesting:
            outcome = f"ok {interesting}"
    window = (f"[{doc['invoke_time']:.3f}, "
              f"{doc['response_time']:.3f}]" if doc["response_time"]
              is not None else f"[{doc['invoke_time']:.3f}, ...)")
    return (f"{doc['client']:<16} #{str(doc['op_id']):<4} {call:<28} "
            f"{outcome:<24} {window}")


def render_witness(witness):
    """The human-readable counterexample for one violated key."""
    lines = [f"== linearizability violation: key {witness['key']!r} ==",
             witness["message"], "",
             f"initial state(s): {witness['initial_states']!r}",
             "", "recorded history (invocation order):"]
    lines += [f"  {_fmt_op(doc)}" for doc in witness["ops"]]
    lines += ["", "longest linearizable prefix:"]
    if witness["linearized"]:
        lines += [f"  {_fmt_op(doc)}" for doc in witness["linearized"]]
    else:
        lines.append("  (empty)")
    lines.append(f"  -> register ends as {witness['final_state']!r}")
    lines.append("")
    lines.append("no remaining operation can linearize next:")
    for entry in witness["stuck"]:
        lines.append(f"  {_fmt_op(entry['op'])}")
        lines.append(f"      {entry['reason']}")
    return "\n".join(lines)
