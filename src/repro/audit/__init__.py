"""Consistency audit: flight recorder + linearizability checking.

``repro.audit`` turns "we implement Raft, so the paper's etcd-backed
claims are exercised" into a *verified* property: the raftkv client
records a Jepsen-style operation history
(:class:`~repro.audit.history.HistoryRecorder`), a Wing&Gong checker
decides per-key linearizability
(:mod:`repro.audit.checker`), and a periodic auditor publishes the
verdict as monitoring signal
(:class:`~repro.audit.auditor.ConsistencyAuditor`). The nemesis soak
and seeded-bug scenarios live in :mod:`repro.audit.nemesis` (imported
directly by tests and benches — not re-exported here, to keep this
package importable from the monitoring stack without a cycle through
``repro.core``).
"""

from .auditor import ConsistencyAuditor
from .checker import (CheckBudgetExceeded, CheckResult, KeyOutcome,
                      check_history, check_operations, render_witness)
from .history import HistoryRecorder, OpRecord

__all__ = [
    "CheckBudgetExceeded", "CheckResult", "ConsistencyAuditor",
    "HistoryRecorder", "KeyOutcome", "OpRecord", "check_history",
    "check_operations", "render_witness",
]
