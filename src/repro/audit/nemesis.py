"""Nemesis soak: gray faults + crashes against etcd under client load.

The consistency-audit acceptance scenario: a handful of concurrent
clients hammer a dedicated key range with put/get/cas/delete while a
nemesis process mixes every gray impairment kind
(:class:`repro.core.faults.GrayFailureInjector`) with node crashes and
restarts — and the recorded client history must still pass the
linearizability checker. The companion
:func:`seeded_stale_read_scenario` flips the ``stale_reads`` toggle on
every node and deterministically manufactures a stale read, proving
the checker actually fails on a real violation.

Fault envelope (why the soak is survivable by design, not by luck):

* crashes always leave a majority up (at most one node down at once);
* one-way partitions cut a single direction of a single pair, so
  replication routes around them instead of stalling every commit;
* disk stalls stay under the Raft RPC timeout — slow, not dead;
* client->node partitions and loss produce timeouts the client
  records as ``info`` (maybe-applied), exercising the checker's
  indeterminacy handling.
"""

from ..core.faults import GrayFailureInjector
from ..raftkv import EtcdClient, NoLeader

__all__ = ["NemesisSoak", "seeded_stale_read_scenario"]


class NemesisSoak:
    """Concurrent KV load plus a mixed gray/crash nemesis."""

    KEY_PREFIX = "/audit/k"

    def __init__(self, platform, clients=4, keys=6, duration=40.0,
                 op_period=0.06, nemesis_period=3.0,
                 fault_duration=(1.0, 2.5), crash_restart_after=1.5):
        if platform.history is None:
            raise ValueError(
                "NemesisSoak needs PlatformConfig(history_recording=True)")
        self.platform = platform
        self.clients = clients
        self.keys = keys
        self.duration = duration
        self.op_period = op_period
        self.nemesis_period = nemesis_period
        self.fault_duration = fault_duration
        self.crash_restart_after = crash_restart_after
        self._deadline = None
        self.faults_injected = []  # (time, kind, target)
        self.ops_issued = 0

    # ------------------------------------------------------------------

    def run(self, grace=6.0):
        """Drive the whole scenario; returns a summary dict.

        Runs load+nemesis for ``duration``, then heals everything,
        restarts any crashed node, lets in-flight ops drain for
        ``grace``, and runs a final audit pass over the history.
        """
        platform = self.platform
        kernel = platform.kernel
        self._deadline = kernel.now + self.duration
        for i in range(self.clients):
            kernel.spawn(self._client(i), name=f"audit-client-{i}")
        kernel.spawn(self._nemesis(), name="audit-nemesis")
        platform.run_for(self.duration)

        # Quiesce: clear lingering faults, bring every member back, let
        # clients finish their in-flight retries.
        platform.network.heal_all()
        for node_id in platform.etcd.node_ids:
            node = platform.etcd.node(node_id)
            if not node.alive:
                node.restart()
            node.disk_stall = 0.0
        platform.run_for(grace)

        auditor = (platform.monitoring.auditor
                   if platform.monitoring is not None else None)
        if auditor is not None:
            auditor.audit_once()
            summary = auditor.summary()
            violations = auditor.violations
        else:
            from .checker import check_history
            result = check_history(platform.history)
            summary = {"ops_checked": result.ops_checked,
                       "violations": len(result.violations)}
            violations = result.violations
        counts = platform.history.counts()
        return {
            "ok": not violations,
            "violations": violations,
            "audit": summary,
            "history": counts,
            "ops_issued": self.ops_issued,
            "faults_injected": list(self.faults_injected),
        }

    # ------------------------------------------------------------------
    # Client load
    # ------------------------------------------------------------------

    def _client(self, index):
        platform = self.platform
        kernel = platform.kernel
        client_id = f"audit-client-{index}"
        etcd = EtcdClient(kernel, platform.network, platform.etcd,
                          client_id=client_id, history=platform.history,
                          max_attempts=20, rpc_deadline=0.3)
        rng = kernel.rng(f"audit:client:{index}")
        last_seen = {}  # key -> last value this client observed
        n = 0
        while kernel.now < self._deadline:
            key = f"{self.KEY_PREFIX}{rng.randrange(self.keys)}"
            roll = rng.random()
            n += 1
            self.ops_issued += 1
            try:
                if roll < 0.40:
                    yield from etcd.put(key, f"{client_id}:{n}")
                    last_seen[key] = f"{client_id}:{n}"
                elif roll < 0.70:
                    last_seen[key] = yield from etcd.get(key)
                elif roll < 0.90:
                    # Guess the last value we saw; both outcomes are
                    # checkable (success and observed-actual mismatch).
                    result = yield from etcd.cas(key, last_seen.get(key),
                                                 f"{client_id}:{n}")
                    if result.get("ok"):
                        last_seen[key] = f"{client_id}:{n}"
                else:
                    yield from etcd.delete(key)
                    last_seen[key] = None
            except NoLeader:
                pass  # recorded as fail/info; keep hammering
            yield kernel.sleep(self.op_period * (0.5 + rng.random()))

    # ------------------------------------------------------------------
    # Nemesis
    # ------------------------------------------------------------------

    def _nemesis(self):
        platform = self.platform
        kernel = platform.kernel
        injector = GrayFailureInjector(platform)
        rng = kernel.rng("audit:nemesis")
        node_ids = list(platform.etcd.node_ids)
        kinds = ("slow", "oneway-peer", "oneway-client", "loss",
                 "duplicate", "disk-stall", "crash")
        lo, hi = self.fault_duration
        while kernel.now < self._deadline - hi:
            yield kernel.sleep(self.nemesis_period * (0.5 + rng.random()))
            kind = kinds[rng.randrange(len(kinds))]
            duration = lo + rng.random() * (hi - lo)
            target = node_ids[rng.randrange(len(node_ids))]
            if kind == "slow":
                injector.slow_endpoint(target, extra_latency=0.03,
                                       duration=duration)
            elif kind == "oneway-peer":
                # One direction of one pair: replication detours, the
                # cluster keeps committing.
                peers = [n for n in node_ids if n != target]
                dst = peers[rng.randrange(len(peers))]
                injector.oneway_partition(target, dst, duration=duration)
            elif kind == "oneway-client":
                client = f"audit-client-{rng.randrange(self.clients)}"
                injector.oneway_partition(client, target,
                                          duration=duration)
            elif kind == "loss":
                injector.lossy_endpoint(target, loss=0.3,
                                        duration=duration)
            elif kind == "duplicate":
                injector.lossy_endpoint(target, duplicate=0.5,
                                        duration=duration)
            elif kind == "disk-stall":
                # Under the 0.06 s Raft rpc timeout: slow, not dead.
                injector.disk_stall_etcd(target, delay=0.04,
                                         duration=duration)
            else:
                if not self._crash(target):
                    continue
            self.faults_injected.append(
                (round(kernel.now, 3), kind, target))

    def _crash(self, node_id):
        """Crash one node if a majority stays up; restart it shortly."""
        cluster = self.platform.etcd
        node = cluster.node(node_id)
        majority = len(cluster.node_ids) // 2 + 1
        if not node.alive or cluster.alive_count() - 1 < majority:
            return False
        node.crash()
        kernel = self.platform.kernel

        def restart():
            yield kernel.sleep(self.crash_restart_after)
            if not node.alive:
                node.restart()

        kernel.spawn(restart(), name=f"audit-restart-{node_id}")
        return True


# ----------------------------------------------------------------------
# Seeded bug: deterministic stale read the checker must catch
# ----------------------------------------------------------------------

def seeded_stale_read_scenario(platform, key="/audit/seeded"):
    """Manufacture a stale read via the ``stale_reads`` node toggle.

    Sequence: write v1 through the current leader, partition that
    leader from its peers (it keeps believing it leads — its election
    timer only resets while LEADER), let the majority elect a
    replacement and commit v2, then read through the old leader. With
    ``stale_reads=True`` the deposed leader serves v1 from its frozen
    state machine — after v2's write completed — which is exactly the
    non-linearizable history the checker exists to catch. Returns the
    check result for ``key``; with the toggle off the same sequence
    passes (the lease turns the final read into a redirect to the new
    leader).
    """
    if platform.history is None:
        raise ValueError("seeded_stale_read_scenario needs "
                         "PlatformConfig(history_recording=True)")
    kernel = platform.kernel
    cluster = platform.etcd
    network = platform.network

    def run():
        writer = EtcdClient(kernel, network, cluster,
                            client_id="seeded-writer",
                            history=platform.history)
        yield from writer.put(key, "v1")
        old_leader = cluster.leader().node_id
        for peer in cluster.node_ids:
            if peer != old_leader:
                network.partition(old_leader, peer)
        # Majority side elects a replacement (election_max plus slack).
        deadline = kernel.now + 5.0
        while kernel.now < deadline:
            leader = cluster.leader()
            if leader is not None and leader.node_id != old_leader \
                    and leader.is_leader:
                break
            yield kernel.sleep(0.05)
        yield from writer.put(key, "v2")
        # A second client whose hint still points at the deposed
        # leader: with stale_reads it answers v1 from frozen state.
        reader = EtcdClient(kernel, network, cluster,
                            client_id="seeded-reader",
                            history=platform.history)
        reader._leader_hint = old_leader
        return (yield from reader.get(key))

    observed = platform.run_process(run(), limit=100_000)
    from .checker import check_operations
    outcome = check_operations(platform.history.ops_for_key(key))
    return observed, outcome
