"""Online consistency auditing of the recorded client history.

The :class:`ConsistencyAuditor` is a periodic kernel process that runs
the linearizability checker (:mod:`repro.audit.checker`) over the
flight recorder's history while the platform runs, so a consistency
violation surfaces as monitoring signal within one audit interval
instead of at scenario teardown:

* ``consistency_ops_checked_total`` — operations the checker has
  examined (the audit work counter benchmarked by
  ``bench_consistency.py``);
* ``consistency_violations_total{key}`` — incremented once per
  non-linearizable key, which the ``ConsistencyViolation`` alert rule
  in the default pack thresholds.

Unbounded histories would make each pass quadratic, so the auditor
*compacts*: per key it finds the longest closed prefix (every op
completed ``ok`` and responded before any later op was invoked — a
quiescent cut), checks it exhaustively once, and carries the set of
reachable register states across the cut as the next segment's initial
states. Maybe-applied (``info``) operations never respond, so they
block all later cuts for their key — exactly right, because a
maybe-applied write may take effect arbitrarily far in the future and
therefore can never be compacted away.

The auditor draws no RNG and emits no tracer records: with recording
enabled and no fault injected the simulated timeline stays
bit-identical (same argument as the metrics scraper).
"""

from .checker import (CheckBudgetExceeded, check_operations,
                      render_witness)
from .history import HistoryRecorder  # noqa: F401  (re-export context)

__all__ = ["ConsistencyAuditor"]


def closed_prefix(ops):
    """Length of the longest prefix of ``ops`` (invocation-ordered,
    droppable ops already removed) that is *closed*: all ``ok`` and
    fully responded before any later op's invocation."""
    cut = 0
    max_resp = -1
    for idx, record in enumerate(ops):
        if idx and record.invoke_seq > max_resp:
            cut = idx
        if record.status != "ok":
            return cut
        if record.response_seq > max_resp:
            max_resp = record.response_seq
    return len(ops)


class ConsistencyAuditor:
    """Periodically check the recorded history key by key."""

    def __init__(self, kernel, history, metrics=None, interval=5.0,
                 max_configs=200_000):
        if interval <= 0:
            raise ValueError(f"audit interval must be positive: {interval}")
        self.kernel = kernel
        self.history = history
        self.interval = interval
        self.max_configs = max_configs
        self.ops_checked = 0
        self.passes = 0
        self.violations = []        # witness dicts, in discovery order
        self.budget_exhausted = []  # keys whose search blew the budget
        self._cursor = {}   # key -> (next raw index, carried states)
        self._flagged = set()
        self._process = None
        self._m_checked = None
        self._m_violations = None
        if metrics is not None:
            self._m_checked = metrics.counter(
                "consistency_ops_checked_total",
                help="Client operations examined by the linearizability "
                     "checker")
            self._m_violations = metrics.counter(
                "consistency_violations_total", ("key",),
                help="Keys whose recorded client history is not "
                     "linearizable")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        self._process = self.kernel.spawn(self._run(),
                                          name="consistency-auditor")

    def stop(self):
        if self._process is not None:
            self._process.kill("consistency auditor stopped")
            self._process = None

    def _run(self):
        while True:
            yield self.kernel.sleep(self.interval)
            self.audit_once()

    # ------------------------------------------------------------------
    # One audit pass
    # ------------------------------------------------------------------

    def audit_once(self):
        """Check every auditable key; returns ops examined this pass."""
        examined = 0
        self.passes += 1
        for key in self.history.keys():
            if key in self._flagged or not self.history.auditable(key):
                continue
            examined += self._audit_key(key)
        if examined and self._m_checked is not None:
            self._m_checked.inc(examined)
        self.ops_checked += examined
        return examined

    def _audit_key(self, key):
        raw = self.history.ops_for_key(key)
        start, states = self._cursor.get(key, (0, (None,)))
        indexed = [(i, record) for i, record in
                   enumerate(raw[start:], start=start)
                   if not _dropped(record)]
        if not indexed:
            return 0
        ops = [record for _, record in indexed]
        examined = 0
        cut = closed_prefix(ops)
        if cut:
            outcome = self._check(key, ops[:cut], states,
                                  collect_final=True)
            examined += cut
            if outcome is None or not outcome.ok:
                return examined
            states = tuple(sorted(outcome.final_states,
                                  key=lambda v: (v is not None, str(v))))
            start = (indexed[cut][0] if cut < len(indexed) else len(raw))
            self._cursor[key] = (start, states)
        tail = ops[cut:]
        if tail:
            outcome = self._check(key, tail, states, collect_final=False)
            examined += len(tail)
            del outcome  # violation already latched in _check
        return examined

    def _check(self, key, ops, states, collect_final):
        try:
            outcome = check_operations(ops, initial_states=states,
                                       collect_final=collect_final,
                                       max_configs=self.max_configs)
        except CheckBudgetExceeded:
            # Can't decide this key anymore; freeze it rather than stall
            # every subsequent pass re-searching the same blowup.
            self._flagged.add(key)
            self.budget_exhausted.append(key)
            return None
        if not outcome.ok:
            self._flagged.add(key)
            self.violations.append(outcome.witness)
            if self._m_violations is not None:
                self._m_violations.labels(key=key).inc()
        return outcome

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def ok(self):
        return not self.violations

    def summary(self):
        return {
            "passes": self.passes,
            "ops_checked": self.ops_checked,
            "keys_flagged": sorted(self._flagged),
            "violations": len(self.violations),
            "budget_exhausted": list(self.budget_exhausted),
        }

    def render_violations(self):
        return "\n\n".join(render_witness(w) for w in self.violations)


def _dropped(record):
    if record.status == "fail":
        return True
    return record.status in ("info", "invoke") and record.op == "get"
