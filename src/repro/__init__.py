"""repro: a reproduction of "Dependability in a Multi-tenant
Multi-framework Deep Learning as-a-Service Platform" (Boag et al.,
DSN 2018).

The package implements IBM DLaaS end to end as a deterministic
simulation: the Kubernetes platform layer (:mod:`repro.cluster`), a
Raft-replicated ETCD (:mod:`repro.raftkv`), a MongoDB-style document
store (:mod:`repro.docstore`), shared NFS volumes (:mod:`repro.nfs`), a
cloud object store (:mod:`repro.objectstore`), the RPC fabric
(:mod:`repro.grpcnet`), DL framework performance models
(:mod:`repro.frameworks`), and the DLaaS core services themselves
(:mod:`repro.core`), all on a discrete-event kernel (:mod:`repro.sim`).

Quickstart::

    from repro import DlaasPlatform

    platform = DlaasPlatform(seed=42).start()
    client = platform.client("my-team")
    ...
"""

from .core import (
    ComponentCrasher,
    DlaasClient,
    DlaasError,
    DlaasPlatform,
    InvalidManifest,
    PlatformConfig,
    TrainingManifest,
)

__version__ = "0.1.0"

__all__ = [
    "ComponentCrasher",
    "DlaasClient",
    "DlaasError",
    "DlaasPlatform",
    "InvalidManifest",
    "PlatformConfig",
    "TrainingManifest",
    "__version__",
]
