"""Collate archived benchmark tables into a single REPORT.md.

Usage::

    pytest benchmarks/ --benchmark-only   # populates bench_results/
    python -m repro.bench.report          # writes REPORT.md
"""

import pathlib

# Presentation order: paper figures first, claims, then extensions.
_SECTIONS = (
    ("Paper figures", ("fig2_overhead", "fig3_dgx1", "fig4_recovery")),
    ("Paper claims", ("guardian_creation", "detection_latency", "scalability")),
    ("Ablations", ("checkpoint_tradeoff", "atomic_deploy", "atomic_deploy_e2e",
                   "etcd_vs_direct", "scheduler")),
    ("Extensions", ("gang_scheduling", "elasticity", "preemption",
                    "chaos_soak", "job_mix")),
)


def build_report(results_dir, out_path):
    results_dir = pathlib.Path(results_dir)
    lines = [
        "# Benchmark report",
        "",
        "Generated from `bench_results/` — regenerate with "
        "`pytest benchmarks/ --benchmark-only` then "
        "`python -m repro.bench.report`.",
        "",
    ]
    seen = set()
    for section, names in _SECTIONS:
        tables = []
        for name in names:
            path = results_dir / f"{name}.txt"
            if path.exists():
                tables.append(path.read_text().rstrip())
                seen.add(path.name)
        if not tables:
            continue
        lines.append(f"## {section}")
        lines.append("")
        for table in tables:
            lines.append("```")
            lines.append(table)
            lines.append("```")
            lines.append("")
    # Anything archived but not in the ordering still gets included.
    extras = sorted(
        p for p in results_dir.glob("*.txt") if p.name not in seen
    )
    if extras:
        lines.append("## Other results")
        lines.append("")
        for path in extras:
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
            lines.append("")
    out_path = pathlib.Path(out_path)
    out_path.write_text("\n".join(lines))
    return out_path


def main():
    root = pathlib.Path(__file__).resolve().parents[3]
    results = root / "bench_results"
    if not results.exists():
        raise SystemExit("bench_results/ not found; run the benchmarks first")
    out = build_report(results, root / "REPORT.md")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
