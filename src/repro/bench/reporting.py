"""Table rendering for benchmark results: paper-vs-measured."""


def render_table(title, columns, rows):
    """Plain-text table; ``rows`` are dicts keyed by column name."""
    widths = {
        col: max(len(col), *(len(_fmt(row.get(col))) for row in rows)) if rows
        else len(col)
        for col in columns
    }
    lines = [title, "-" * len(title)]
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def shape_check(label, measured, low, high):
    """One-line verdict on whether a measured value falls in the paper's band."""
    verdict = "OK " if low <= measured <= high else "OUT"
    return f"  [{verdict}] {label}: measured {measured:.2f} vs paper band [{low}, {high}]"
