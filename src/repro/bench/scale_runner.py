"""Sharded control-plane scale runs (jobs x partitions x tenants).

One entry point, :func:`run_scale_scenario`, drives ``jobs`` concurrent
submissions through a platform whose control plane is split into
``partitions``:

* ``partitions == 1`` builds the *stock, unsharded* platform — not a
  one-slice sharded one — so its timeline is bit-identical to the
  plain perf scenarios and anchors every comparison;
* ``partitions > 1`` turns on the whole sharded stack: that many LCM
  replicas leasing job-id slices, consistent-hash routing at the API
  balancer, and a sharded docstore.

The tenant mix fans submissions round-robin over ``tenants`` client
tokens. With ``tenants == 1`` the driver is event-for-event identical
to ``bench_perf.run_scenario`` (same token, names, waits), which is
what makes the cross-benchmark digest check possible.
"""

import hashlib
import time

from .platform_runner import bench_manifest, build_platform

# 24 jobs cost ~940k kernel events at steps=60; scale the run cap with
# the job count instead of hoping one fixed number fits every sweep
# point (the old bench capped everything at 500k, which a 500-job run
# blows through before the first completion).
EVENT_LIMIT_FLOOR = 500_000
EVENTS_PER_JOB_BUDGET = 80_000


def event_limit(jobs):
    return max(EVENT_LIMIT_FLOOR, jobs * EVENTS_PER_JOB_BUDGET)


def partition_overrides(partitions):
    """PlatformConfig overrides for a control plane split ``p`` ways."""
    if partitions <= 1:
        return {}
    return {
        "api_ring_routing": True,
        "lcm_replicas": partitions,
        "lcm_slices": 2 * partitions,
        "mongo_shards": 2,
    }


def timeline_digest(platform, docs):
    """Same fingerprint as bench_perf: trace + histories + clock."""
    trace = [(round(r.time, 9), r.component, r.kind) for r in
             platform.tracer.records]
    histories = [
        [(h["status"], round(h["time"], 9)) for h in doc["status_history"]]
        for doc in docs
    ]
    blob = repr((trace, histories, round(platform.kernel.now, 9)))
    return hashlib.sha256(blob.encode()).hexdigest()


def guardian_latencies(platform):
    created = {r.fields["job"]: r.time
               for r in platform.tracer.query(component="lcm",
                                              kind="guardian-created")}
    latencies = []
    for record in platform.tracer.query(component="guardian",
                                        kind="component-ready"):
        job = record.fields["job"]
        if job in created:
            latencies.append(record.time - created.pop(job))
    return sorted(latencies)


def run_scale_scenario(jobs, partitions, tenants=1, seed=2, steps=60,
                       gpus_per_node=4, gpu_nodes=8, gpus_per_job=2,
                       **config_overrides):
    """One measured run; returns the scale-table row."""
    overrides = partition_overrides(partitions)
    overrides.update(config_overrides)
    platform = build_platform("k80", gpus_per_node=gpus_per_node,
                              gpu_nodes=gpu_nodes, seed=seed, **overrides)
    tokens = (["perf"] if tenants <= 1
              else [f"tenant-{t}" for t in range(tenants)])
    clients = {token: platform.client(token) for token in tokens}

    def drive():
        ids = []
        for i in range(jobs):
            token = tokens[i % len(tokens)]
            manifest = bench_manifest("resnet50", "tensorflow",
                                      gpus_per_job, "k80", steps=steps)
            manifest["name"] = f"perf-{i}"
            ids.append((token,
                        (yield from clients[token].submit(manifest))))
        docs = []
        for token, job_id in ids:
            docs.append((yield from clients[token].wait_for_status(
                job_id, timeout=100_000)))
        return docs

    start = time.perf_counter()
    docs = platform.run_process(drive(), limit=event_limit(jobs))
    platform.run_for(30.0)
    wall = time.perf_counter() - start

    kernel = platform.kernel
    latencies = guardian_latencies(platform)

    def pct(q):
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "jobs": jobs,
        "partitions": partitions,
        "tenants": tenants,
        "completed": sum(1 for d in docs if d["status"] == "COMPLETED"),
        "wall_s": round(wall, 3),
        "sim_s": round(kernel.now, 3),
        "events_processed": kernel.events_processed,
        "events_per_sec": round(kernel.events_processed / wall, 1),
        "jobs_per_sec": round(jobs / wall, 3),
        "guardian_p50_s": round(pct(0.50), 3),
        "guardian_p95_s": round(pct(0.95), 3),
        "guardian_max_s": round(latencies[-1], 3) if latencies else 0.0,
        "gpus_leaked": platform.k8s.capacity_summary()["gpus_allocated"],
        "digest": timeline_digest(platform, docs),
    }
