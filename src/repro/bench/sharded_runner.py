"""Sharded perf scenario: N platform cells driving the bench workload.

The cell driver below replays ``benchmarks/bench_perf.py``'s job loop
verbatim inside each cell — same tenant, same job names, same
submit-then-wait shape — so a one-cell sharded run is bit-identical to
the plain fast-path bench (asserted there). With several cells the
drivers additionally exchange federation traffic: periodic
fire-and-forget heartbeats while jobs run, and a final acked
``announce`` broadcast, which keeps the conservative-lookahead
protocol exercised under load instead of degenerating into
embarrassingly-parallel silence.

Everything here is module-level so ``multiprocessing`` workers can
rebuild the cells from pickled ``(builder, args)`` specs.
"""

from ..core import PlatformConfig, ShardedPlatform
from .platform_runner import CREDENTIALS, bench_manifest

HEARTBEAT_INTERVAL = 5.0


def bench_cell_driver(cell, jobs, steps, heartbeat=HEARTBEAT_INTERVAL):
    """Per-cell workload generator (see ``repro.core.sharded``)."""
    platform = cell.platform
    # Pure state setup — no events, no trace records — so doing it at
    # driver start (instead of before kernel start, as the plain bench
    # does) leaves the timeline untouched.
    platform.seed_training_data("bench-data", CREDENTIALS, size_mb=200)
    platform.ensure_results_bucket("bench-results", CREDENTIALS)
    client = platform.client("perf")
    if cell.num_cells > 1:
        cell.start_heartbeats(heartbeat)
    ids = []
    for i in range(jobs):
        manifest = bench_manifest("resnet50", "tensorflow", 2, "k80",
                                  steps=steps)
        manifest["name"] = f"perf-{i}"
        ids.append((yield from client.submit(manifest)))
    docs = []
    for job_id in ids:
        docs.append((yield from client.wait_for_status(job_id,
                                                       timeout=100_000)))
    cell.docs = docs
    if cell.num_cells > 1:
        yield from cell.broadcast(
            "announce",
            {"cell": cell.cell_id,
             "jobs": [doc["job_id"] for doc in docs]})


def build_sharded_bench(scenario, cells, sim_fast_path=True):
    """A :class:`ShardedPlatform` for one bench scenario.

    ``scenario`` is a bench_perf-style dict (jobs/seed/steps/
    gpus_per_node/gpu_nodes); ``scenario["jobs"]`` is the total across
    all cells and must divide evenly so every cell replays an identical
    job count.
    """
    jobs, remainder = divmod(scenario["jobs"], cells)
    if remainder:
        raise ValueError(
            f"{scenario['jobs']} jobs do not divide over {cells} cells")
    config = PlatformConfig(
        gpu_nodes=scenario["gpu_nodes"],
        gpus_per_node=scenario["gpus_per_node"],
        gpu_type="k80",
        management_nodes=2,
        sim_fast_path=sim_fast_path,
        shards=cells,
    )
    return ShardedPlatform(
        config, seed=scenario["seed"], driver=bench_cell_driver,
        driver_args=(jobs, scenario["steps"]), settle=30.0)


def run_sharded_scenario(scenario, cells, workers=None, executor="process"):
    """Build and run; returns the ShardedPlatform (digest/results set)."""
    return build_sharded_bench(scenario, cells).run(
        workers=workers, executor=executor)
